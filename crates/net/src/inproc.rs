//! The in-process transport: crossbeam channels between threads.
//!
//! This preserves the original single-process cluster wiring: one control
//! channel per worker, one job channel per worker (every peer holds a sender
//! to it), one shared status channel, and a final-report channel drained by
//! the coordinator. Messages move by ownership transfer — nothing is
//! serialized — so this transport is also the baseline in the transport
//! throughput benchmark. Control messages carry the [`RunId`] they address,
//! and a per-worker start channel lets the coordinator admit additional
//! runs to a worker service loop mid-flight, exactly like the TCP
//! transport's `Start` frames.

use crate::message::{Control, FinalReport, JobBatch, RunSpec, StatusReport};
use crate::transport::{CoordinatorEndpoint, Endpoints, Transport, TransportError, WorkerEndpoint};
use crate::{RunId, WorkerId};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::time::Duration;

/// Transport connecting coordinator and workers with in-process channels.
#[derive(Clone, Copy, Debug, Default)]
pub struct InProcTransport;

/// Worker endpoint over in-process channels.
pub struct InProcWorkerEndpoint {
    id: WorkerId,
    control_rx: Receiver<(RunId, Control)>,
    start_rx: Receiver<Box<RunSpec>>,
    jobs_rx: Receiver<JobBatch>,
    job_txs: Vec<Sender<JobBatch>>,
    status_tx: Sender<StatusReport>,
    final_tx: Sender<FinalReport>,
}

/// Coordinator endpoint over in-process channels.
pub struct InProcCoordinatorEndpoint {
    control_txs: Vec<Sender<(RunId, Control)>>,
    start_txs: Vec<Sender<Box<RunSpec>>>,
    status_rx: Receiver<StatusReport>,
    final_rx: Receiver<FinalReport>,
}

impl Transport for InProcTransport {
    type WorkerEnd = InProcWorkerEndpoint;
    type CoordinatorEnd = InProcCoordinatorEndpoint;

    fn establish(
        self,
        num_workers: usize,
    ) -> Result<Endpoints<InProcCoordinatorEndpoint, InProcWorkerEndpoint>, TransportError> {
        let n = num_workers.max(1);
        let mut control_txs = Vec::with_capacity(n);
        let mut control_rxs = Vec::with_capacity(n);
        let mut start_txs = Vec::with_capacity(n);
        let mut start_rxs = Vec::with_capacity(n);
        let mut job_txs = Vec::with_capacity(n);
        let mut job_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (ctx, crx) = unbounded::<(RunId, Control)>();
            control_txs.push(ctx);
            control_rxs.push(crx);
            let (stx, srx) = unbounded::<Box<RunSpec>>();
            start_txs.push(stx);
            start_rxs.push(srx);
            let (jtx, jrx) = unbounded::<JobBatch>();
            job_txs.push(jtx);
            job_rxs.push(jrx);
        }
        let (status_tx, status_rx) = unbounded::<StatusReport>();
        let (final_tx, final_rx) = unbounded::<FinalReport>();

        let workers = control_rxs
            .into_iter()
            .zip(start_rxs)
            .zip(job_rxs)
            .enumerate()
            .map(
                |(i, ((control_rx, start_rx), jobs_rx))| InProcWorkerEndpoint {
                    id: WorkerId(i as u32),
                    control_rx,
                    start_rx,
                    jobs_rx,
                    job_txs: job_txs.clone(),
                    status_tx: status_tx.clone(),
                    final_tx: final_tx.clone(),
                },
            )
            .collect();

        Ok(Endpoints {
            coordinator: InProcCoordinatorEndpoint {
                control_txs,
                start_txs,
                status_rx,
                final_rx,
            },
            workers,
        })
    }
}

impl WorkerEndpoint for InProcWorkerEndpoint {
    fn id(&self) -> WorkerId {
        self.id
    }

    fn try_recv_control(&mut self) -> Option<(RunId, Control)> {
        self.control_rx.try_recv().ok()
    }

    fn try_recv_jobs(&mut self) -> Option<JobBatch> {
        self.jobs_rx.try_recv().ok()
    }

    fn try_recv_start(&mut self) -> Option<Box<RunSpec>> {
        self.start_rx.try_recv().ok()
    }

    fn send_jobs(&mut self, destination: WorkerId, batch: JobBatch) -> Result<(), TransportError> {
        self.job_txs
            .get(destination.index())
            .ok_or(TransportError::Disconnected)?
            .send(batch)
            .map_err(|_| TransportError::Disconnected)
    }

    fn send_status(&mut self, report: StatusReport) -> Result<(), TransportError> {
        self.status_tx
            .send(report)
            .map_err(|_| TransportError::Disconnected)
    }

    fn send_final(&mut self, report: FinalReport) -> Result<(), TransportError> {
        self.final_tx
            .send(report)
            .map_err(|_| TransportError::Disconnected)
    }
}

impl CoordinatorEndpoint for InProcCoordinatorEndpoint {
    fn num_workers(&self) -> usize {
        self.control_txs.len()
    }

    fn send_control(
        &mut self,
        destination: WorkerId,
        run: RunId,
        msg: Control,
    ) -> Result<(), TransportError> {
        self.control_txs
            .get(destination.index())
            .ok_or(TransportError::Disconnected)?
            .send((run, msg))
            .map_err(|_| TransportError::Disconnected)
    }

    fn send_start(&mut self, destination: WorkerId, spec: RunSpec) -> Result<(), TransportError> {
        self.start_txs
            .get(destination.index())
            .ok_or(TransportError::Disconnected)?
            .send(Box::new(spec))
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv_status(&mut self, timeout: Duration) -> Option<StatusReport> {
        if timeout.is_zero() {
            self.status_rx.try_recv().ok()
        } else {
            self.status_rx.recv_timeout(timeout).ok()
        }
    }

    fn recv_final(&mut self, timeout: Duration) -> Option<FinalReport> {
        if timeout.is_zero() {
            self.final_rx.try_recv().ok()
        } else {
            self.final_rx.recv_timeout(timeout).ok()
        }
    }
}
