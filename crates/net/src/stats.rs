//! Per-worker statistics, reported over the wire to the load balancer.

use c9_solver::SolverStats;
use c9_trace::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// Statistics one worker reports to the load balancer and to the experiment
/// harness.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Number of executor threads the worker runs (`--threads`).
    pub threads: u64,
    /// Snapshot of the worker's shared-solver counters (queries, cache
    /// hits, independence slices); all executor threads feed one solver,
    /// so this is a per-worker total, not a per-thread one.
    pub solver: SolverStats,
    /// Instructions executed exploring new work ("useful work" in §7.2).
    pub useful_instructions: u64,
    /// Instructions spent replaying transferred job paths.
    pub replay_instructions: u64,
    /// Paths completed (terminated states).
    pub paths_completed: u64,
    /// Bugs found.
    pub bugs_found: u64,
    /// Candidate states (jobs) sent to other workers.
    pub jobs_sent: u64,
    /// Jobs received from other workers.
    pub jobs_received: u64,
    /// Bytes of encoded job trees sent.
    pub job_bytes_sent: u64,
    /// Number of materializations (virtual → materialized replays).
    pub materializations: u64,
    /// Replay instructions *not* executed because the materialization
    /// resumed from a cached prefix anchor instead of replaying the whole
    /// trunk from the root (the saving of the prefix-anchor cache).
    pub replay_saved_instructions: u64,
    /// Materializations that resumed from a cached prefix anchor.
    pub anchor_hits: u64,
    /// Materializations that replayed from the root (no anchor covered any
    /// prefix of the job path, or the cache is disabled).
    pub anchor_misses: u64,
    /// Replays that diverged (the recorded job path no longer matches the
    /// program's branches — a corrupted or stale job). The state is
    /// discarded, never explored; should stay zero thanks to the
    /// deterministic engine.
    pub replay_divergences: u64,
    /// Mid-run strategy reassignments applied (portfolio rebalancing).
    pub strategy_switches: u64,
    /// Bytes of encoded constraint-cache slices this worker attached to
    /// outgoing job batches and status gossip.
    pub gossip_bytes_sent: u64,
    /// Bytes of encoded constraint-cache slices received (job-batch
    /// piggybacks and coordinator hot-set rebroadcasts).
    pub gossip_bytes_received: u64,
    /// Registry snapshot piggybacked on the report: counters, gauges, and
    /// histograms (solver-query latency, quantum duration, job-batch size,
    /// replay-trunk length, transfer bytes). New metrics ride this map, so
    /// adding one never needs wire-struct surgery again.
    pub metrics: MetricsSnapshot,
}

impl WorkerStats {
    /// Merges another snapshot into this one.
    pub fn merge(&mut self, other: &WorkerStats) {
        // Thread count is a configuration datum, not a counter: merging
        // reports of one worker keeps its (identical) value, merging
        // across workers keeps the largest.
        self.threads = self.threads.max(other.threads);
        self.solver.merge(&other.solver);
        self.useful_instructions += other.useful_instructions;
        self.replay_instructions += other.replay_instructions;
        self.paths_completed += other.paths_completed;
        self.bugs_found += other.bugs_found;
        self.jobs_sent += other.jobs_sent;
        self.jobs_received += other.jobs_received;
        self.job_bytes_sent += other.job_bytes_sent;
        self.materializations += other.materializations;
        self.replay_saved_instructions += other.replay_saved_instructions;
        self.anchor_hits += other.anchor_hits;
        self.anchor_misses += other.anchor_misses;
        self.replay_divergences += other.replay_divergences;
        self.strategy_switches += other.strategy_switches;
        self.gossip_bytes_sent += other.gossip_bytes_sent;
        self.gossip_bytes_received += other.gossip_bytes_received;
        self.metrics.merge(&other.metrics);
    }

    /// Total instructions (useful + replay).
    pub fn total_instructions(&self) -> u64 {
        self.useful_instructions + self.replay_instructions
    }

    /// Fraction of materializations that resumed from a cached prefix
    /// anchor (zero when nothing was materialized).
    pub fn anchor_hit_rate(&self) -> f64 {
        let total = self.anchor_hits + self.anchor_misses;
        if total == 0 {
            0.0
        } else {
            self.anchor_hits as f64 / total as f64
        }
    }
}
