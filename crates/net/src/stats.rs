//! Per-worker statistics, reported over the wire to the load balancer.

use serde::{Deserialize, Serialize};

/// Statistics one worker reports to the load balancer and to the experiment
/// harness.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Instructions executed exploring new work ("useful work" in §7.2).
    pub useful_instructions: u64,
    /// Instructions spent replaying transferred job paths.
    pub replay_instructions: u64,
    /// Paths completed (terminated states).
    pub paths_completed: u64,
    /// Bugs found.
    pub bugs_found: u64,
    /// Candidate states (jobs) sent to other workers.
    pub jobs_sent: u64,
    /// Jobs received from other workers.
    pub jobs_received: u64,
    /// Bytes of encoded job trees sent.
    pub job_bytes_sent: u64,
    /// Number of materializations (virtual → materialized replays).
    pub materializations: u64,
    /// Replays that broke (diverged); should stay zero thanks to the
    /// deterministic allocator.
    pub broken_replays: u64,
    /// Mid-run strategy reassignments applied (portfolio rebalancing).
    pub strategy_switches: u64,
}

impl WorkerStats {
    /// Merges another snapshot into this one.
    pub fn merge(&mut self, other: &WorkerStats) {
        self.useful_instructions += other.useful_instructions;
        self.replay_instructions += other.replay_instructions;
        self.paths_completed += other.paths_completed;
        self.bugs_found += other.bugs_found;
        self.jobs_sent += other.jobs_sent;
        self.jobs_received += other.jobs_received;
        self.job_bytes_sent += other.job_bytes_sent;
        self.materializations += other.materializations;
        self.broken_replays += other.broken_replays;
        self.strategy_switches += other.strategy_switches;
    }

    /// Total instructions (useful + replay).
    pub fn total_instructions(&self) -> u64 {
        self.useful_instructions + self.replay_instructions
    }
}
