//! Validated construction of [`RunSpec`]s.
//!
//! A `RunSpec` is the contract between the coordinator and every worker of
//! a run; a malformed one (no program, a zero quantum, the reserved service
//! run id) used to surface only as a hung or silently idle cluster, because
//! the binaries hand-assembled the public struct field by field. The
//! builder makes the invariants explicit: every way to construct a spec
//! goes through [`RunSpecBuilder::build`], which returns a typed
//! [`RunSpecError`] instead of shipping a spec the cluster cannot execute.

use crate::id::RunId;
use crate::message::{EnvSpec, ExportOrder, RunSpec};
use c9_ir::Program;
use c9_solver::SolverBackendKind;
use c9_vm::{ExecutorConfig, ReplayCacheConfig, StrategyKind};
use std::time::Duration;

/// Why a [`RunSpecBuilder`] refused to build a [`RunSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunSpecError {
    /// No program under test was supplied.
    MissingProgram,
    /// The run id is the reserved [`RunId::SERVICE`] sentinel, which
    /// addresses the worker daemon itself and can never name a run.
    ReservedRunId,
    /// The execution quantum is zero: workers would never step a state
    /// between message-handling points.
    ZeroQuantum,
    /// The executor thread count is zero.
    ZeroThreads,
    /// The status-report interval is zero: workers would flood the
    /// coordinator with back-to-back reports.
    ZeroStatusInterval,
}

impl std::fmt::Display for RunSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunSpecError::MissingProgram => write!(f, "run spec has no program under test"),
            RunSpecError::ReservedRunId => {
                write!(f, "run id {} is reserved for the service", RunId::SERVICE)
            }
            RunSpecError::ZeroQuantum => write!(f, "execution quantum must be non-zero"),
            RunSpecError::ZeroThreads => write!(f, "executor thread count must be non-zero"),
            RunSpecError::ZeroStatusInterval => {
                write!(f, "status-report interval must be non-zero")
            }
        }
    }
}

impl std::error::Error for RunSpecError {}

/// Builder for [`RunSpec`] with validation.
///
/// Defaults mirror a fresh single-run cluster: run id 1, null environment,
/// default strategy, one executor thread, a 20k-instruction quantum, and a
/// 10 ms status interval.
#[derive(Clone, Debug)]
pub struct RunSpecBuilder {
    program: Option<Program>,
    env: EnvSpec,
    executor: ExecutorConfig,
    seed: u64,
    strategy: StrategyKind,
    generate_test_cases: bool,
    export_order: ExportOrder,
    replay_cache: ReplayCacheConfig,
    threads: usize,
    quantum: u64,
    status_interval: Duration,
    seed_root: bool,
    run: RunId,
    worker_epoch: u64,
    heartbeat_interval: Duration,
    snapshot_every: u32,
    solver_cache: Option<usize>,
    solver_backend: SolverBackendKind,
    cache_gossip: bool,
}

impl Default for RunSpecBuilder {
    fn default() -> RunSpecBuilder {
        RunSpecBuilder {
            program: None,
            env: EnvSpec::Null,
            executor: ExecutorConfig::default(),
            seed: 1,
            strategy: StrategyKind::default(),
            generate_test_cases: false,
            export_order: ExportOrder::Shallowest,
            replay_cache: ReplayCacheConfig::default(),
            threads: 1,
            quantum: 20_000,
            status_interval: Duration::from_millis(10),
            seed_root: false,
            run: RunId(1),
            worker_epoch: 0,
            heartbeat_interval: Duration::ZERO,
            snapshot_every: 0,
            solver_cache: None,
            solver_backend: SolverBackendKind::Canonical,
            cache_gossip: true,
        }
    }
}

impl RunSpecBuilder {
    /// A builder with the documented defaults.
    pub fn new() -> RunSpecBuilder {
        RunSpecBuilder::default()
    }

    /// Sets the program under test (required).
    pub fn program(mut self, program: Program) -> Self {
        self.program = Some(program);
        self
    }

    /// Sets the environment model workers should instantiate.
    pub fn env(mut self, env: EnvSpec) -> Self {
        self.env = env;
        self
    }

    /// Sets the per-path executor limits.
    pub fn executor(mut self, executor: ExecutorConfig) -> Self {
        self.executor = executor;
        self
    }

    /// Sets the random seed (combined with the worker id).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the exploration strategy.
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables or disables concrete test-case generation per completed path.
    pub fn generate_test_cases(mut self, on: bool) -> Self {
        self.generate_test_cases = on;
        self
    }

    /// Sets which frontier candidates are exported first when shedding load.
    pub fn export_order(mut self, order: ExportOrder) -> Self {
        self.export_order = order;
        self
    }

    /// Sets the prefix-anchor replay cache budget.
    pub fn replay_cache(mut self, config: ReplayCacheConfig) -> Self {
        self.replay_cache = config;
        self
    }

    /// Sets the number of executor threads per worker (must be non-zero).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the instructions per worker quantum (must be non-zero).
    pub fn quantum(mut self, quantum: u64) -> Self {
        self.quantum = quantum;
        self
    }

    /// Sets the status-report interval (must be non-zero).
    pub fn status_interval(mut self, interval: Duration) -> Self {
        self.status_interval = interval;
        self
    }

    /// Marks the receiving worker as the one seeding the root job.
    pub fn seed_root(mut self, seed_root: bool) -> Self {
        self.seed_root = seed_root;
        self
    }

    /// Sets the run identity (must not be [`RunId::SERVICE`]).
    pub fn run(mut self, run: RunId) -> Self {
        self.run = run;
        self
    }

    /// Sets the receiving worker's fencing epoch.
    pub fn worker_epoch(mut self, epoch: u64) -> Self {
        self.worker_epoch = epoch;
        self
    }

    /// Sets the transport heartbeat interval (zero disables heartbeats).
    pub fn heartbeat_interval(mut self, interval: Duration) -> Self {
        self.heartbeat_interval = interval;
        self
    }

    /// Includes a frontier snapshot in every `n`-th status report (zero =
    /// never).
    pub fn snapshot_every(mut self, n: u32) -> Self {
        self.snapshot_every = n;
        self
    }

    /// Overrides the solver query-cache capacity (`None` keeps the
    /// solver's built-in default).
    pub fn solver_cache(mut self, capacity: Option<usize>) -> Self {
        self.solver_cache = capacity;
        self
    }

    /// Sets the solver backend strategy workers run.
    pub fn solver_backend(mut self, backend: SolverBackendKind) -> Self {
        self.solver_backend = backend;
        self
    }

    /// Enables or disables constraint-cache gossip for the run.
    pub fn cache_gossip(mut self, on: bool) -> Self {
        self.cache_gossip = on;
        self
    }

    /// Validates the configuration and builds the [`RunSpec`].
    pub fn build(self) -> Result<RunSpec, RunSpecError> {
        let program = self.program.ok_or(RunSpecError::MissingProgram)?;
        if self.run == RunId::SERVICE {
            return Err(RunSpecError::ReservedRunId);
        }
        if self.quantum == 0 {
            return Err(RunSpecError::ZeroQuantum);
        }
        if self.threads == 0 {
            return Err(RunSpecError::ZeroThreads);
        }
        if self.status_interval.is_zero() {
            return Err(RunSpecError::ZeroStatusInterval);
        }
        Ok(RunSpec {
            program,
            env: self.env,
            executor: self.executor,
            seed: self.seed,
            strategy: self.strategy,
            generate_test_cases: self.generate_test_cases,
            export_order: self.export_order,
            replay_cache: self.replay_cache,
            threads: self.threads,
            quantum: self.quantum,
            status_interval: self.status_interval,
            seed_root: self.seed_root,
            run: self.run,
            worker_epoch: self.worker_epoch,
            heartbeat_interval: self.heartbeat_interval,
            snapshot_every: self.snapshot_every,
            solver_cache: self.solver_cache,
            solver_backend: self.solver_backend,
            cache_gossip: self.cache_gossip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        let mut pb = c9_ir::ProgramBuilder::new();
        pb.set_name("trivial");
        let mut f = pb.function("main", 0, Some(c9_ir::Width::W32));
        f.ret(Some(c9_ir::Operand::word(0)));
        let main = f.finish();
        pb.set_entry(main);
        pb.finish()
    }

    #[test]
    fn builds_with_defaults_once_program_is_set() {
        let spec = RunSpecBuilder::new()
            .program(program())
            .build()
            .expect("valid spec");
        assert_eq!(spec.run, RunId(1));
        assert_eq!(spec.threads, 1);
        assert_eq!(spec.export_order, ExportOrder::Shallowest);
        assert_eq!(spec.solver_cache, None);
        assert_eq!(spec.solver_backend, SolverBackendKind::Canonical);
        assert!(spec.cache_gossip, "gossip defaults on");
    }

    #[test]
    fn solver_settings_flow_into_the_spec() {
        let spec = RunSpecBuilder::new()
            .program(program())
            .solver_cache(Some(4096))
            .solver_backend(SolverBackendKind::Race)
            .cache_gossip(false)
            .build()
            .expect("valid spec");
        assert_eq!(spec.solver_cache, Some(4096));
        assert_eq!(spec.solver_backend, SolverBackendKind::Race);
        assert!(!spec.cache_gossip);
    }

    #[test]
    fn missing_program_is_rejected() {
        assert_eq!(
            RunSpecBuilder::new().build().unwrap_err(),
            RunSpecError::MissingProgram
        );
    }

    #[test]
    fn reserved_run_id_is_rejected() {
        let err = RunSpecBuilder::new()
            .program(program())
            .run(RunId::SERVICE)
            .build()
            .unwrap_err();
        assert_eq!(err, RunSpecError::ReservedRunId);
    }

    #[test]
    fn zero_quantum_threads_and_interval_are_rejected() {
        let base = RunSpecBuilder::new().program(program());
        assert_eq!(
            base.clone().quantum(0).build().unwrap_err(),
            RunSpecError::ZeroQuantum
        );
        assert_eq!(
            base.clone().threads(0).build().unwrap_err(),
            RunSpecError::ZeroThreads
        );
        assert_eq!(
            base.status_interval(Duration::ZERO).build().unwrap_err(),
            RunSpecError::ZeroStatusInterval
        );
    }

    #[test]
    fn export_order_round_trips_through_display() {
        for order in [ExportOrder::Shallowest, ExportOrder::Deepest] {
            let parsed: ExportOrder = order.to_string().parse().expect("round-trip");
            assert_eq!(parsed, order);
        }
        assert!("middle-out".parse::<ExportOrder>().is_err());
    }
}
