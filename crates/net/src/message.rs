//! The cluster wire protocol.
//!
//! These are the messages the paper's deployment exchanges over the network
//! (§3.2–§3.3): control commands and the global coverage vector flowing from
//! the load balancer to workers, queue-length/coverage status reports
//! flowing back, encoded job batches travelling between workers, and the
//! final per-worker reports aggregated into the run result. They were
//! originally private enums inside the in-process cluster harness; promoting
//! them to public serde-serializable types is what lets the same worker and
//! balancer loops run over any [`Transport`](crate::Transport).

use crate::id::{RunId, WorkerId};
use crate::stats::WorkerStats;
use c9_ir::Program;
use c9_solver::{CacheSlice, SolverBackendKind};
use c9_vm::{CoverageSet, ExecutorConfig, ReplayCacheConfig, StrategyKind, TestCase};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Version of the wire protocol, exchanged in the session-opening frames
/// ([`WireMessage::CoordinatorHello`] and [`WireMessage::Join`]); both ends
/// drop connections whose peer speaks a different version instead of
/// mis-decoding frames.
///
/// History:
/// * **1** — the implicit pre-versioning protocol (run identity was a bare
///   `epoch: u64` stamped only on `RunSpec` and `JobBatch`, and job exports
///   were ordered by an `export_deepest: bool`).
/// * **2** — multi-tenant run protocol: every run-scoped frame carries a
///   [`RunId`] (`RunSpec`, `JobBatch`, `StatusReport`, `FinalReport`, and
///   the `Control` envelope), the hello/join preamble carries this version
///   number, and `RunSpec` carries an [`ExportOrder`] enum instead of the
///   bool.
/// * **3** — constraint-cache sharing: `JobBatch` carries an optional
///   [`CacheSlice`] of the solved queries relevant to the exported jobs,
///   `StatusReport` gossips each worker's hottest entries, the new
///   [`Control::HotSet`] rebroadcasts the coordinator's merged cluster hot
///   set (appended after `Stop`, so the `Control` variant tags of v2 are
///   unchanged), and `RunSpec` carries the solver-cache capacity override,
///   the [`SolverBackendKind`], and the gossip switch.
pub const WIRE_VERSION: u32 = 3;

/// Identity, address, and fencing epoch of one cluster member, as announced
/// by the coordinator (in a [`WireMessage::JoinAck`] and in
/// [`Control::Membership`] updates).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerInfo {
    /// The member's identity.
    pub worker: WorkerId,
    /// The member's listen address for peer-to-peer job transfers.
    pub addr: String,
    /// The member's current epoch; job batches stamped with an older epoch
    /// come from a fenced-off previous incarnation and must be dropped.
    pub epoch: u64,
    /// Whether the coordinator currently believes the member is alive.
    pub alive: bool,
}

/// Control messages from the load balancer to a worker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Control {
    /// Transfer `count` jobs to worker `destination`.
    Balance {
        /// The worker that should receive the jobs.
        destination: WorkerId,
        /// Number of jobs to move.
        count: u64,
    },
    /// The updated global coverage bit vector (§3.3).
    GlobalCoverage(CoverageSet),
    /// Jobs injected directly by the coordinator: work reclaimed from a dead
    /// worker, or a resumed checkpoint frontier. The receiver imports the
    /// encoded job tree and acknowledges with a
    /// [`TransferEvent::Imported`] whose source is
    /// [`COORDINATOR`](crate::COORDINATOR).
    Inject {
        /// Coordinator-chosen sequence number for the acknowledgement.
        seq: u64,
        /// The encoded job tree ([`JobTree::encode`](crate::JobTree::encode)).
        encoded: Vec<u8>,
    },
    /// Updated cluster membership: the full peer table. Workers refresh
    /// their peer addresses, drop connections to peers whose address or
    /// epoch changed, and reject job batches from fenced epochs.
    Membership(Vec<PeerInfo>),
    /// Re-assign the worker's exploration strategy mid-run (portfolio
    /// rebalancing, §3.3 extended): the worker swaps its searcher in
    /// place — every active state is re-registered with the new
    /// strategy — and stamps subsequent status reports with it, so yield
    /// attribution follows the assignment.
    SetStrategy {
        /// The strategy to switch to.
        strategy: StrategyKind,
        /// Deterministic seed for the replacement searcher (derived by the
        /// coordinator from worker id and epoch).
        seed: u64,
    },
    /// Stop and report final results. Addressed to one run; when stamped
    /// with [`RunId::SERVICE`] it instead shuts down the worker's whole
    /// run-service loop after finalizing every admitted run.
    Stop,
    /// The coordinator's merged "cluster hot set": the globally hottest
    /// query-cache entries gossiped by the run's workers, merged and
    /// rebroadcast on balance rounds. Receivers fold the slice into their
    /// solver's query cache; imports are answer-preserving (cached answers
    /// are pure functions of their constraint sets), so this only saves
    /// re-solving, never changes a result. Appended after [`Control::Stop`]
    /// so the v2 variant tags are untouched.
    HotSet(CacheSlice),
}

/// Which frontier candidates a worker gives away first when shedding load.
///
/// Carried in [`RunSpec`], replacing the former `export_deepest: bool`.
/// The bincode encoding stays wire-compatible with the bool it replaced:
/// the enum serializes as a one-byte variant tag with `Shallowest` = 0
/// (old `false`) and `Deepest` = 1 (old `true`), pinned by a decode-compat
/// test in `wire_codec.rs`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExportOrder {
    /// Ship the shallowest materialized candidates first (the default):
    /// their replay cost — which the receiver must re-pay — grows with
    /// depth.
    #[default]
    Shallowest,
    /// Ship the deepest candidates first.
    Deepest,
}

impl std::fmt::Display for ExportOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportOrder::Shallowest => write!(f, "shallowest"),
            ExportOrder::Deepest => write!(f, "deepest"),
        }
    }
}

impl std::str::FromStr for ExportOrder {
    type Err = String;

    fn from_str(s: &str) -> Result<ExportOrder, String> {
        match s {
            "shallowest" => Ok(ExportOrder::Shallowest),
            "deepest" => Ok(ExportOrder::Deepest),
            other => Err(format!(
                "unknown export order {other:?} (expected \"shallowest\" or \"deepest\")"
            )),
        }
    }
}

/// A job-transfer bookkeeping event, reported to the coordinator piggybacked
/// on the next status (or final) report. The coordinator uses these to keep
/// its per-worker frontier ledger exact across worker crashes: an export
/// moves jobs into the in-flight table, the destination's import
/// acknowledgement moves them into the destination's ledger, and jobs whose
/// owner dies in between are re-injected from the table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferEvent {
    /// The reporting worker is about to ship a job batch to a peer
    /// (announced *before* the socket write, so a crash mid-send can lose
    /// the batch on the wire but never lose the jobs).
    Exported {
        /// The receiving worker.
        destination: WorkerId,
        /// Sequence number of the batch (per source, monotonically
        /// increasing), matching [`JobBatch::seq`].
        seq: u64,
        /// A copy of the encoded job tree, so the coordinator can recover
        /// the batch if either end dies while it is in flight.
        encoded: Vec<u8>,
    },
    /// The socket write of batch `seq` to `destination` succeeded: the
    /// batch is in wire custody and only the destination (or, should the
    /// destination die, the coordinator's in-flight copy) owns the jobs.
    Sent {
        /// The worker the batch was shipped to.
        destination: WorkerId,
        /// Sequence number of the batch.
        seq: u64,
    },
    /// The socket write of batch `seq` to `destination` failed and the
    /// sender took the jobs back into its own frontier.
    Requeued {
        /// The worker the batch was destined for.
        destination: WorkerId,
        /// Sequence number of the failed batch.
        seq: u64,
    },
    /// The reporting worker imported batch `seq` from `source` (either a
    /// peer's [`JobBatch`] or a coordinator [`Control::Inject`], whose
    /// source is [`COORDINATOR`](crate::COORDINATOR)).
    Imported {
        /// The worker (or coordinator) that sent the batch.
        source: WorkerId,
        /// Sequence number of the batch.
        seq: u64,
        /// The encoded jobs, echoed back so the acknowledgement stays
        /// self-describing even when the matching export notice died with
        /// the sender.
        encoded: Vec<u8>,
    },
}

/// Status report from a worker to the load balancer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StatusReport {
    /// The run this report describes; a daemon serving several concurrent
    /// runs interleaves reports for all of them on one connection and the
    /// coordinator routes each to that run's balancer.
    pub run: RunId,
    /// The reporting worker.
    pub worker: WorkerId,
    /// The reporting worker's epoch; reports from a fenced-off previous
    /// incarnation are rejected by the coordinator.
    pub epoch: u64,
    /// Pending exploration jobs (materialized candidates + virtual jobs).
    pub queue_length: u64,
    /// The worker's local line coverage.
    pub coverage: CoverageSet,
    /// Cumulative statistics.
    pub stats: WorkerStats,
    /// Whether the worker currently has nothing to explore.
    pub idle: bool,
    /// The exploration strategy the worker was running while producing this
    /// report. The coordinator credits the report's newly covered lines to
    /// this strategy — the per-strategy *yield* feedback that drives
    /// portfolio rebalancing.
    pub strategy: StrategyKind,
    /// Encoded snapshot of the worker's pending frontier
    /// ([`JobTree::encode`](crate::JobTree::encode)), taken at the same
    /// instant as `stats` so the pair partitions the worker's subtree
    /// exactly into "completed" and "pending". Present every
    /// `snapshot_every`-th report (see [`RunSpec::snapshot_every`]).
    pub frontier: Option<Vec<u8>>,
    /// Bug-exposing test cases found since the previous frontier snapshot,
    /// shipped eagerly (only on snapshot-bearing reports, so they stay
    /// consistent with `stats`): a bug must survive its finder's crash
    /// even though the completed path it sits on is never re-explored.
    pub new_bugs: Vec<TestCase>,
    /// Job-transfer events since the previous report.
    pub transfers: Vec<TransferEvent>,
    /// Gossip: the worker's hottest query-cache entries, attached on
    /// snapshot-bearing reports when cache gossip is enabled. The
    /// coordinator merges these into the run's cluster hot set (see
    /// [`Control::HotSet`]).
    pub gossip: Option<CacheSlice>,
}

/// Final report from a worker at shutdown.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FinalReport {
    /// The run these final results belong to.
    pub run: RunId,
    /// The reporting worker.
    pub worker: WorkerId,
    /// The reporting worker's epoch.
    pub epoch: u64,
    /// Cumulative statistics.
    pub stats: WorkerStats,
    /// The worker's local line coverage.
    pub coverage: CoverageSet,
    /// Test cases generated for completed paths (when enabled).
    pub test_cases: Vec<TestCase>,
    /// Bug-exposing test cases.
    pub bugs: Vec<TestCase>,
    /// Encoded snapshot of the jobs still pending at shutdown (non-empty
    /// when the run was stopped by a time or path limit); the coordinator
    /// folds it into the final checkpoint so a resumed run continues from
    /// exactly this frontier.
    pub frontier: Vec<u8>,
    /// Job-transfer events since the previous status report.
    pub transfers: Vec<TransferEvent>,
}

/// A batch of jobs in transit between two workers: a [`JobTree`] prefix trie
/// serialized with [`JobTree::encode`].
///
/// [`JobTree`]: crate::JobTree
/// [`JobTree::encode`]: crate::JobTree::encode
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobBatch {
    /// The worker that exported the jobs.
    pub source: WorkerId,
    /// The run this batch belongs to; a worker serving several runs files
    /// each batch into that run's frontier, and a batch addressed to a run
    /// the receiver does not host (stale, cancelled, or not yet admitted)
    /// is dropped rather than imported into the wrong one.
    pub run: RunId,
    /// The sending worker's per-worker epoch; receivers drop batches whose
    /// epoch is older than the sender's current epoch in their peer table
    /// (a fenced-off previous incarnation of a re-joined worker).
    pub source_epoch: u64,
    /// Sequence number (per source worker, monotonically increasing),
    /// acknowledged back to the coordinator with
    /// [`TransferEvent::Imported`].
    pub seq: u64,
    /// The encoded job tree.
    pub encoded: Vec<u8>,
    /// Piggybacked constraint-cache slice: the exporter's hottest solved
    /// queries, shipped alongside the jobs so the transferred states do not
    /// arrive with a stone-cold solver cache (§6 of the paper describes the
    /// cold-cache cost; this is the transfer-time remedy). `None` when
    /// cache gossip is disabled for the run.
    pub slice: Option<CacheSlice>,
}

/// The environment model a remote worker should instantiate. The worker
/// process maps this to an `Arc<dyn Environment>`; the trait object itself
/// cannot cross the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnvSpec {
    /// `c9_vm::NullEnvironment`: syscalls beyond the engine core are stubs.
    #[default]
    Null,
    /// The symbolic POSIX model with its default configuration.
    Posix,
}

/// Everything a worker process needs to run one cluster member: shipped by
/// the coordinator as the first message of a run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunSpec {
    /// The program under test.
    pub program: Program,
    /// Which environment model to instantiate.
    pub env: EnvSpec,
    /// Per-path executor limits.
    pub executor: ExecutorConfig,
    /// Random seed (combined with the worker id).
    pub seed: u64,
    /// Exploration strategy.
    pub strategy: StrategyKind,
    /// Whether to solve for a concrete test case for every completed path.
    pub generate_test_cases: bool,
    /// Which frontier candidates to give away first when shedding load.
    pub export_order: ExportOrder,
    /// Budget of the worker's prefix-anchor replay cache (`--replay-cache`):
    /// cloned states keyed by job-path prefix that let an imported job
    /// replay only its suffix below the deepest cached anchor. A zero
    /// capacity disables the cache (naive per-job root replay).
    pub replay_cache: ReplayCacheConfig,
    /// Number of executor threads stepping states concurrently inside the
    /// worker (`--threads`); 1 reproduces the classic single-threaded
    /// quantum loop exactly.
    pub threads: usize,
    /// Instructions per worker quantum between message-handling points.
    pub quantum: u64,
    /// How often the worker reports status to the load balancer.
    pub status_interval: Duration,
    /// Whether this worker seeds the root job (worker 0 of a fresh run).
    pub seed_root: bool,
    /// Identifier of this run, unique among the runs a long-lived worker
    /// daemon serves (never [`RunId::SERVICE`]); stamped on every frame the
    /// run produces so concurrent runs sharing one daemon stay disjoint.
    pub run: RunId,
    /// This worker's per-worker epoch, assigned by the coordinator at join
    /// time and stamped on every status report, heartbeat, and job batch so
    /// a fenced-off previous incarnation can be told apart.
    pub worker_epoch: u64,
    /// How often the transport sends liveness heartbeats to the
    /// coordinator, independently of the worker loop (zero = disabled).
    pub heartbeat_interval: Duration,
    /// Include a frontier snapshot in every `snapshot_every`-th status
    /// report (zero = never). Snapshots are what make crash recovery and
    /// checkpointing exact; 1 keeps the coordinator's ledger current to the
    /// latest report.
    pub snapshot_every: u32,
    /// Query-cache capacity override (`--solver-cache`); `None` keeps the
    /// solver's built-in default.
    pub solver_cache: Option<usize>,
    /// Which solver backend strategy the worker runs
    /// (`--solver-backend`). Only feasibility searches are affected; see
    /// the determinism notes on the solver.
    pub solver_backend: SolverBackendKind,
    /// Whether constraint-cache slices ride job batches and status gossip
    /// for this run (`--cache-gossip`).
    pub cache_gossip: bool,
}

/// Connection preamble and envelope for every frame a transport carries.
#[derive(Clone, Debug, Serialize, Deserialize)]
// `Status` dominates both in frequency and size (stats + coverage); keeping
// it inline avoids a per-report allocation on the hottest frame path.
#[allow(clippy::large_enum_variant)]
pub enum WireMessage {
    /// Coordinator → worker, first frame on the control connection: the
    /// worker's identity, the cluster size, and every worker's listen
    /// address (used for peer-to-peer job transfers).
    CoordinatorHello {
        /// The coordinator's [`WIRE_VERSION`]; the worker drops the
        /// connection on a mismatch.
        version: u32,
        /// Identity assigned to the receiving worker.
        worker: WorkerId,
        /// Total number of workers in the cluster.
        num_workers: u32,
        /// Listen address of every worker, indexed by worker id.
        peers: Vec<String>,
    },
    /// Coordinator → worker: begin (or admit) a run.
    Start(Box<RunSpec>),
    /// Coordinator → worker: control for one run.
    Control {
        /// The run the control message addresses ([`RunId::SERVICE`] for
        /// daemon-level control).
        run: RunId,
        /// The control payload.
        msg: Control,
    },
    /// Worker → coordinator: periodic status.
    Status(StatusReport),
    /// Worker → coordinator: final results.
    Final(Box<FinalReport>),
    /// Worker → worker: encoded job batch.
    Jobs(JobBatch),
    /// Worker → coordinator, first frame on a worker-initiated connection:
    /// request to join the cluster (elastic membership).
    Join {
        /// The worker's [`WIRE_VERSION`]; the coordinator rejects joins
        /// from peers speaking a different version.
        version: u32,
        /// The listen address peers should dial for job transfers.
        listen_addr: String,
        /// The identity and epoch of this daemon's previous incarnation,
        /// when re-joining after a lost connection. The coordinator fences
        /// the old incarnation off (its jobs are reclaimed and its frames
        /// rejected) before admitting the new one.
        previous: Option<(WorkerId, u64)>,
    },
    /// Coordinator → worker: the join was accepted.
    JoinAck {
        /// Identity assigned to the joining worker.
        worker: WorkerId,
        /// Fencing epoch assigned to the joining worker.
        epoch: u64,
        /// The current cluster membership, including the new worker.
        peers: Vec<PeerInfo>,
        /// The exploration strategy the coordinator's portfolio assigned to
        /// this worker (authoritative once the run's `Start` ships it in
        /// [`RunSpec::strategy`]; carried here so the daemon can log its
        /// role before the run spec arrives).
        strategy: StrategyKind,
    },
    /// Worker → coordinator: periodic liveness signal, sent by the
    /// transport independently of the (possibly busy) worker loop so the
    /// failure detector does not confuse a long solver call with a crash.
    Heartbeat {
        /// The reporting worker.
        worker: WorkerId,
        /// The reporting worker's epoch.
        epoch: u64,
    },
    /// Worker → coordinator: graceful departure. The coordinator reclaims
    /// the worker's pending jobs immediately instead of waiting for the
    /// failure detector.
    Leave {
        /// The departing worker.
        worker: WorkerId,
        /// The departing worker's epoch.
        epoch: u64,
    },
}
