//! The cluster wire protocol.
//!
//! These are the messages the paper's deployment exchanges over the network
//! (§3.2–§3.3): control commands and the global coverage vector flowing from
//! the load balancer to workers, queue-length/coverage status reports
//! flowing back, encoded job batches travelling between workers, and the
//! final per-worker reports aggregated into the run result. They were
//! originally private enums inside the in-process cluster harness; promoting
//! them to public serde-serializable types is what lets the same worker and
//! balancer loops run over any [`Transport`](crate::Transport).

use crate::id::WorkerId;
use crate::stats::WorkerStats;
use c9_ir::Program;
use c9_vm::{CoverageSet, ExecutorConfig, StrategyKind, TestCase};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Control messages from the load balancer to a worker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Control {
    /// Transfer `count` jobs to worker `destination`.
    Balance {
        /// The worker that should receive the jobs.
        destination: WorkerId,
        /// Number of jobs to move.
        count: u64,
    },
    /// The updated global coverage bit vector (§3.3).
    GlobalCoverage(CoverageSet),
    /// Stop and report final results.
    Stop,
}

/// Status report from a worker to the load balancer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StatusReport {
    /// The reporting worker.
    pub worker: WorkerId,
    /// Pending exploration jobs (materialized candidates + virtual jobs).
    pub queue_length: u64,
    /// The worker's local line coverage.
    pub coverage: CoverageSet,
    /// Cumulative statistics.
    pub stats: WorkerStats,
    /// Whether the worker currently has nothing to explore.
    pub idle: bool,
}

/// Final report from a worker at shutdown.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FinalReport {
    /// The reporting worker.
    pub worker: WorkerId,
    /// Cumulative statistics.
    pub stats: WorkerStats,
    /// The worker's local line coverage.
    pub coverage: CoverageSet,
    /// Test cases generated for completed paths (when enabled).
    pub test_cases: Vec<TestCase>,
    /// Bug-exposing test cases.
    pub bugs: Vec<TestCase>,
}

/// A batch of jobs in transit between two workers: a [`JobTree`] prefix trie
/// serialized with [`JobTree::encode`].
///
/// [`JobTree`]: crate::JobTree
/// [`JobTree::encode`]: crate::JobTree::encode
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobBatch {
    /// The worker that exported the jobs.
    pub source: WorkerId,
    /// The run this batch belongs to; transports that serve multiple runs
    /// over time (worker daemons) stamp and filter on it so a batch sent
    /// during one run can never be imported into a later one.
    pub epoch: u64,
    /// The encoded job tree.
    pub encoded: Vec<u8>,
}

/// The environment model a remote worker should instantiate. The worker
/// process maps this to an `Arc<dyn Environment>`; the trait object itself
/// cannot cross the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnvSpec {
    /// `c9_vm::NullEnvironment`: syscalls beyond the engine core are stubs.
    #[default]
    Null,
    /// The symbolic POSIX model with its default configuration.
    Posix,
}

/// Everything a worker process needs to run one cluster member: shipped by
/// the coordinator as the first message of a run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunSpec {
    /// The program under test.
    pub program: Program,
    /// Which environment model to instantiate.
    pub env: EnvSpec,
    /// Per-path executor limits.
    pub executor: ExecutorConfig,
    /// Random seed (combined with the worker id).
    pub seed: u64,
    /// Exploration strategy.
    pub strategy: StrategyKind,
    /// Whether to solve for a concrete test case for every completed path.
    pub generate_test_cases: bool,
    /// Prefer exporting the deepest candidates when shedding load.
    pub export_deepest: bool,
    /// Instructions per worker quantum between message-handling points.
    pub quantum: u64,
    /// How often the worker reports status to the load balancer.
    pub status_interval: Duration,
    /// Whether this worker seeds the root job (worker 0 of a fresh run).
    pub seed_root: bool,
    /// Identifier of this run, unique among the runs a long-lived worker
    /// daemon serves; used to fence off stale in-flight messages.
    pub epoch: u64,
}

/// Connection preamble and envelope for every frame a transport carries.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum WireMessage {
    /// Coordinator → worker, first frame on the control connection: the
    /// worker's identity, the cluster size, and every worker's listen
    /// address (used for peer-to-peer job transfers).
    CoordinatorHello {
        /// Identity assigned to the receiving worker.
        worker: WorkerId,
        /// Total number of workers in the cluster.
        num_workers: u32,
        /// Listen address of every worker, indexed by worker id.
        peers: Vec<String>,
    },
    /// Coordinator → worker: begin a run.
    Start(Box<RunSpec>),
    /// Coordinator → worker: control during a run.
    Control(Control),
    /// Worker → coordinator: periodic status.
    Status(StatusReport),
    /// Worker → coordinator: final results.
    Final(Box<FinalReport>),
    /// Worker → worker: encoded job batch.
    Jobs(JobBatch),
}
