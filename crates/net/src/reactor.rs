//! The readiness-driven socket reactor behind the TCP transport.
//!
//! One thread owns every socket of an endpoint: listeners, the connection
//! to the coordinator, and every peer connection. Sockets are nonblocking;
//! the loop waits in `poll(2)` (via the offline [`poll`] shim — no `libc`
//! crate), accepts on readable listeners, parses length-prefixed frames
//! incrementally out of per-connection read buffers, drains per-connection
//! write queues when the kernel reports writability, and fires timers
//! (heartbeats, sweeps) off a single timer wheel. Everything the endpoint
//! layer sees is a stream of [`ReactorEvent`]s; everything it does is a
//! command sent through a [`ReactorHandle`].
//!
//! This replaces the thread-per-connection design the transport launched
//! with (a reader thread per accepted socket, a heartbeat thread per peer,
//! a join-handshake thread per dialer): a coordinator now holds O(1)
//! threads regardless of cluster size, which is what lets the same process
//! drive hundreds of workers — or, federated, hundreds of sub-coordinators.
//!
//! The reactor is payload-agnostic: it moves raw frame payloads (the bytes
//! after the 4-byte length prefix) and never deserializes a message. Frame
//! length validation against [`crate::frame::MAX_FRAME_LEN`]
//! still happens here, before any allocation, so a corrupt peer cannot
//! balloon a read buffer.

use crate::frame::MAX_FRAME_LEN;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identity of one socket (listener or connection) registered with a
/// reactor. Tokens are allocated by the handle, never reused, and remain
/// valid as names in events even after the underlying socket is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Identity of one timer on the reactor's timer wheel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

/// The longest the poll loop sleeps when nothing is due: an upper bound on
/// how stale a newly armed timer or a shutdown request can go unnoticed
/// even if the waker datagram is lost under memory pressure.
const MAX_POLL_WAIT: Duration = Duration::from_millis(50);

/// Size of the stack scratch buffer reads go through before landing in a
/// connection's frame buffer.
const READ_CHUNK: usize = 64 * 1024;

/// What the reactor tells the endpoint layer.
#[derive(Debug)]
pub enum ReactorEvent {
    /// A listener accepted a new connection, now registered as `conn`.
    Accepted {
        /// The listener the connection arrived on.
        listener: Token,
        /// The token the new connection was registered under.
        conn: Token,
        /// The dialer's remote address.
        peer: SocketAddr,
    },
    /// One complete frame arrived on `conn`; `payload` is the frame body
    /// (the length prefix already stripped and validated).
    Frame {
        /// The connection the frame arrived on.
        conn: Token,
        /// The frame payload, ready for `bincode` decoding.
        payload: Vec<u8>,
    },
    /// The connection closed: clean EOF, I/O error, or a protocol
    /// violation (oversized frame). The socket is already dropped; the
    /// token will never appear in another event.
    Closed {
        /// The connection that went away.
        conn: Token,
    },
    /// A [tick timer](ReactorHandle::set_tick) came due.
    Tick {
        /// The timer that fired.
        timer: TimerId,
    },
}

enum TimerKind {
    /// Emit [`ReactorEvent::Tick`] every period.
    Tick,
    /// Enqueue a pre-encoded frame on a connection every period (the
    /// heartbeat path). The timer dies silently with its connection.
    SendFrame { conn: Token, frame: Vec<u8> },
}

enum Command {
    AddListener(Token, TcpListener),
    AddConn(Token, TcpStream),
    Send(Token, Vec<u8>),
    /// Acknowledge (by dropping the sender) once the connection's write
    /// queue is empty — or the connection is gone.
    Flush(Token, Sender<()>),
    Close(Token),
    SetTimer(TimerId, Duration, TimerKind),
    CancelTimer(TimerId),
    Shutdown,
}

/// The endpoint layer's grip on a running reactor. Cloneable; the reactor
/// thread exits when every handle is dropped or [`shutdown`] is called.
///
/// [`shutdown`]: ReactorHandle::shutdown
#[derive(Clone)]
pub struct ReactorHandle {
    tx: Sender<Command>,
    waker: Arc<UdpSocket>,
    next_id: Arc<AtomicU64>,
}

impl ReactorHandle {
    fn next(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn command(&self, cmd: Command) {
        // A dead reactor makes every command a no-op; the endpoint layer
        // learns about it from the closed event channel.
        let _ = self.tx.send(cmd);
        self.wake();
    }

    fn wake(&self) {
        // One byte into the waker socket; a full buffer means a wakeup is
        // already pending, so failures are ignorable by design.
        let _ = self.waker.send(&[1]);
    }

    /// Registers a listening socket; accepted connections surface as
    /// [`ReactorEvent::Accepted`].
    pub fn add_listener(&self, listener: TcpListener) -> Token {
        let token = Token(self.next());
        self.command(Command::AddListener(token, listener));
        token
    }

    /// Registers an established connection. The stream is switched to
    /// nonblocking mode by the reactor; incoming frames surface as
    /// [`ReactorEvent::Frame`].
    pub fn add_conn(&self, conn: TcpStream) -> Token {
        let token = Token(self.next());
        self.command(Command::AddConn(token, conn));
        token
    }

    /// Enqueues one already-encoded frame (length prefix included) for
    /// write on `conn`. Frames enqueue in order and drain as the socket
    /// accepts them; a frame queued on a connection that is gone (or dies
    /// before the drain) is dropped, which the endpoint layer observes as
    /// [`ReactorEvent::Closed`].
    pub fn send(&self, conn: Token, frame: Vec<u8>) {
        self.command(Command::Send(conn, frame));
    }

    /// Blocks until every frame queued on `conn` so far has reached the
    /// socket (or the connection died, or `timeout` passed). Returns true
    /// on a completed flush. The barrier callers that are about to exit the
    /// process need: an enqueued frame survives only if the reactor gets to
    /// write it first.
    pub fn flush(&self, conn: Token, timeout: Duration) -> bool {
        let (tx, rx) = crossbeam::channel::unbounded::<()>();
        self.command(Command::Flush(conn, tx));
        // The reactor drops the sender once the queue is empty; a timeout
        // means the frames may not have made it out.
        matches!(
            rx.recv_timeout(timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected)
        )
    }

    /// Drops a connection (best effort: pending writes are flushed once,
    /// nonblocking). No [`ReactorEvent::Closed`] is emitted for a
    /// caller-initiated close.
    pub fn close(&self, conn: Token) {
        self.command(Command::Close(conn));
    }

    /// Arms a periodic timer emitting [`ReactorEvent::Tick`].
    pub fn set_tick(&self, period: Duration) -> TimerId {
        let id = TimerId(self.next());
        self.command(Command::SetTimer(id, period, TimerKind::Tick));
        id
    }

    /// Arms a periodic timer that enqueues `frame` on `conn` every
    /// `period` — the heartbeat primitive, replacing one dedicated thread
    /// per peer with one wheel entry. The timer is dropped silently when
    /// its connection goes away.
    pub fn set_send_timer(&self, conn: Token, period: Duration, frame: Vec<u8>) -> TimerId {
        let id = TimerId(self.next());
        self.command(Command::SetTimer(
            id,
            period,
            TimerKind::SendFrame { conn, frame },
        ));
        id
    }

    /// Disarms a timer.
    pub fn cancel_timer(&self, id: TimerId) {
        self.command(Command::CancelTimer(id));
    }

    /// Stops the reactor thread, dropping every socket it owns.
    pub fn shutdown(&self) {
        self.command(Command::Shutdown);
    }
}

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_queue: VecDeque<Vec<u8>>,
    /// How much of the front write-queue entry is already written.
    write_off: usize,
}

struct Timer {
    period: Duration,
    due: Instant,
    kind: TimerKind,
}

/// The reactor: spawn it, keep the handle, drain the events.
pub struct Reactor;

impl Reactor {
    /// Spawns the poll-loop thread. Returns the command handle and the
    /// event stream; the thread exits when every handle is gone or on
    /// [`ReactorHandle::shutdown`].
    pub fn spawn(name: &str) -> io::Result<(ReactorHandle, Receiver<ReactorEvent>)> {
        let (cmd_tx, cmd_rx) = unbounded::<Command>();
        let (event_tx, event_rx) = unbounded::<ReactorEvent>();

        // The waker: a connected localhost UDP pair. Handles write one
        // byte to interrupt `poll`; the loop drains it on wakeup. This is
        // the only self-pipe std can build without extra syscall bindings.
        let loop_side = UdpSocket::bind("127.0.0.1:0")?;
        let handle_side = UdpSocket::bind("127.0.0.1:0")?;
        loop_side.connect(handle_side.local_addr()?)?;
        handle_side.connect(loop_side.local_addr()?)?;
        loop_side.set_nonblocking(true)?;
        handle_side.set_nonblocking(true)?;

        let handle = ReactorHandle {
            tx: cmd_tx,
            waker: Arc::new(handle_side),
            next_id: Arc::new(AtomicU64::new(1)),
        };
        let next_id = handle.next_id.clone();
        std::thread::Builder::new()
            .name(format!("c9-reactor-{name}"))
            .spawn(move || {
                ReactorLoop {
                    cmd_rx,
                    event_tx,
                    waker: loop_side,
                    next_id,
                    listeners: HashMap::new(),
                    conns: HashMap::new(),
                    timers: HashMap::new(),
                    flushes: Vec::new(),
                }
                .run();
            })?;
        Ok((handle, event_rx))
    }
}

struct ReactorLoop {
    cmd_rx: Receiver<Command>,
    event_tx: Sender<ReactorEvent>,
    waker: UdpSocket,
    next_id: Arc<AtomicU64>,
    listeners: HashMap<Token, TcpListener>,
    conns: HashMap<Token, Conn>,
    timers: HashMap<TimerId, Timer>,
    /// Pending flush barriers: acknowledged (by drop) once the named
    /// connection's write queue is empty or the connection is gone.
    flushes: Vec<(Token, Sender<()>)>,
}

impl ReactorLoop {
    fn run(mut self) {
        loop {
            // Commands first: registrations and sends issued just before a
            // poll cycle take effect in this cycle, not the next.
            loop {
                match self.cmd_rx.try_recv() {
                    Ok(Command::Shutdown) => return,
                    Ok(cmd) => self.apply(cmd),
                    Err(crossbeam::channel::TryRecvError::Empty) => break,
                    Err(crossbeam::channel::TryRecvError::Disconnected) => return,
                }
            }

            let timeout = self.next_timeout();
            let mut fds = Vec::with_capacity(2 + self.listeners.len() + self.conns.len());
            // Index maps from pollfd position back to the socket it watches.
            let mut fd_tokens: Vec<FdSlot> = Vec::with_capacity(fds.capacity());
            {
                use std::os::unix::io::AsRawFd;
                fds.push(poll::PollFd::new(self.waker.as_raw_fd(), poll::POLLIN));
                fd_tokens.push(FdSlot::Waker);
                for (&token, listener) in &self.listeners {
                    fds.push(poll::PollFd::new(listener.as_raw_fd(), poll::POLLIN));
                    fd_tokens.push(FdSlot::Listener(token));
                }
                for (&token, conn) in &self.conns {
                    let mut interest = poll::POLLIN;
                    if !conn.write_queue.is_empty() {
                        interest |= poll::POLLOUT;
                    }
                    fds.push(poll::PollFd::new(conn.stream.as_raw_fd(), interest));
                    fd_tokens.push(FdSlot::Conn(token));
                }
            }

            let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            if poll::poll_fds(&mut fds, Some(timeout_ms)).is_err() {
                // EINTR is retried inside the shim; any other failure here
                // (EBADF from a racing close) resolves itself next cycle
                // when the dead socket is no longer in the set.
                continue;
            }

            for (fd, slot) in fds.iter().zip(&fd_tokens) {
                if fd.revents == 0 {
                    continue;
                }
                match *slot {
                    FdSlot::Waker => {
                        let mut buf = [0u8; 64];
                        while self.waker.recv(&mut buf).is_ok() {}
                    }
                    FdSlot::Listener(token) => self.accept_ready(token),
                    FdSlot::Conn(token) => {
                        if fd.has(poll::POLLOUT) {
                            self.flush_ready(token);
                        }
                        if fd.has(poll::POLLIN | poll::POLLHUP | poll::POLLERR | poll::POLLNVAL) {
                            self.read_ready(token);
                        }
                    }
                }
            }

            self.fire_timers();

            if !self.flushes.is_empty() {
                let conns = &self.conns;
                self.flushes.retain(|(token, _)| match conns.get(token) {
                    Some(conn) => !conn.write_queue.is_empty(),
                    // Dropping the sender acknowledges the barrier.
                    None => false,
                });
            }
        }
    }

    fn apply(&mut self, cmd: Command) {
        match cmd {
            Command::AddListener(token, listener) => {
                if listener.set_nonblocking(true).is_ok() {
                    self.listeners.insert(token, listener);
                }
            }
            Command::AddConn(token, stream) => {
                if stream.set_nonblocking(true).is_ok() {
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            read_buf: Vec::new(),
                            write_queue: VecDeque::new(),
                            write_off: 0,
                        },
                    );
                } else {
                    let _ = self.event_tx.send(ReactorEvent::Closed { conn: token });
                }
            }
            Command::Send(token, frame) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.write_queue.push_back(frame);
                    // Try draining immediately: most frames fit the socket
                    // buffer and never wait for a POLLOUT cycle.
                    self.flush_ready(token);
                }
            }
            Command::Flush(token, tx) => {
                // Try draining right away: if the queue is already empty the
                // barrier completes without waiting for a poll cycle.
                self.flush_ready(token);
                self.flushes.push((token, tx));
            }
            Command::Close(token) => {
                self.listeners.remove(&token);
                if let Some(token_conn) = self.conns.remove(&token) {
                    let mut conn = token_conn;
                    let _ = Self::drain_writes(&mut conn);
                }
            }
            Command::SetTimer(id, period, kind) => {
                self.timers.insert(
                    id,
                    Timer {
                        period,
                        due: Instant::now() + period,
                        kind,
                    },
                );
            }
            Command::CancelTimer(id) => {
                self.timers.remove(&id);
            }
            Command::Shutdown => unreachable!("handled by the caller"),
        }
    }

    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        self.timers
            .values()
            .map(|t| t.due.saturating_duration_since(now))
            .min()
            .unwrap_or(MAX_POLL_WAIT)
            .min(MAX_POLL_WAIT)
    }

    fn fire_timers(&mut self) {
        let now = Instant::now();
        let due: Vec<TimerId> = self
            .timers
            .iter()
            .filter(|(_, t)| t.due <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let Some(timer) = self.timers.get_mut(&id) else {
                continue;
            };
            timer.due = now + timer.period;
            match &timer.kind {
                TimerKind::Tick => {
                    let _ = self.event_tx.send(ReactorEvent::Tick { timer: id });
                }
                TimerKind::SendFrame { conn, frame } => {
                    let conn = *conn;
                    let frame = frame.clone();
                    if self.conns.contains_key(&conn) {
                        self.apply(Command::Send(conn, frame));
                    } else {
                        self.timers.remove(&id);
                    }
                }
            }
        }
    }

    fn accept_ready(&mut self, listener_token: Token) {
        loop {
            let Some(listener) = self.listeners.get(&listener_token) else {
                return;
            };
            match listener.accept() {
                Ok((stream, peer)) => {
                    let token = Token(self.next_id.fetch_add(1, Ordering::Relaxed));
                    self.apply(Command::AddConn(token, stream));
                    let _ = self.event_tx.send(ReactorEvent::Accepted {
                        listener: listener_token,
                        conn: token,
                        peer,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (ECONNABORTED);
                // the listener itself stays.
                Err(_) => return,
            }
        }
    }

    /// Writes as much of `conn`'s queue as the socket accepts right now.
    fn drain_writes(conn: &mut Conn) -> io::Result<()> {
        while let Some(front) = conn.write_queue.front() {
            match conn.stream.write(&front[conn.write_off..]) {
                Ok(n) => {
                    conn.write_off += n;
                    if conn.write_off >= front.len() {
                        conn.write_queue.pop_front();
                        conn.write_off = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        conn.stream.flush()
    }

    fn flush_ready(&mut self, token: Token) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if Self::drain_writes(conn).is_err() {
            self.drop_conn(token);
        }
    }

    /// Reads everything available on `conn` and emits the complete frames.
    fn read_ready(&mut self, token: Token) {
        let mut scratch = [0u8; READ_CHUNK];
        let mut closed = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        closed = true;
                        break;
                    }
                    Ok(n) => conn.read_buf.extend_from_slice(&scratch[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        closed = true;
                        break;
                    }
                }
            }
        }
        if !self.extract_frames(token) {
            return; // protocol violation: the connection is already gone
        }
        if closed {
            self.drop_conn(token);
        }
    }

    /// Cuts complete frames out of the connection's read buffer and emits
    /// them. Returns `false` if the connection was dropped for a protocol
    /// violation (frame length above the bound).
    fn extract_frames(&mut self, token: Token) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        let mut offset = 0usize;
        let mut violated = false;
        let mut frames = Vec::new();
        loop {
            let buf = &conn.read_buf[offset..];
            if buf.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes(buf[..4].try_into().expect("4-byte slice")) as usize;
            if len > MAX_FRAME_LEN {
                violated = true;
                break;
            }
            if buf.len() < 4 + len {
                break;
            }
            frames.push(buf[4..4 + len].to_vec());
            offset += 4 + len;
        }
        if offset > 0 {
            conn.read_buf.drain(..offset);
        }
        for payload in frames {
            let _ = self.event_tx.send(ReactorEvent::Frame {
                conn: token,
                payload,
            });
        }
        if violated {
            self.drop_conn(token);
            return false;
        }
        true
    }

    fn drop_conn(&mut self, token: Token) {
        if self.conns.remove(&token).is_some() {
            let _ = self.event_tx.send(ReactorEvent::Closed { conn: token });
        }
    }
}

enum FdSlot {
    Waker,
    Listener(Token),
    Conn(Token),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;
    use std::net::TcpListener;

    fn recv_event(rx: &Receiver<ReactorEvent>, what: &str) -> ReactorEvent {
        rx.recv_timeout(Duration::from_secs(5))
            .unwrap_or_else(|_| panic!("timed out waiting for {what}"))
    }

    #[test]
    fn frames_round_trip_through_listener() {
        let (handle, events) = Reactor::spawn("test-rt").expect("spawn");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        handle.add_listener(listener);

        let client = TcpStream::connect(addr).expect("connect");
        let client_token = handle.add_conn(client);

        let accepted = recv_event(&events, "accept");
        let ReactorEvent::Accepted {
            conn: server_token, ..
        } = accepted
        else {
            panic!("expected Accepted, got {accepted:?}");
        };

        // Client -> server.
        let frame = encode_frame(&String::from("ping")).expect("encode");
        handle.send(client_token, frame);
        let event = recv_event(&events, "frame");
        let ReactorEvent::Frame { conn, payload } = event else {
            panic!("expected Frame, got {event:?}");
        };
        assert_eq!(conn, server_token);
        let msg: String = bincode::deserialize(&payload).expect("decode");
        assert_eq!(msg, "ping");

        // Server -> client.
        let frame = encode_frame(&String::from("pong")).expect("encode");
        handle.send(server_token, frame);
        let event = recv_event(&events, "reply frame");
        let ReactorEvent::Frame { conn, payload } = event else {
            panic!("expected Frame, got {event:?}");
        };
        assert_eq!(conn, client_token);
        let msg: String = bincode::deserialize(&payload).expect("decode");
        assert_eq!(msg, "pong");
        handle.shutdown();
    }

    #[test]
    fn partial_frames_assemble_incrementally() {
        let (handle, events) = Reactor::spawn("test-partial").expect("spawn");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        handle.add_listener(listener);

        let mut client = TcpStream::connect(addr).expect("connect");
        let ReactorEvent::Accepted {
            conn: server_token, ..
        } = recv_event(&events, "accept")
        else {
            panic!("expected Accepted");
        };

        // Dribble a frame across three writes with pauses, so the reactor
        // sees it in pieces.
        let frame = encode_frame(&vec![9u32; 1000]).expect("encode");
        for chunk in frame.chunks(frame.len() / 3 + 1) {
            client.write_all(chunk).expect("write");
            client.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(20));
        }
        let ReactorEvent::Frame { conn, payload } = recv_event(&events, "frame") else {
            panic!("expected Frame");
        };
        assert_eq!(conn, server_token);
        let msg: Vec<u32> = bincode::deserialize(&payload).expect("decode");
        assert_eq!(msg.len(), 1000);
        handle.shutdown();
    }

    #[test]
    fn peer_close_emits_closed() {
        let (handle, events) = Reactor::spawn("test-close").expect("spawn");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        handle.add_listener(listener);
        let client = TcpStream::connect(addr).expect("connect");
        let ReactorEvent::Accepted {
            conn: server_token, ..
        } = recv_event(&events, "accept")
        else {
            panic!("expected Accepted");
        };
        drop(client);
        let ReactorEvent::Closed { conn } = recv_event(&events, "closed") else {
            panic!("expected Closed");
        };
        assert_eq!(conn, server_token);
        handle.shutdown();
    }

    #[test]
    fn oversized_frame_drops_the_connection() {
        let (handle, events) = Reactor::spawn("test-oversize").expect("spawn");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        handle.add_listener(listener);
        let mut client = TcpStream::connect(addr).expect("connect");
        let ReactorEvent::Accepted {
            conn: server_token, ..
        } = recv_event(&events, "accept")
        else {
            panic!("expected Accepted");
        };
        client
            .write_all(&(u32::MAX).to_le_bytes())
            .expect("write bogus header");
        let ReactorEvent::Closed { conn } = recv_event(&events, "closed") else {
            panic!("expected Closed");
        };
        assert_eq!(conn, server_token);
        handle.shutdown();
    }

    #[test]
    fn send_timer_delivers_periodic_frames() {
        let (handle, events) = Reactor::spawn("test-timer").expect("spawn");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        handle.add_listener(listener);
        let client = TcpStream::connect(addr).expect("connect");
        let client_token = handle.add_conn(client);
        let ReactorEvent::Accepted { .. } = recv_event(&events, "accept") else {
            panic!("expected Accepted");
        };
        let beat = encode_frame(&String::from("hb")).expect("encode");
        handle.set_send_timer(client_token, Duration::from_millis(10), beat);
        let mut beats = 0;
        let deadline = Instant::now() + Duration::from_secs(5);
        while beats < 3 && Instant::now() < deadline {
            if let Ok(ReactorEvent::Frame { payload, .. }) =
                events.recv_timeout(Duration::from_millis(200))
            {
                let msg: String = bincode::deserialize(&payload).expect("decode");
                assert_eq!(msg, "hb");
                beats += 1;
            }
        }
        assert_eq!(beats, 3, "expected three heartbeats");
        handle.shutdown();
    }

    #[test]
    fn tick_timer_fires_and_cancels() {
        let (handle, events) = Reactor::spawn("test-tick").expect("spawn");
        let id = handle.set_tick(Duration::from_millis(5));
        let ReactorEvent::Tick { timer } = recv_event(&events, "tick") else {
            panic!("expected Tick");
        };
        assert_eq!(timer, id);
        handle.cancel_timer(id);
        // Drain anything already queued, then expect silence.
        while events.try_recv().is_ok() {}
        std::thread::sleep(Duration::from_millis(30));
        assert!(events.try_recv().is_err(), "cancelled timer kept firing");
        handle.shutdown();
    }
}
