//! Drift guards for `WorkerStats::merge` (and `SolverStats::merge`).
//!
//! The hazard: someone adds a counter to the struct but forgets to fold it
//! in `merge`, and cluster totals silently under-report from then on. Two
//! complementary guards catch that at CI time:
//!
//! 1. The derive-reflected field list (`serde::Reflect::FIELD_NAMES`) must
//!    equal the field list these tests were written against. Adding a field
//!    fails the assertion until the test — and therefore `merge` — is
//!    revisited.
//! 2. A value-level probe: a stats value with *every* field set to a
//!    distinct nonzero value, merged into a default, must encode to exactly
//!    the probe's bytes (all fields summed-from-zero except `threads`,
//!    which is a max). A field skipped by `merge` stays zero and flips the
//!    encoding.

use c9_net::WorkerStats;
use c9_solver::SolverStats;
use c9_trace::MetricsSnapshot;
use serde::Reflect;

/// Fields `WorkerStats::merge` folds. Update together with `merge` itself.
const WORKER_STATS_FIELDS: &[&str] = &[
    "threads",
    "solver",
    "useful_instructions",
    "replay_instructions",
    "paths_completed",
    "bugs_found",
    "jobs_sent",
    "jobs_received",
    "job_bytes_sent",
    "materializations",
    "replay_saved_instructions",
    "anchor_hits",
    "anchor_misses",
    "replay_divergences",
    "strategy_switches",
    "gossip_bytes_sent",
    "gossip_bytes_received",
    "metrics",
];

/// Fields `SolverStats::merge` folds. Update together with `merge` itself.
const SOLVER_STATS_FIELDS: &[&str] = &[
    "queries",
    "query_cache_hits",
    "model_cache_hits",
    "searches",
    "unknowns",
    "unsat",
    "sat",
    "independence_slices",
    "imported_cache_entries",
    "warm_hits",
];

#[test]
fn worker_stats_field_list_matches_merge() {
    assert_eq!(
        <WorkerStats as Reflect>::FIELD_NAMES,
        WORKER_STATS_FIELDS,
        "WorkerStats gained or lost a field: update WorkerStats::merge \
         (crates/net/src/stats.rs) and then this list"
    );
}

#[test]
fn solver_stats_field_list_matches_merge() {
    assert_eq!(
        <SolverStats as Reflect>::FIELD_NAMES,
        SOLVER_STATS_FIELDS,
        "SolverStats gained or lost a field: update SolverStats::merge \
         (crates/solver/src/stats.rs) and then this list"
    );
}

fn solver_probe(scale: u64) -> SolverStats {
    // Exhaustive literal on purpose — no `..Default::default()` — so a new
    // field is a compile error here, forcing this test to be revisited.
    SolverStats {
        queries: 101 * scale,
        query_cache_hits: 102 * scale,
        model_cache_hits: 103 * scale,
        searches: 104 * scale,
        unknowns: 105 * scale,
        unsat: 106 * scale,
        sat: 107 * scale,
        independence_slices: 108 * scale,
        imported_cache_entries: 109 * scale,
        warm_hits: 110 * scale,
    }
}

fn worker_probe(scale: u64) -> WorkerStats {
    let mut metrics = MetricsSnapshot::default();
    metrics.counters.insert("probe".into(), 301 * scale);
    WorkerStats {
        threads: 4,
        solver: solver_probe(scale),
        useful_instructions: 201 * scale,
        replay_instructions: 202 * scale,
        paths_completed: 203 * scale,
        bugs_found: 204 * scale,
        jobs_sent: 205 * scale,
        jobs_received: 206 * scale,
        job_bytes_sent: 207 * scale,
        materializations: 208 * scale,
        replay_saved_instructions: 209 * scale,
        anchor_hits: 210 * scale,
        anchor_misses: 211 * scale,
        replay_divergences: 212 * scale,
        strategy_switches: 213 * scale,
        gossip_bytes_sent: 214 * scale,
        gossip_bytes_received: 215 * scale,
        metrics,
    }
}

#[test]
fn worker_stats_merge_touches_every_field() {
    // default + probe must reproduce the probe bit-for-bit: any field
    // `merge` forgets stays at its default and changes the encoding.
    let mut merged = WorkerStats::default();
    merged.merge(&worker_probe(1));
    assert_eq!(
        serde::to_bytes(&merged),
        serde::to_bytes(&worker_probe(1)),
        "WorkerStats::merge left some field at its default"
    );

    // probe(1) + probe(2) must sum every additive field (threads is a max).
    let mut summed = worker_probe(1);
    summed.merge(&worker_probe(2));
    let mut expected = worker_probe(3);
    expected.threads = 4;
    assert_eq!(
        serde::to_bytes(&summed),
        serde::to_bytes(&expected),
        "WorkerStats::merge does not sum every additive field"
    );
}

#[test]
fn solver_stats_merge_touches_every_field() {
    let mut merged = SolverStats::default();
    merged.merge(&solver_probe(1));
    assert_eq!(merged, solver_probe(1));

    let mut summed = solver_probe(1);
    summed.merge(&solver_probe(2));
    assert_eq!(summed, solver_probe(3));
}
