//! Property tests for the wire codec: random jobs and wire messages must
//! round-trip bit-exactly through the job-tree encoding, the flat encoding,
//! and the length-prefixed bincode frame encoder.

use c9_net::frame::{decode_frame, encode_frame, read_frame, write_frame};
use c9_net::{
    decode_jobs_flat, encode_jobs_flat, Control, Job, JobBatch, JobTree, RunId, StatusReport,
    WireMessage, WorkerId, WorkerStats, WIRE_VERSION,
};
use c9_solver::CacheSlice;
use c9_vm::{CoverageSet, PathChoice};
use proptest::prelude::*;

fn arb_choice() -> impl Strategy<Value = PathChoice> {
    prop_oneof![
        Just(PathChoice::Branch(false)),
        Just(PathChoice::Branch(true)),
        (0u32..2000, 1u32..2000).prop_map(|(a, b)| {
            let total = a.max(b).max(1);
            PathChoice::Alt {
                chosen: a.min(b) % total,
                total,
            }
        }),
    ]
}

fn arb_job() -> impl Strategy<Value = Job> {
    proptest::collection::vec(arb_choice(), 0..40).prop_map(Job::new)
}

fn arb_jobs() -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec(arb_job(), 0..24)
}

fn sorted_dedup(mut jobs: Vec<Job>) -> Vec<Job> {
    jobs.sort_by(|a, b| a.path.cmp(&b.path));
    jobs.dedup();
    jobs
}

proptest! {
    /// JobTree::encode/decode round-trips arbitrary job batches; the set of
    /// jobs (paths) survives the trie aggregation.
    #[test]
    fn job_tree_roundtrip(jobs in arb_jobs()) {
        let tree = JobTree::from_jobs(&jobs);
        let bytes = tree.encode();
        let decoded = JobTree::decode(&bytes).expect("decode must succeed");
        prop_assert_eq!(&decoded, &tree);
        prop_assert_eq!(decoded.to_jobs(), sorted_dedup(jobs));
    }

    /// The flat encoding round-trips arbitrary job batches exactly
    /// (preserving order and duplicates).
    #[test]
    fn flat_encoding_roundtrip(jobs in arb_jobs()) {
        let bytes = encode_jobs_flat(&jobs);
        let decoded = decode_jobs_flat(&bytes).expect("decode must succeed");
        prop_assert_eq!(decoded, jobs);
    }

    /// Jobs survive the full wire path: trie aggregation, tree encoding,
    /// JobBatch message, bincode, length-prefixed frame, and back.
    #[test]
    fn jobs_roundtrip_through_frame_encoder(
        jobs in arb_jobs(),
        source in 0u32..64,
        seq in 0u64..1_000_000,
    ) {
        let batch = JobBatch {
            source: WorkerId(source),
            run: RunId(u64::from(source) * 31 + 1),
            source_epoch: u64::from(source) + 1,
            seq,
            encoded: JobTree::from_jobs(&jobs).encode(),
            slice: (seq % 2 == 0).then(CacheSlice::default),
        };
        let frame = encode_frame(&WireMessage::Jobs(batch.clone())).expect("encode frame");
        let (decoded, used): (WireMessage, usize) = decode_frame(&frame).expect("decode frame");
        prop_assert_eq!(used, frame.len());
        let WireMessage::Jobs(decoded_batch) = decoded else {
            panic!("wrong message variant");
        };
        prop_assert_eq!(&decoded_batch, &batch);
        let tree = JobTree::decode(&decoded_batch.encoded).expect("decode job tree");
        prop_assert_eq!(tree.to_jobs(), sorted_dedup(jobs));
    }

    /// Control messages round-trip through the frame encoder.
    #[test]
    fn control_roundtrips_through_frame_encoder(
        dst in 0u32..512,
        count in 0u64..1_000_000,
        covered in proptest::collection::vec(0u32..256, 0..32),
    ) {
        let mut coverage = CoverageSet::new(256);
        for line in &covered {
            coverage.cover(c9_ir::LineId(*line));
        }
        for msg in [
            Control::Balance { destination: WorkerId(dst), count },
            Control::GlobalCoverage(coverage),
            Control::Inject { seq: count, encoded: vec![0, 0] },
            Control::Membership(vec![c9_net::PeerInfo {
                worker: WorkerId(dst),
                addr: "127.0.0.1:9101".into(),
                epoch: count,
                alive: count % 2 == 0,
            }]),
            Control::SetStrategy {
                strategy: c9_vm::StrategyKind::ALL[(dst as usize) % c9_vm::StrategyKind::ALL.len()],
                seed: count,
            },
            Control::Stop,
            Control::HotSet(CacheSlice::default()),
        ] {
            let run = RunId(u64::from(dst) + 1);
            let frame =
                encode_frame(&WireMessage::Control { run, msg: msg.clone() }).expect("encode");
            let (decoded, _): (WireMessage, usize) = decode_frame(&frame).expect("decode");
            let WireMessage::Control { run: decoded_run, msg: decoded_msg } = decoded else {
                panic!("wrong message variant");
            };
            prop_assert_eq!(decoded_run, run);
            prop_assert_eq!(decoded_msg, msg);
        }
    }

    /// Status reports round-trip through the streaming frame reader/writer.
    #[test]
    fn status_roundtrips_through_frame_stream(
        worker in 0u32..64,
        queue_length in 0u64..10_000,
        idle: bool,
        useful in 0u64..u64::MAX / 2,
        paths in 0u64..1_000_000,
    ) {
        let report = StatusReport {
            run: RunId(u64::from(worker) * 13 + 1),
            worker: WorkerId(worker),
            epoch: u64::from(worker) + 7,
            queue_length,
            coverage: CoverageSet::new(100),
            stats: WorkerStats {
                useful_instructions: useful,
                paths_completed: paths,
                ..WorkerStats::default()
            },
            idle,
            strategy: c9_vm::StrategyKind::Cupa,
            frontier: idle.then(|| JobTree::from_jobs(&[]).encode()),
            new_bugs: Vec::new(),
            transfers: vec![
                c9_net::TransferEvent::Exported {
                    destination: WorkerId(worker + 1),
                    seq: paths,
                    encoded: JobTree::from_jobs(&[]).encode(),
                },
                c9_net::TransferEvent::Sent { destination: WorkerId(worker + 1), seq: paths },
                c9_net::TransferEvent::Requeued { destination: WorkerId(worker + 1), seq: paths },
                c9_net::TransferEvent::Imported {
                    source: c9_net::COORDINATOR,
                    seq: useful,
                    encoded: JobTree::from_jobs(&[]).encode(),
                },
            ],
            gossip: idle.then(CacheSlice::default),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireMessage::Status(report.clone())).expect("write");
        let mut cursor = std::io::Cursor::new(buf);
        let decoded: WireMessage = read_frame(&mut cursor).expect("read");
        let WireMessage::Status(decoded_report) = decoded else {
            panic!("wrong message variant");
        };
        prop_assert_eq!(decoded_report.run, report.run);
        prop_assert_eq!(decoded_report.worker, report.worker);
        prop_assert_eq!(decoded_report.epoch, report.epoch);
        prop_assert_eq!(decoded_report.queue_length, report.queue_length);
        prop_assert_eq!(decoded_report.idle, report.idle);
        prop_assert_eq!(decoded_report.frontier, report.frontier);
        prop_assert_eq!(decoded_report.transfers, report.transfers);
        prop_assert_eq!(decoded_report.gossip, report.gossip);
        prop_assert_eq!(
            decoded_report.stats.useful_instructions,
            report.stats.useful_instructions
        );
        prop_assert_eq!(decoded_report.stats.paths_completed, report.stats.paths_completed);
    }

    /// The membership handshake frames round-trip through the frame encoder.
    #[test]
    fn membership_frames_roundtrip_through_frame_encoder(
        worker in 0u32..64,
        epoch in 0u64..1_000_000,
        rejoin: bool,
    ) {
        let frames = [
            WireMessage::Join {
                version: WIRE_VERSION,
                listen_addr: "127.0.0.1:9101".into(),
                previous: rejoin.then_some((WorkerId(worker), epoch)),
            },
            WireMessage::JoinAck {
                worker: WorkerId(worker),
                epoch,
                peers: vec![c9_net::PeerInfo {
                    worker: WorkerId(worker),
                    addr: "127.0.0.1:9101".into(),
                    epoch,
                    alive: true,
                }],
                strategy: if rejoin {
                    c9_vm::StrategyKind::Cupa
                } else {
                    c9_vm::StrategyKind::RandomPath
                },
            },
            WireMessage::Heartbeat { worker: WorkerId(worker), epoch },
            WireMessage::Leave { worker: WorkerId(worker), epoch },
        ];
        for msg in frames {
            let frame = encode_frame(&msg).expect("encode");
            let (decoded, used): (WireMessage, usize) = decode_frame(&frame).expect("decode");
            prop_assert_eq!(used, frame.len());
            match (msg, decoded) {
                (
                    WireMessage::Join { version: v1, listen_addr: a, previous: p },
                    WireMessage::Join { version: v2, listen_addr: b, previous: q },
                ) => {
                    prop_assert_eq!(v1, v2);
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(p, q);
                }
                (
                    WireMessage::JoinAck { worker: w1, epoch: e1, peers: p1, strategy: s1 },
                    WireMessage::JoinAck { worker: w2, epoch: e2, peers: p2, strategy: s2 },
                ) => {
                    prop_assert_eq!(w1, w2);
                    prop_assert_eq!(e1, e2);
                    prop_assert_eq!(p1, p2);
                    prop_assert_eq!(s1, s2);
                }
                (
                    WireMessage::Heartbeat { worker: w1, epoch: e1 },
                    WireMessage::Heartbeat { worker: w2, epoch: e2 },
                )
                | (
                    WireMessage::Leave { worker: w1, epoch: e1 },
                    WireMessage::Leave { worker: w2, epoch: e2 },
                ) => {
                    prop_assert_eq!(w1, w2);
                    prop_assert_eq!(e1, e2);
                }
                _ => panic!("variant changed across the wire"),
            }
        }
    }

    /// Corrupting any single byte of an encoded job tree never panics the
    /// decoder: it either fails cleanly or yields some valid tree.
    #[test]
    fn corrupted_tree_bytes_never_panic(jobs in arb_jobs(), flip in 0usize..4096, xor in 1u8..=255) {
        let mut bytes = JobTree::from_jobs(&jobs).encode();
        if !bytes.is_empty() {
            let idx = flip % bytes.len();
            bytes[idx] ^= xor;
            let _ = JobTree::decode(&bytes); // must not panic
        }
    }
}

/// Golden-byte tests pinning the version-3 frame layout, so an accidental
/// field reorder or type change shows up as a decode-compat failure rather
/// than as silent cross-version corruption.
mod decode_compat {
    use super::*;

    #[test]
    fn wire_version_is_three() {
        assert_eq!(WIRE_VERSION, 3);
    }

    /// The hello preamble's bincode layout: varint enum tag, version,
    /// worker id, worker count, peer list — behind the 4-byte LE frame
    /// length prefix. These exact bytes are what a v3 peer must accept.
    #[test]
    fn hello_preamble_golden_bytes() {
        let frame = encode_frame(&WireMessage::CoordinatorHello {
            version: WIRE_VERSION,
            worker: WorkerId(3),
            num_workers: 7,
            peers: Vec::new(),
        })
        .expect("encode");
        let body = [
            0, // variant CoordinatorHello
            WIRE_VERSION as u8,
            3, // worker
            7, // num_workers
            0, // empty peer list
        ];
        let mut expected = (body.len() as u32).to_le_bytes().to_vec();
        expected.extend_from_slice(&body);
        assert_eq!(frame, expected);
    }

    /// A v1 hello (no version field) decodes under the current schema into a
    /// nonsense version value — exactly why the receiver checks the version
    /// before trusting anything else in the frame.
    #[test]
    fn v1_hello_is_rejected_by_version_check() {
        // A v1 CoordinatorHello { worker: 3, num_workers: 7, peers: [] }:
        // variant tag, worker, num_workers, empty peer list (varints).
        let v1_body = [0u8, 3, 7, 0];
        let mut frame = (v1_body.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&v1_body);
        match decode_frame::<WireMessage>(&frame) {
            Ok((WireMessage::CoordinatorHello { version, .. }, _)) => {
                // Decoded, but the first field (worker=3) lands in the
                // version slot; the handshake check catches it.
                assert_ne!(version, WIRE_VERSION);
            }
            Ok(_) => panic!("v1 hello decoded as a different variant"),
            Err(_) => {} // failing to decode is an equally safe rejection
        }
    }

    /// `ExportOrder` rides the wire as a one-byte variant tag with
    /// `Shallowest` = 0 and `Deepest` = 1 — bit-identical to the
    /// `export_deepest: bool` it replaced (false = shallowest), pinned here
    /// so the encoding never drifts silently.
    #[test]
    fn export_order_is_wire_compatible_with_the_old_bool() {
        use c9_net::ExportOrder;
        let shallow = bincode::serialize(&ExportOrder::Shallowest).expect("serialize");
        let deep = bincode::serialize(&ExportOrder::Deepest).expect("serialize");
        assert_eq!(shallow, bincode::serialize(&false).expect("serialize"));
        assert_eq!(deep, bincode::serialize(&true).expect("serialize"));
        assert_eq!(shallow, [0]);
        assert_eq!(deep, [1]);
    }

    /// Run-scoped control envelope: the run id precedes the payload. The
    /// v3 `Control::HotSet` variant was appended *after* `Stop`, so these
    /// v2 bytes are still exactly what rides the wire.
    #[test]
    fn control_envelope_golden_bytes() {
        let frame = encode_frame(&WireMessage::Control {
            run: RunId(9),
            msg: Control::Stop,
        })
        .expect("encode");
        let body = [
            2, // variant Control
            9, // run id
            5, // Control::Stop tag
        ];
        let mut expected = (body.len() as u32).to_le_bytes().to_vec();
        expected.extend_from_slice(&body);
        assert_eq!(frame, expected);
    }
}
