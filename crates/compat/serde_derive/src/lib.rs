//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! stand-in.
//!
//! The build environment has no crates.io mirror, so this derive is written
//! against `proc_macro` alone (no `syn`/`quote`): a small hand-rolled parser
//! extracts the shape of the struct or enum (field names / arities / variant
//! list) and the impls are emitted as source strings. Only the shapes this
//! workspace uses are supported: non-generic structs (named, tuple, unit)
//! and enums whose variants are unit, tuple, or struct-like. Serde field
//! attributes (`#[serde(...)]`) are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips outer attributes (`#[...]`) at `i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Advances past tokens until a top-level `,`, tracking `<...>` nesting so
/// commas inside generic arguments are not treated as separators. Returns
/// whether a comma was consumed.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut angle_depth: i32 = 0;
    let mut prev_dash = false;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return true;
                }
                '<' => angle_depth += 1,
                '>' if prev_dash => {} // `->` in fn types
                '>' => angle_depth -= 1,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        *i += 1;
    }
    false
}

fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        fields.push(name);
        skip_until_comma(&tokens, &mut i);
    }
    Ok(fields)
}

fn parse_tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        arity += 1;
        skip_until_comma(&tokens, &mut i);
    }
    arity
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_arity(g);
                i += 1;
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g)?;
                i += 1;
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an optional explicit discriminant, then the separator comma.
        skip_until_comma(&tokens, &mut i);
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found `{other:?}`")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stand-in derive does not support generic type `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: parse_tuple_arity(g),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: `{other:?}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g)?,
            }),
            other => Err(format!("unsupported enum body: `{other:?}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Derives `serde::Serialize` (the offline stand-in's trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let mut body = String::new();
    let name = match &item {
        Item::NamedStruct { name, fields } => {
            for f in fields {
                body.push_str(&format!("::serde::Serialize::encode_to(&self.{f}, out);\n"));
            }
            name
        }
        Item::TupleStruct { name, arity } => {
            for idx in 0..*arity {
                body.push_str(&format!(
                    "::serde::Serialize::encode_to(&self.{idx}, out);\n"
                ));
            }
            name
        }
        Item::UnitStruct { name } => name,
        Item::Enum { name, variants } => {
            body.push_str("match self {\n");
            for (tag, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => body.push_str(&format!(
                        "{name}::{vname} => {{ ::serde::write_varint(out, {tag}u64); }}\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        body.push_str(&format!(
                            "{name}::{vname}({}) => {{ ::serde::write_varint(out, {tag}u64); ",
                            binds.join(", ")
                        ));
                        for b in &binds {
                            body.push_str(&format!("::serde::Serialize::encode_to({b}, out); "));
                        }
                        body.push_str("}\n");
                    }
                    VariantShape::Named(fields) => {
                        body.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ ::serde::write_varint(out, {tag}u64); ",
                            fields.join(", ")
                        ));
                        for f in fields {
                            body.push_str(&format!("::serde::Serialize::encode_to({f}, out); "));
                        }
                        body.push_str("}\n");
                    }
                }
            }
            body.push_str("}\n");
            name
        }
    };
    let mut out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn encode_to(&self, out: &mut ::std::vec::Vec<u8>) {{\n\
         let _ = &out;\n\
         {body}\n\
         }}\n\
         }}"
    );
    // Named structs additionally get `serde::Reflect`, exposing the field
    // list so tests can pin exhaustiveness properties (e.g. "every field
    // participates in merge"). Emitted only from Serialize so a type
    // deriving both traits gets a single impl.
    if let Item::NamedStruct { name, fields } = &item {
        let list: Vec<String> = fields.iter().map(|f| format!("{f:?}")).collect();
        out.push_str(&format!(
            "\nimpl ::serde::Reflect for {name} {{\n\
             const FIELD_NAMES: &'static [&'static str] = &[{}];\n\
             }}",
            list.join(", ")
        ));
    }
    out.parse().unwrap()
}

/// Derives `serde::Deserialize` (the offline stand-in's trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let decode = "::serde::Deserialize::decode_from(r)?";
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields.iter().map(|f| format!("{f}: {decode}")).collect();
            (
                name,
                format!(
                    "::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity).map(|_| decode.to_string()).collect();
            (
                name,
                format!("::std::result::Result::Ok({name}({}))", inits.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name, format!("::std::result::Result::Ok({name})")),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (tag, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{tag}u64 => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let inits: Vec<String> = (0..*arity).map(|_| decode.to_string()).collect();
                        arms.push_str(&format!(
                            "{tag}u64 => ::std::result::Result::Ok({name}::{vname}({})),\n",
                            inits.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> =
                            fields.iter().map(|f| format!("{f}: {decode}")).collect();
                        arms.push_str(&format!(
                            "{tag}u64 => ::std::result::Result::Ok({name}::{vname} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            (
                name,
                format!(
                    "match r.varint()? {{\n{arms}\
                     _ => ::std::result::Result::Err(::serde::DecodeError::new(\"invalid enum tag\")),\n\
                     }}"
                ),
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn decode_from(r: &mut ::serde::Reader<'_>) -> ::std::result::Result<Self, ::serde::DecodeError> {{\n\
         let _ = &r;\n\
         {body}\n\
         }}\n\
         }}"
    );
    out.parse().unwrap()
}
