//! Offline stand-in for `criterion`.
//!
//! Provides the measurement API the workspace's benches use — benchmark
//! groups, `bench_function`, `sample_size`, `measurement_time`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple adaptive
//! timer: each benchmark is warmed up, then run in batches sized so one
//! sample takes a measurable amount of time, and the per-iteration mean,
//! minimum, and sample count are printed.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives the iterations of one benchmark.
pub struct Bencher<'a> {
    config: &'a BenchConfig,
    result: Option<Sample>,
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

#[derive(Clone, Copy, Debug)]
struct BenchConfig {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl<'a> Bencher<'a> {
    /// Runs `routine` repeatedly and records the timing distribution.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: grow the batch until one batch
        // takes at least ~1ms (or a calibration budget expires).
        let calibration_budget = Duration::from_millis(500);
        let calibration_start = Instant::now();
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1)
                || calibration_start.elapsed() >= calibration_budget
            {
                break;
            }
            batch = batch.saturating_mul(2);
        }

        let samples = self.config.sample_size.max(2);
        let budget = self.config.measurement_time;
        let run_start = Instant::now();
        let mut totals: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            totals.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
            if run_start.elapsed() >= budget {
                break;
            }
        }
        let mean_ns = totals.iter().sum::<f64>() / totals.len() as f64;
        let min_ns = totals.iter().copied().fold(f64::INFINITY, f64::min);
        self.result = Some(Sample {
            mean_ns,
            min_ns,
            samples: totals.len(),
            iters_per_sample: batch,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(config: &BenchConfig, id: &str, f: impl FnOnce(&mut Bencher<'_>)) {
    let mut bencher = Bencher {
        config,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(s) => println!(
            "bench {id:<40} mean {:>12}/iter  min {:>12}/iter  ({} samples × {} iters)",
            format_ns(s.mean_ns),
            format_ns(s.min_ns),
            s.samples,
            s.iters_per_sample,
        ),
        None => println!("bench {id:<40} (no measurement recorded)"),
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: BenchConfig,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<S: Into<String>, F: FnOnce(&mut Bencher<'_>)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&self.config, &id, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    config: BenchConfig,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<S: Into<String>, F: FnOnce(&mut Bencher<'_>)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&self.config, &id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
