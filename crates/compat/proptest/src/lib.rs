//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with `x in strategy` and `x: type`
//! parameters and an optional `#![proptest_config(...)]` header),
//! [`Strategy`] / [`Just`] / ranges / [`any`] / `prop_oneof!` /
//! `collection::vec`, and the `prop_assert*` macros. Cases are generated
//! from a deterministic per-test seed; failing inputs are reported via the
//! panic message rather than shrunk.

use rand::{Rng, SeedableRng, StdRng};

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Applies `f` to every drawn value.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.f)(self.source.new_value(rng))
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.new_value(rng), self.1.new_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.new_value(rng),
            self.1.new_value(rng),
            self.2.new_value(rng),
        )
    }
}

/// Strategy producing a constant.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: Clone,
    std::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Clone,
    std::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_std!(u8, u32, u64, bool, f64);

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut StdRng) -> u16 {
        (rng.gen::<u32>() >> 16) as u16
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> usize {
        rng.gen::<u64>() as usize
    }
}

macro_rules! impl_arbitrary_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                <$u>::arbitrary(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

/// Strategy drawing arbitrary values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy utilities used by the `prop_oneof!` macro.
pub mod strategy {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Uniform choice between boxed strategies of one value type.
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Creates a union over `options`; must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut StdRng) -> V {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].new_value(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Inclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length, inclusive.
        pub min: usize,
        /// Maximum length, inclusive.
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy producing vectors of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Runs `body` for every case of a property test. Used by the expansion of
/// [`proptest!`]; panics (failing the test) on the first failing case.
pub fn run_cases(config: &ProptestConfig, test_name: &str, mut body: impl FnMut(&mut StdRng)) {
    // FNV-1a over the test name gives each property its own seed sequence,
    // deterministic across runs.
    let mut name_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        name_hash ^= u64::from(b);
        name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..config.cases {
        let seed = name_hash ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = StdRng::seed_from_u64(seed);
        body(&mut rng);
    }
}

/// Samples a strategy once; exposed for the macro expansion.
pub fn sample<S: Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
    strategy.new_value(rng)
}

// Re-exported so generated code can name the rng type via `$crate`.
pub use rand::StdRng as TestRng;

/// Binds `proptest!` parameters from strategies; internal.
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr $(,)?) => {
        let $name = $crate::sample(&($strat), $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)+) => {
        let $name = $crate::sample(&($strat), $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
    ($rng:ident, $name:ident : $ty:ty $(,)?) => {
        let $name = $crate::sample(&$crate::any::<$ty>(), $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)+) => {
        let $name = $crate::sample(&$crate::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
}

/// Expands the test functions of a `proptest!` block; internal.
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr;) => {};
    ($config:expr; $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $crate::__proptest_bind!(__rng, $($params)*);
                $body
            });
        }
        $crate::__proptest_fns!($config; $($rest)*);
    };
}

/// Property-test block: each contained `#[test] fn` runs once per generated
/// case. Supports an optional `#![proptest_config(expr)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The common imports property tests expect.
pub mod prelude {
    pub use crate::strategy::Union;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_params_are_bound(a: u8, b: u64) {
            let _ = (a, b);
        }

        #[test]
        fn ranges_respect_bounds(x in 3u8..10, y in 1u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn oneof_picks_from_options(v in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn vec_strategy_sizes(data in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&data.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_accepted(x: u32) {
            let _ = x;
        }
    }
}
