//! Offline stand-in for `rand` 0.8, covering the API surface the workspace
//! uses: `StdRng::seed_from_u64`, `Rng::gen::<f64>()`, `Rng::gen_range`,
//! and `Rng::gen_bool`. The generator is xoshiro256** seeded via SplitMix64
//! — deterministic for a given seed, which is what the searchers need.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled; implemented for `a..b` and `a..=b` over the
/// integer types the workspace uses.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniformly samples `0..bound` using rejection to avoid modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The standard generator: xoshiro256** seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// `rand::rngs` module mirror.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u8..=255);
            assert!(w >= 1);
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of 1000 uniform samples should be near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.1);
    }
}
