//! Offline stand-in for `crossbeam`, providing the `channel` module the
//! workspace uses: unbounded MPMC channels with disconnect semantics,
//! implemented with `Mutex` + `Condvar`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        cond: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().expect("channel poisoned");
            // Checked under the queue lock: the last receiver's drop
            // discards queued messages while holding it, so a send racing
            // that drop either fails or is discarded — never stranded.
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            q.push_back(msg);
            drop(q);
            self.inner.cond.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.inner.cond.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.inner.senders.load(Ordering::Acquire) == 0
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().expect("channel poisoned");
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.disconnected() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.inner.cond.wait(q).expect("channel poisoned");
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .inner
                    .cond
                    .wait_timeout(q, deadline - now)
                    .expect("channel poisoned");
                q = guard;
                if result.timed_out() && q.is_empty() {
                    if self.disconnected() {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().expect("channel poisoned").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut q = self.inner.queue.lock().expect("channel poisoned");
            if self.inner.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver gone: discard queued messages (matching
                // crossbeam) so anything they own — reply senders in
                // particular — is released rather than stranded; a client
                // blocked on such a reply then observes the disconnect.
                q.clear();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_expires_on_empty_channel() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
        }

        #[test]
        fn receiver_drop_discards_queued_messages() {
            // A queued message owning a reply sender must be dropped with
            // the last receiver, so the reply receiver sees the disconnect
            // instead of blocking forever.
            let (tx, rx) = unbounded::<Sender<u32>>();
            let (reply_tx, reply_rx) = unbounded::<u32>();
            assert!(tx.send(reply_tx).is_ok());
            drop(rx);
            assert_eq!(reply_rx.recv(), Err(RecvError));
            assert!(tx.send(unbounded::<u32>().0).is_err());
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
