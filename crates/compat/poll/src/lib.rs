//! A minimal, dependency-free binding of `poll(2)`.
//!
//! The reactor in `c9-net` needs readiness notification over an arbitrary
//! number of sockets from one thread. `std` exposes no readiness API, and
//! this workspace builds offline without the `libc` crate — but every Rust
//! program on a Unix platform already links the platform C library through
//! `std`, so declaring the one symbol we need is enough. `poll(2)` (rather
//! than `epoll`) keeps the binding a single portable call with no kernel
//! object to manage; at the fleet sizes a coordinator handles (hundreds of
//! sockets), a linear scan per wakeup is far below the noise floor of
//! symbolic execution itself.

#![deny(missing_docs)]
#![cfg(unix)]

use std::io;
use std::os::raw::{c_int, c_ulong};
use std::os::unix::io::RawFd;

/// The descriptor has data to read (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// The descriptor can accept writes without blocking (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// An error condition is pending on the descriptor (`POLLERR`, output only).
pub const POLLERR: i16 = 0x008;
/// The peer hung up (`POLLHUP`, output only).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is not open (`POLLNVAL`, output only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the `poll(2)` descriptor array, layout-compatible with the
/// platform's `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct PollFd {
    /// The descriptor to watch (a negative value makes the kernel skip the
    /// entry, reporting `revents = 0`).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// A watch entry for `fd` with the given interest set.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel reported any of `mask` on this entry.
    pub fn has(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether the kernel reported an error or hangup condition.
    pub fn failed(&self) -> bool {
        self.has(POLLERR | POLLHUP | POLLNVAL)
    }
}

extern "C" {
    // `nfds_t` is `unsigned long` on every Unix platform this workspace
    // targets (Linux and the BSD family).
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Waits until one of `fds` is ready or `timeout_ms` elapses; `None` blocks
/// indefinitely. Returns the number of entries with non-zero `revents`
/// (0 on timeout). `EINTR` is retried internally, so a signal delivered to
/// the polling thread never surfaces as an error.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: Option<i32>) -> io::Result<usize> {
    let timeout = timeout_ms.unwrap_or(-1);
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn timeout_returns_zero() {
        // An empty watch set with a short timeout: pure sleep.
        let mut fds: [PollFd; 0] = [];
        let n = poll_fds(&mut fds, Some(10)).expect("poll");
        assert_eq!(n, 0);
    }

    #[test]
    fn readable_after_write() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");

        // Nothing to read yet.
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(10)).expect("poll");
        assert_eq!(n, 0, "no data should mean timeout");

        client.write_all(b"x").expect("write");
        let n = poll_fds(&mut fds, Some(1000)).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].has(POLLIN));
    }

    #[test]
    fn writable_socket_reports_pollout() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let mut fds = [PollFd::new(client.as_raw_fd(), POLLOUT)];
        let n = poll_fds(&mut fds, Some(1000)).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].has(POLLOUT));
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        drop(client);
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(1000)).expect("poll");
        assert_eq!(n, 1);
        // A closed peer surfaces as POLLIN (EOF read) and/or POLLHUP.
        assert!(fds[0].has(POLLIN | POLLHUP));
    }
}
