//! Offline stand-in for `serde`.
//!
//! The workspace builds in environments without a crates.io mirror, so this
//! crate provides the subset of serde the codebase relies on: a [`Serialize`]
//! / [`Deserialize`] trait pair with `#[derive(...)]` support (re-exported
//! from the sibling `serde_derive` proc-macro crate) over a compact,
//! deterministic binary data model:
//!
//! * unsigned integers: LEB128 varints,
//! * signed integers: zigzag varints,
//! * floats: IEEE-754 bits, little-endian,
//! * `bool`/`u8`: one byte,
//! * sequences and maps: varint length prefix followed by the elements
//!   (hash maps are serialized in sorted key order so equal values always
//!   produce equal bytes),
//! * `Option`: one tag byte,
//! * enums: varint variant index followed by the fields.
//!
//! The `bincode` shim frames values of these traits; the derive macro emits
//! field-by-field calls into this data model.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::sync::Arc;
use std::time::Duration;

/// Error produced when decoding malformed or truncated input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Human-readable description of what went wrong.
    pub message: &'static str,
}

impl DecodeError {
    /// Creates a decode error with a static message.
    pub fn new(message: &'static str) -> DecodeError {
        DecodeError { message }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Cursor over a byte slice being decoded.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or(DecodeError::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::new("unexpected end of input"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return Err(DecodeError::new("varint overflow"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(DecodeError::new("varint too long"));
            }
        }
    }

    /// Reads a varint and checks it fits the remaining input when used as a
    /// sequence length (defends against hostile length prefixes).
    pub fn seq_len(&mut self) -> Result<usize, DecodeError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(DecodeError::new("sequence length exceeds input"));
        }
        Ok(n as usize)
    }
}

/// Appends a LEB128 varint to `out`.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Types that can be written into the binary data model.
pub trait Serialize {
    /// Appends the encoding of `self` to `out`.
    fn encode_to(&self, out: &mut Vec<u8>);
}

/// Types that can be read back from the binary data model.
pub trait Deserialize: Sized {
    /// Decodes one value from the reader.
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Compile-time field-name reflection, implemented automatically by
/// `#[derive(Serialize)]` for named structs. Lets tests assert exhaustive
/// properties over a struct's fields (e.g. that `merge` touches every one)
/// so adding a field without updating such logic fails CI.
pub trait Reflect {
    /// The struct's field names, in declaration order.
    const FIELD_NAMES: &'static [&'static str];
}

// --- integers -------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn encode_to(&self, out: &mut Vec<u8>) {
                write_varint(out, *self as u64);
            }
        }
        impl Deserialize for $t {
            fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let v = r.varint()?;
                <$t>::try_from(v).map_err(|_| DecodeError::new("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u16, u32, u64, usize);

impl Serialize for u8 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl Deserialize for u8 {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.byte()
    }
}

impl Serialize for u128 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Deserialize for u128 {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(u128::from_le_bytes(r.bytes(16)?.try_into().unwrap()))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn encode_to(&self, out: &mut Vec<u8>) {
                write_varint(out, zigzag(*self as i64));
            }
        }
        impl Deserialize for $t {
            fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let v = unzigzag(r.varint()?);
                <$t>::try_from(v).map_err(|_| DecodeError::new("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

// --- floats, bool, char ---------------------------------------------------

impl Serialize for f32 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl Deserialize for f32 {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(f32::from_bits(u32::from_le_bytes(
            r.bytes(4)?.try_into().unwrap(),
        )))
    }
}

impl Serialize for f64 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl Deserialize for f64 {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            r.bytes(8)?.try_into().unwrap(),
        )))
    }
}

impl Serialize for bool {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Deserialize for bool {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::new("invalid bool")),
        }
    }
}

impl Serialize for char {
    fn encode_to(&self, out: &mut Vec<u8>) {
        write_varint(out, u64::from(u32::from(*self)));
    }
}

impl Deserialize for char {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = u32::try_from(r.varint()?).map_err(|_| DecodeError::new("invalid char"))?;
        char::from_u32(v).ok_or(DecodeError::new("invalid char"))
    }
}

impl Serialize for () {
    fn encode_to(&self, _out: &mut Vec<u8>) {}
}

impl Deserialize for () {
    fn decode_from(_r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

// --- strings --------------------------------------------------------------

impl Serialize for str {
    fn encode_to(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Serialize for String {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.as_str().encode_to(out);
    }
}

impl Deserialize for String {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.seq_len()?;
        let bytes = r.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::new("invalid utf-8"))
    }
}

// --- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn encode_to(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for item in self {
            item.encode_to(out);
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.as_slice().encode_to(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.seq_len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode_from(r)?);
        }
        Ok(v)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for item in self {
            item.encode_to(out);
        }
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Vec::<T>::decode_from(r)?.into())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn encode_to(&self, out: &mut Vec<u8>) {
        for item in self {
            item.encode_to(out);
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_to(out);
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(r)?)),
            _ => Err(DecodeError::new("invalid option tag")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (**self).encode_to(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Box::new(T::decode_from(r)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (**self).encode_to(out);
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Arc::new(T::decode_from(r)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (**self).encode_to(out);
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for (k, v) in self {
            k.encode_to(out);
            v.encode_to(out);
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.seq_len()?;
        let mut m = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode_from(r)?;
            let v = V::decode_from(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        // Sorted key order keeps the encoding deterministic.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        write_varint(out, entries.len() as u64);
        for (k, v) in entries {
            k.encode_to(out);
            v.encode_to(out);
        }
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.seq_len()?;
        let mut m = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = K::decode_from(r)?;
            let v = V::decode_from(r)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for item in self {
            item.encode_to(out);
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.seq_len()?;
        let mut s = BTreeSet::new();
        for _ in 0..n {
            s.insert(T::decode_from(r)?);
        }
        Ok(s)
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        let mut entries: Vec<&T> = self.iter().collect();
        entries.sort();
        write_varint(out, entries.len() as u64);
        for item in entries {
            item.encode_to(out);
        }
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.seq_len()?;
        let mut s = HashSet::with_capacity(n);
        for _ in 0..n {
            s.insert(T::decode_from(r)?);
        }
        Ok(s)
    }
}

// --- tuples ---------------------------------------------------------------

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn encode_to(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode_to(out);)+
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                Ok(($($name::decode_from(r)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// --- std types ------------------------------------------------------------

impl Serialize for Duration {
    fn encode_to(&self, out: &mut Vec<u8>) {
        write_varint(out, self.as_secs());
        write_varint(out, u64::from(self.subsec_nanos()));
    }
}

impl Deserialize for Duration {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let secs = r.varint()?;
        let nanos = u32::try_from(r.varint()?).map_err(|_| DecodeError::new("invalid nanos"))?;
        if nanos >= 1_000_000_000 {
            return Err(DecodeError::new("invalid nanos"));
        }
        Ok(Duration::new(secs, nanos))
    }
}

/// Encodes a value to a fresh byte vector.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode_to(&mut out);
    out
}

/// Decodes a value from `data`, requiring all input to be consumed.
pub fn from_bytes<T: Deserialize>(data: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(data);
    let v = T::decode_from(&mut r)?;
    if !r.is_empty() {
        return Err(DecodeError::new("trailing bytes"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).expect("roundtrip decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u64::MAX);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(3.25f64);
        roundtrip(true);
        roundtrip('é');
        roundtrip(String::from("hello, wörld"));
        roundtrip(Duration::new(12, 345_678_901));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Some(vec![9u8]));
        roundtrip(Option::<u8>::None);
        let mut m = BTreeMap::new();
        m.insert(String::from("a"), 1u64);
        m.insert(String::from("b"), 2u64);
        roundtrip(m);
        let mut h = HashMap::new();
        h.insert(3u32, String::from("x"));
        h.insert(1u32, String::from("y"));
        roundtrip(h);
    }

    #[test]
    fn hashmap_encoding_is_deterministic() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for i in 0..64u32 {
            a.insert(i, i * 2);
        }
        for i in (0..64u32).rev() {
            b.insert(i, i * 2);
        }
        assert_eq!(to_bytes(&a), to_bytes(&b));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        assert!(from_bytes::<Vec<u64>>(&bytes[..bytes.len() - 1]).is_err());
        assert!(from_bytes::<Vec<u64>>(&[250]).is_err());
    }
}
