//! Offline stand-in for `bincode` 1.x.
//!
//! Provides the `serialize` / `deserialize` entry points the workspace uses,
//! implemented over the deterministic binary data model of the sibling
//! `serde` stand-in crate.

use serde::{DecodeError, Deserialize, Serialize};

/// Error type matching bincode 1.x's boxed-error shape.
pub type Error = Box<ErrorKind>;

/// The kinds of (de)serialization failure.
#[derive(Debug)]
pub enum ErrorKind {
    /// Malformed or truncated input.
    Custom(String),
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorKind::Custom(msg) => write!(f, "bincode error: {msg}"),
        }
    }
}

impl std::error::Error for ErrorKind {}

impl From<DecodeError> for Error {
    fn from(e: DecodeError) -> Error {
        Box::new(ErrorKind::Custom(e.message.to_string()))
    }
}

/// Serializes `value` into a byte vector.
pub fn serialize<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(serde::to_bytes(value))
}

/// Deserializes a value of type `T` from `bytes`; all input must be consumed.
pub fn deserialize<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    serde::from_bytes(bytes).map_err(Error::from)
}

/// Returns the number of bytes `value` serializes to.
pub fn serialized_size<T: Serialize + ?Sized>(value: &T) -> Result<u64, Error> {
    Ok(serde::to_bytes(value).len() as u64)
}
