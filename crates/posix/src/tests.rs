//! End-to-end tests of the POSIX model running under the symbolic engine.

use crate::{add_libc, nr, PosixConfig, PosixEnvironment, MUTEX_SIZE};
use c9_ir::{BinaryOp, Operand, Program, ProgramBuilder, Rvalue, Width};
use c9_vm::{sysno, DfsSearcher, Engine, EngineConfig, RunSummary, TerminationReason};
use std::sync::Arc;

fn run_with_env(program: Program, env: PosixEnvironment) -> RunSummary {
    let mut engine = Engine::new(
        Arc::new(program),
        Arc::new(env),
        Box::new(DfsSearcher::new()),
        EngineConfig::default(),
    );
    engine.run()
}

fn run(program: Program) -> RunSummary {
    run_with_env(program, PosixEnvironment::new())
}

/// Stores a NUL-terminated string into a fresh allocation and returns the
/// register holding its address.
fn emit_cstring(f: &mut c9_ir::FunctionBuilder<'_>, s: &str) -> c9_ir::RegId {
    let bytes = s.as_bytes();
    let buf = f.alloc(Operand::word(bytes.len() as u32 + 1));
    for (i, b) in bytes.iter().enumerate() {
        let addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(i as u32));
        f.store(Operand::Reg(addr), Operand::byte(*b), Width::W8);
    }
    buf
}

fn exit_codes(summary: &RunSummary) -> Vec<i64> {
    let mut codes: Vec<i64> = summary
        .test_cases
        .iter()
        .filter_map(|tc| match tc.termination {
            TerminationReason::Exit(c) => Some(c),
            _ => None,
        })
        .collect();
    codes.sort_unstable();
    codes
}

#[test]
fn open_read_close_concrete_file() {
    let mut env = PosixEnvironment::new();
    env.add_file("/etc/config", b"X");

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let path = emit_cstring(&mut f, "/etc/config");
    let fd = f.syscall(nr::OPEN, vec![Operand::Reg(path), Operand::word(0)]);
    let buf = f.alloc(Operand::word(4));
    let n = f.syscall(
        nr::READ,
        vec![Operand::Reg(fd), Operand::Reg(buf), Operand::word(4)],
    );
    f.syscall(nr::CLOSE, vec![Operand::Reg(fd)]);
    let b = f.load(Operand::Reg(buf), Width::W8);
    // Return 100*bytes_read + first_byte so the test can check both.
    let n32 = f.trunc(Operand::Reg(n), Width::W32);
    let scaled = f.binary(BinaryOp::Mul, Operand::Reg(n32), Operand::word(100));
    let b32 = f.zext(Operand::Reg(b), Width::W32);
    let result = f.binary(BinaryOp::Add, Operand::Reg(scaled), Operand::Reg(b32));
    f.ret(Some(Operand::Reg(result)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run_with_env(pb.finish(), env);
    assert_eq!(summary.paths_completed, 1);
    assert_eq!(exit_codes(&summary), vec![100 + i64::from(b'X')]);
}

#[test]
fn open_missing_file_fails_and_o_creat_succeeds() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let path = emit_cstring(&mut f, "/no/such/file");
    let fd = f.syscall(nr::OPEN, vec![Operand::Reg(path), Operand::word(0)]);
    let failed = f.binary(
        BinaryOp::Eq,
        Operand::Reg(fd),
        Operand::Const(nr::ERR, Width::W64),
    );
    let fd2 = f.syscall(
        nr::OPEN,
        vec![Operand::Reg(path), Operand::Const(nr::O_CREAT, Width::W64)],
    );
    let created = f.binary(
        BinaryOp::Ne,
        Operand::Reg(fd2),
        Operand::Const(nr::ERR, Width::W64),
    );
    let both = f.binary(BinaryOp::And, Operand::Reg(failed), Operand::Reg(created));
    let both32 = f.zext(Operand::Reg(both), Width::W32);
    f.ret(Some(Operand::Reg(both32)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run(pb.finish());
    assert_eq!(exit_codes(&summary), vec![1]);
}

#[test]
fn lseek_and_fstat_size() {
    let mut env = PosixEnvironment::new();
    env.add_file("/data", b"0123456789");

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let path = emit_cstring(&mut f, "/data");
    let fd = f.syscall(nr::OPEN, vec![Operand::Reg(path), Operand::word(0)]);
    let size = f.syscall(nr::FSTAT_SIZE, vec![Operand::Reg(fd)]);
    f.syscall(
        nr::LSEEK,
        vec![
            Operand::Reg(fd),
            Operand::word(7),
            Operand::Const(nr::SEEK_SET, Width::W64),
        ],
    );
    let buf = f.alloc(Operand::word(1));
    f.syscall(
        nr::READ,
        vec![Operand::Reg(fd), Operand::Reg(buf), Operand::word(1)],
    );
    let b = f.load(Operand::Reg(buf), Width::W8);
    // size*100 + byte_at_offset_7 ('7' = 55) => 10*100 + 55.
    let size32 = f.trunc(Operand::Reg(size), Width::W32);
    let scaled = f.binary(BinaryOp::Mul, Operand::Reg(size32), Operand::word(100));
    let b32 = f.zext(Operand::Reg(b), Width::W32);
    let result = f.binary(BinaryOp::Add, Operand::Reg(scaled), Operand::Reg(b32));
    f.ret(Some(Operand::Reg(result)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run_with_env(pb.finish(), env);
    assert_eq!(exit_codes(&summary), vec![1000 + i64::from(b'7')]);
}

#[test]
fn symbolic_socket_explores_all_byte_values_on_branches() {
    // One symbolic byte read from a socket, three-way branch.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let sock = f.syscall(
        nr::SOCKET,
        vec![Operand::Const(nr::SOCK_STREAM, Width::W64)],
    );
    f.syscall(
        nr::IOCTL,
        vec![
            Operand::Reg(sock),
            Operand::Const(nr::SIO_SYMBOLIC, Width::W64),
            Operand::word(1),
        ],
    );
    let buf = f.alloc(Operand::word(1));
    f.syscall(
        nr::RECV,
        vec![Operand::Reg(sock), Operand::Reg(buf), Operand::word(1)],
    );
    let b = f.load(Operand::Reg(buf), Width::W8);
    let bb_get = f.create_block();
    let bb_not_get = f.create_block();
    let bb_set = f.create_block();
    let bb_other = f.create_block();
    let is_g = f.binary(BinaryOp::Eq, Operand::Reg(b), Operand::byte(b'G'));
    f.branch(Operand::Reg(is_g), bb_get, bb_not_get);
    f.switch_to(bb_get);
    f.ret(Some(Operand::word(1)));
    f.switch_to(bb_not_get);
    let is_s = f.binary(BinaryOp::Eq, Operand::Reg(b), Operand::byte(b'S'));
    f.branch(Operand::Reg(is_s), bb_set, bb_other);
    f.switch_to(bb_set);
    f.ret(Some(Operand::word(2)));
    f.switch_to(bb_other);
    f.ret(Some(Operand::word(3)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run(pb.finish());
    assert_eq!(exit_codes(&summary), vec![1, 2, 3]);
}

#[test]
fn symbolic_budget_limits_input_and_then_eof() {
    // Budget of 2 bytes: the third read returns 0.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let sock = f.syscall(
        nr::SOCKET,
        vec![Operand::Const(nr::SOCK_STREAM, Width::W64)],
    );
    f.syscall(
        nr::IOCTL,
        vec![
            Operand::Reg(sock),
            Operand::Const(nr::SIO_SYMBOLIC, Width::W64),
            Operand::word(2),
        ],
    );
    let buf = f.alloc(Operand::word(8));
    let n1 = f.syscall(
        nr::RECV,
        vec![Operand::Reg(sock), Operand::Reg(buf), Operand::word(1)],
    );
    let n2 = f.syscall(
        nr::RECV,
        vec![Operand::Reg(sock), Operand::Reg(buf), Operand::word(1)],
    );
    let n3 = f.syscall(
        nr::RECV,
        vec![Operand::Reg(sock), Operand::Reg(buf), Operand::word(1)],
    );
    // result = n1*100 + n2*10 + n3
    let n1w = f.trunc(Operand::Reg(n1), Width::W32);
    let n2w = f.trunc(Operand::Reg(n2), Width::W32);
    let n3w = f.trunc(Operand::Reg(n3), Width::W32);
    let a = f.binary(BinaryOp::Mul, Operand::Reg(n1w), Operand::word(100));
    let b = f.binary(BinaryOp::Mul, Operand::Reg(n2w), Operand::word(10));
    let ab = f.binary(BinaryOp::Add, Operand::Reg(a), Operand::Reg(b));
    let result = f.binary(BinaryOp::Add, Operand::Reg(ab), Operand::Reg(n3w));
    f.ret(Some(Operand::Reg(result)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run(pb.finish());
    assert_eq!(exit_codes(&summary), vec![110]);
}

#[test]
fn packet_fragmentation_forks_over_read_lengths() {
    // A 4-byte symbolic, fragmented source read with a 4-byte buffer: the
    // first read may return 1..=4 bytes — one path per fragmentation choice.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let sock = f.syscall(
        nr::SOCKET,
        vec![Operand::Const(nr::SOCK_STREAM, Width::W64)],
    );
    f.syscall(
        nr::IOCTL,
        vec![
            Operand::Reg(sock),
            Operand::Const(nr::SIO_SYMBOLIC, Width::W64),
            Operand::word(4),
        ],
    );
    f.syscall(
        nr::IOCTL,
        vec![
            Operand::Reg(sock),
            Operand::Const(nr::SIO_PKT_FRAGMENT, Width::W64),
            Operand::word(1),
        ],
    );
    let buf = f.alloc(Operand::word(4));
    let n = f.syscall(
        nr::RECV,
        vec![Operand::Reg(sock), Operand::Reg(buf), Operand::word(4)],
    );
    let n32 = f.trunc(Operand::Reg(n), Width::W32);
    f.ret(Some(Operand::Reg(n32)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run(pb.finish());
    assert_eq!(exit_codes(&summary), vec![1, 2, 3, 4]);
}

#[test]
fn fault_injection_forks_success_and_failure() {
    let mut env = PosixEnvironment::new();
    env.add_file("/data", b"abc");

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    f.syscall(nr::FI_ENABLE, vec![]);
    let path = emit_cstring(&mut f, "/data");
    let fd = f.syscall(nr::OPEN, vec![Operand::Reg(path), Operand::word(0)]);
    let opened = f.binary(
        BinaryOp::Ne,
        Operand::Reg(fd),
        Operand::Const(nr::ERR, Width::W64),
    );
    let read_bb = f.create_block();
    let fail_bb = f.create_block();
    f.branch(Operand::Reg(opened), read_bb, fail_bb);
    f.switch_to(fail_bb);
    f.ret(Some(Operand::word(100)));
    f.switch_to(read_bb);
    let buf = f.alloc(Operand::word(3));
    let n = f.syscall(
        nr::READ,
        vec![Operand::Reg(fd), Operand::Reg(buf), Operand::word(3)],
    );
    let read_failed = f.binary(
        BinaryOp::Eq,
        Operand::Reg(n),
        Operand::Const(nr::ERR, Width::W64),
    );
    let rf_bb = f.create_block();
    let ok_bb = f.create_block();
    f.branch(Operand::Reg(read_failed), rf_bb, ok_bb);
    f.switch_to(rf_bb);
    f.ret(Some(Operand::word(200)));
    f.switch_to(ok_bb);
    f.ret(Some(Operand::word(0)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run_with_env(pb.finish(), env);
    let codes = exit_codes(&summary);
    // Paths: open fails (100), open ok + read fails (200), all ok (0).
    assert_eq!(codes, vec![0, 100, 200]);
}

#[test]
fn pipe_write_then_read_roundtrip() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let fds = f.alloc(Operand::word(8));
    f.syscall(nr::PIPE, vec![Operand::Reg(fds)]);
    let read_fd = f.load(Operand::Reg(fds), Width::W32);
    let wr_addr = f.binary(BinaryOp::Add, Operand::Reg(fds), Operand::word(4));
    let write_fd = f.load(Operand::Reg(wr_addr), Width::W32);
    let msg = emit_cstring(&mut f, "hi");
    f.syscall(
        nr::WRITE,
        vec![Operand::Reg(write_fd), Operand::Reg(msg), Operand::word(2)],
    );
    let buf = f.alloc(Operand::word(2));
    let n = f.syscall(
        nr::READ,
        vec![Operand::Reg(read_fd), Operand::Reg(buf), Operand::word(2)],
    );
    let first = f.load(Operand::Reg(buf), Width::W8);
    let n32 = f.trunc(Operand::Reg(n), Width::W32);
    let scaled = f.binary(BinaryOp::Mul, Operand::Reg(n32), Operand::word(1000));
    let f32v = f.zext(Operand::Reg(first), Width::W32);
    let result = f.binary(BinaryOp::Add, Operand::Reg(scaled), Operand::Reg(f32v));
    f.ret(Some(Operand::Reg(result)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run(pb.finish());
    assert_eq!(exit_codes(&summary), vec![2000 + i64::from(b'h')]);
}

#[test]
fn tcp_connect_accept_send_recv_between_threads() {
    // A server thread listens and echoes nothing; the main thread connects
    // and sends a byte which the server reads and stores into shared memory.
    let mut pb = ProgramBuilder::new();
    let server = pb.declare("server", 1, None);

    let mut f = pb.function("main", 0, Some(Width::W32));
    let cell = f.alloc(Operand::word(4));
    f.syscall(sysno::MAKE_SHARED, vec![Operand::Reg(cell)]);
    // Server setup happens in the main thread so the listener exists before
    // connect(); the server thread only accepts.
    let listener = f.syscall(
        nr::SOCKET,
        vec![Operand::Const(nr::SOCK_STREAM, Width::W64)],
    );
    f.syscall(nr::BIND, vec![Operand::Reg(listener), Operand::word(8080)]);
    f.syscall(nr::LISTEN, vec![Operand::Reg(listener), Operand::word(4)]);
    f.syscall(
        sysno::THREAD_CREATE,
        vec![
            Operand::Const(u64::from(server.0), Width::W32),
            Operand::Reg(cell),
        ],
    );
    let client = f.syscall(
        nr::SOCKET,
        vec![Operand::Const(nr::SOCK_STREAM, Width::W64)],
    );
    f.syscall(nr::CONNECT, vec![Operand::Reg(client), Operand::word(8080)]);
    let msg = emit_cstring(&mut f, "Z");
    f.syscall(
        nr::SEND,
        vec![Operand::Reg(client), Operand::Reg(msg), Operand::word(1)],
    );
    // Yield until the server publishes the received byte.
    let check_bb = f.create_block();
    let spin_bb = f.create_block();
    let done_bb = f.create_block();
    f.jump(check_bb);
    f.switch_to(check_bb);
    let v = f.load(Operand::Reg(cell), Width::W32);
    let ready = f.binary(BinaryOp::Ne, Operand::Reg(v), Operand::word(0));
    f.branch(Operand::Reg(ready), done_bb, spin_bb);
    f.switch_to(spin_bb);
    f.syscall(sysno::THREAD_PREEMPT, vec![]);
    f.jump(check_bb);
    f.switch_to(done_bb);
    let out = f.load(Operand::Reg(cell), Width::W32);
    f.ret(Some(Operand::Reg(out)));
    let main = f.finish();

    // The server thread: accept, recv one byte, store it into the shared cell.
    let mut s = pb.build_declared(server);
    let cell = s.param(0);
    // The listener socket is fd 3 in this process (0-2 are stdio).
    let conn = s.syscall(nr::ACCEPT, vec![Operand::word(3)]);
    let buf = s.alloc(Operand::word(1));
    s.syscall(
        nr::RECV,
        vec![Operand::Reg(conn), Operand::Reg(buf), Operand::word(1)],
    );
    let b = s.load(Operand::Reg(buf), Width::W8);
    let b32 = s.zext(Operand::Reg(b), Width::W32);
    s.store(Operand::Reg(cell), Operand::Reg(b32), Width::W32);
    s.ret(None);
    s.finish();

    pb.set_entry(main);
    let summary = run(pb.finish());
    assert_eq!(summary.bugs.len(), 0, "bugs: {:?}", summary.bugs);
    assert_eq!(exit_codes(&summary), vec![i64::from(b'Z')]);
}

#[test]
fn udp_sendto_recvfrom_roundtrip() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let rx = f.syscall(nr::SOCKET, vec![Operand::Const(nr::SOCK_DGRAM, Width::W64)]);
    f.syscall(nr::BIND, vec![Operand::Reg(rx), Operand::word(5353)]);
    let tx = f.syscall(nr::SOCKET, vec![Operand::Const(nr::SOCK_DGRAM, Width::W64)]);
    let msg = emit_cstring(&mut f, "ping");
    f.syscall(
        nr::SENDTO,
        vec![
            Operand::Reg(tx),
            Operand::Reg(msg),
            Operand::word(4),
            Operand::word(5353),
        ],
    );
    let buf = f.alloc(Operand::word(8));
    let n = f.syscall(
        nr::RECVFROM,
        vec![Operand::Reg(rx), Operand::Reg(buf), Operand::word(8)],
    );
    let n32 = f.trunc(Operand::Reg(n), Width::W32);
    f.ret(Some(Operand::Reg(n32)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run(pb.finish());
    assert_eq!(exit_codes(&summary), vec![4]);
}

#[test]
fn select_reports_readable_descriptor() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let fds = f.alloc(Operand::word(8));
    f.syscall(nr::PIPE, vec![Operand::Reg(fds)]);
    let read_fd = f.load(Operand::Reg(fds), Width::W32);
    let wr_addr = f.binary(BinaryOp::Add, Operand::Reg(fds), Operand::word(4));
    let write_fd = f.load(Operand::Reg(wr_addr), Width::W32);
    let msg = emit_cstring(&mut f, "x");
    f.syscall(
        nr::WRITE,
        vec![Operand::Reg(write_fd), Operand::Reg(msg), Operand::word(1)],
    );
    // Build the read fd-set mask: 1 << read_fd.
    let one = f.copy(Operand::Const(1, Width::W64));
    let rf64 = f.zext(Operand::Reg(read_fd), Width::W64);
    let mask = f.binary(BinaryOp::Shl, Operand::Reg(one), Operand::Reg(rf64));
    let mask_buf = f.alloc(Operand::word(8));
    f.store(Operand::Reg(mask_buf), Operand::Reg(mask), Width::W64);
    let count = f.syscall(
        nr::SELECT,
        vec![Operand::word(16), Operand::Reg(mask_buf), Operand::word(0)],
    );
    let count32 = f.trunc(Operand::Reg(count), Width::W32);
    f.ret(Some(Operand::Reg(count32)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run(pb.finish());
    assert_eq!(exit_codes(&summary), vec![1]);
}

#[test]
fn blocking_pipe_read_waits_for_writer_thread() {
    let mut pb = ProgramBuilder::new();
    let writer = pb.declare("writer", 1, None);

    let mut f = pb.function("main", 0, Some(Width::W32));
    let fds = f.alloc(Operand::word(8));
    f.syscall(nr::PIPE, vec![Operand::Reg(fds)]);
    let read_fd = f.load(Operand::Reg(fds), Width::W32);
    let wr_addr = f.binary(BinaryOp::Add, Operand::Reg(fds), Operand::word(4));
    let write_fd = f.load(Operand::Reg(wr_addr), Width::W32);
    f.syscall(
        sysno::THREAD_CREATE,
        vec![
            Operand::Const(u64::from(writer.0), Width::W32),
            Operand::Reg(write_fd),
        ],
    );
    // This read blocks until the writer thread runs.
    let buf = f.alloc(Operand::word(1));
    f.syscall(
        nr::READ,
        vec![Operand::Reg(read_fd), Operand::Reg(buf), Operand::word(1)],
    );
    let b = f.load(Operand::Reg(buf), Width::W8);
    let b32 = f.zext(Operand::Reg(b), Width::W32);
    f.ret(Some(Operand::Reg(b32)));
    let main = f.finish();

    let mut w = pb.build_declared(writer);
    let wfd = w.param(0);
    let msg = emit_cstring(&mut w, "k");
    w.syscall(
        nr::WRITE,
        vec![Operand::Reg(wfd), Operand::Reg(msg), Operand::word(1)],
    );
    w.ret(None);
    w.finish();

    pb.set_entry(main);
    let summary = run(pb.finish());
    assert_eq!(summary.bugs.len(), 0, "bugs: {:?}", summary.bugs);
    assert_eq!(exit_codes(&summary), vec![i64::from(b'k')]);
}

#[test]
fn mutex_protects_a_critical_section() {
    // Two worker threads each add 1 to a shared counter under a mutex; the
    // main thread waits for both and returns the counter.
    let mut pb = ProgramBuilder::new();
    let libc = add_libc(&mut pb);
    let worker = pb.declare("worker", 1, None);

    let mut f = pb.function("main", 0, Some(Width::W32));
    // Shared block: [0..16) mutex, [16..20) counter, [20..24) done-count.
    let shared = f.alloc(Operand::word(MUTEX_SIZE + 8));
    f.syscall(sysno::MAKE_SHARED, vec![Operand::Reg(shared)]);
    f.call(libc.mutex_init, vec![Operand::Reg(shared)]);
    for _ in 0..2 {
        f.syscall(
            sysno::THREAD_CREATE,
            vec![
                Operand::Const(u64::from(worker.0), Width::W32),
                Operand::Reg(shared),
            ],
        );
    }
    // Spin (with preemption) until done-count == 2.
    let check_bb = f.create_block();
    let spin_bb = f.create_block();
    let done_bb = f.create_block();
    f.jump(check_bb);
    f.switch_to(check_bb);
    let done_addr = f.binary(
        BinaryOp::Add,
        Operand::Reg(shared),
        Operand::word(MUTEX_SIZE + 4),
    );
    let done = f.load(Operand::Reg(done_addr), Width::W32);
    let all_done = f.binary(BinaryOp::Eq, Operand::Reg(done), Operand::word(2));
    f.branch(Operand::Reg(all_done), done_bb, spin_bb);
    f.switch_to(spin_bb);
    f.syscall(sysno::THREAD_PREEMPT, vec![]);
    f.jump(check_bb);
    f.switch_to(done_bb);
    let counter_addr = f.binary(
        BinaryOp::Add,
        Operand::Reg(shared),
        Operand::word(MUTEX_SIZE),
    );
    let value = f.load(Operand::Reg(counter_addr), Width::W32);
    f.ret(Some(Operand::Reg(value)));
    let main = f.finish();

    let mut w = pb.build_declared(worker);
    let shared = w.param(0);
    w.call(libc.mutex_lock, vec![Operand::Reg(shared)]);
    let counter_addr = w.binary(
        BinaryOp::Add,
        Operand::Reg(shared),
        Operand::word(MUTEX_SIZE),
    );
    let v = w.load(Operand::Reg(counter_addr), Width::W32);
    w.syscall(sysno::THREAD_PREEMPT, vec![]);
    let v2 = w.binary(BinaryOp::Add, Operand::Reg(v), Operand::word(1));
    w.store(Operand::Reg(counter_addr), Operand::Reg(v2), Width::W32);
    w.call(libc.mutex_unlock, vec![Operand::Reg(shared)]);
    // Mark completion (no lock needed: single writer per thread + monotonic).
    let done_addr = w.binary(
        BinaryOp::Add,
        Operand::Reg(shared),
        Operand::word(MUTEX_SIZE + 4),
    );
    let d = w.load(Operand::Reg(done_addr), Width::W32);
    let d2 = w.binary(BinaryOp::Add, Operand::Reg(d), Operand::word(1));
    w.store(Operand::Reg(done_addr), Operand::Reg(d2), Width::W32);
    w.ret(None);
    w.finish();

    pb.set_entry(main);
    let summary = run(pb.finish());
    assert_eq!(summary.bugs.len(), 0, "bugs: {:?}", summary.bugs);
    assert_eq!(exit_codes(&summary), vec![2]);
}

#[test]
fn gettime_is_monotonic_and_getpid_works() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let t1 = f.syscall(nr::GETTIME, vec![]);
    let t2 = f.syscall(nr::GETTIME, vec![]);
    let later = f.binary(BinaryOp::Ult, Operand::Reg(t1), Operand::Reg(t2));
    let pid = f.syscall(nr::GETPID, vec![]);
    let pid_zero = f.binary(BinaryOp::Eq, Operand::Reg(pid), Operand::word(0));
    let both = f.binary(BinaryOp::And, Operand::Reg(later), Operand::Reg(pid_zero));
    let both32 = f.zext(Operand::Reg(both), Width::W32);
    f.ret(Some(Operand::Reg(both32)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run(pb.finish());
    assert_eq!(exit_codes(&summary), vec![1]);
}

#[test]
fn fragmentation_respects_configured_alternative_cap() {
    let env = PosixEnvironment::with_config(PosixConfig {
        max_fragment_alternatives: 3,
        ..PosixConfig::default()
    });
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let sock = f.syscall(
        nr::SOCKET,
        vec![Operand::Const(nr::SOCK_STREAM, Width::W64)],
    );
    f.syscall(
        nr::IOCTL,
        vec![
            Operand::Reg(sock),
            Operand::Const(nr::SIO_SYMBOLIC, Width::W64),
            Operand::word(12),
        ],
    );
    f.syscall(
        nr::IOCTL,
        vec![
            Operand::Reg(sock),
            Operand::Const(nr::SIO_PKT_FRAGMENT, Width::W64),
            Operand::word(1),
        ],
    );
    let buf = f.alloc(Operand::word(12));
    let n = f.syscall(
        nr::RECV,
        vec![Operand::Reg(sock), Operand::Reg(buf), Operand::word(12)],
    );
    let n32 = f.trunc(Operand::Reg(n), Width::W32);
    f.ret(Some(Operand::Reg(n32)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run_with_env(pb.finish(), env);
    assert!(summary.paths_completed <= 3);
    assert!(summary.paths_completed >= 2);
}

#[test]
fn stdout_writes_are_accepted_and_unknown_fd_rejected() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let msg = emit_cstring(&mut f, "log line");
    let ok = f.syscall(
        nr::WRITE,
        vec![Operand::word(1), Operand::Reg(msg), Operand::word(8)],
    );
    let bad = f.syscall(
        nr::WRITE,
        vec![Operand::word(77), Operand::Reg(msg), Operand::word(8)],
    );
    let wrote = f.binary(
        BinaryOp::Eq,
        Operand::Reg(ok),
        Operand::Const(8, Width::W64),
    );
    let rejected = f.binary(
        BinaryOp::Eq,
        Operand::Reg(bad),
        Operand::Const(nr::ERR, Width::W64),
    );
    let both = f.binary(BinaryOp::And, Operand::Reg(wrote), Operand::Reg(rejected));
    let both32 = f.zext(Operand::Reg(both), Width::W32);
    f.ret(Some(Operand::Reg(both32)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run(pb.finish());
    assert_eq!(exit_codes(&summary), vec![1]);
}

#[test]
fn rvalue_helpers_compile() {
    // Smoke-check that Rvalue is exposed for target builders.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, None);
    let x = f.assign(Rvalue::Use(Operand::byte(1)));
    let _ = x;
    f.ret(None);
    let main = f.finish();
    pb.set_entry(main);
    assert!(pb.finish().validate().is_ok());
}
