//! The POSIX environment model: per-state data and the syscall dispatcher.
//!
//! The model keeps all of its data (file descriptor tables, stream buffers,
//! sockets, the modelled file system, fault-injection switches) inside the
//! execution state, so forking a state forks the whole modelled environment
//! with it — exactly the property that makes modelled calls safe where
//! external concrete calls are not (§4.1 of the paper).
//!
//! ## Modelling notes
//!
//! * Blocking calls (`read` on an empty pipe, `accept` with no pending
//!   connection, `select` with nothing ready) put the calling thread to sleep
//!   with *restart* semantics: the syscall re-executes after the thread is
//!   woken, re-checking its condition — the host-side equivalent of the
//!   `while (...) cloud9_thread_sleep(...)` loops the paper's guest-side
//!   model uses.
//! * Fault injection wraps an operation's successful completion and an error
//!   return into a two-way fork. The successful side effects (consumed bytes,
//!   advanced offsets) are visible on the error path as well; this models a
//!   call that made partial progress before failing and keeps the fork
//!   mechanics simple.
//! * Symbolic descriptors (`SIO_SYMBOLIC`) produce fresh symbolic bytes on
//!   every read, bounded by a per-descriptor budget; with `SIO_PKT_FRAGMENT`
//!   each read additionally forks over how many bytes it returns, which is
//!   how the lighttpd fragmentation experiment (§7.3.4) is expressed.

use crate::buffers::StreamBuffer;
use crate::faults::FaultState;
use crate::nr;
use crate::objects::{
    Datagram, FdEntry, FdObject, FdTable, FileSystem, Network, ObjectTables, OpenFile, Socket,
    SocketIdx, SocketKind, SocketState, StreamIdx,
};
use c9_expr::Width;
use c9_solver::Solver;
use c9_vm::{
    ByteValue, EnvState, Environment, ExecutionState, SyscallAlternative, SyscallContext,
    SyscallEffect, TerminationReason, Value, WaitListId,
};
use std::any::Any;
use std::collections::BTreeMap;

/// Tunables of the POSIX model.
#[derive(Clone, Copy, Debug)]
pub struct PosixConfig {
    /// Maximum number of symbolic bytes produced by a single read from a
    /// symbolic descriptor.
    pub max_symbolic_chunk: u64,
    /// Maximum number of fragmentation alternatives per read (bounds the
    /// fan-out of `SIO_PKT_FRAGMENT`).
    pub max_fragment_alternatives: usize,
    /// Default cap on faults injected along one path (0 = unlimited).
    pub max_faults_per_path: u64,
}

impl Default for PosixConfig {
    fn default() -> PosixConfig {
        PosixConfig {
            max_symbolic_chunk: 16,
            max_fragment_alternatives: 8,
            max_faults_per_path: 2,
        }
    }
}

/// The per-state data of the POSIX model.
#[derive(Clone, Debug, Default)]
pub struct PosixState {
    /// File descriptor tables, keyed by pid.
    pub fd_tables: BTreeMap<u32, FdTable>,
    /// Kernel object tables (streams, sockets, open files).
    pub objects: ObjectTables,
    /// The modelled file system.
    pub fs: FileSystem,
    /// The modelled single-IP network.
    pub network: Network,
    /// Fault-injection switches and accounting.
    pub faults: FaultState,
    /// Monotonic time counter returned by `gettime`.
    pub time: u64,
    /// Wait list used by `select` when nothing is ready.
    pub select_wlist: Option<WaitListId>,
    /// Counter used to name symbolic input sources.
    pub sym_counter: u32,
}

impl EnvState for PosixState {
    fn clone_box(&self) -> Box<dyn EnvState> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The POSIX environment model.
///
/// Register one instance with an [`c9_vm::Executor`] (or [`c9_vm::Engine`]);
/// its configuration and initial file system are shared by every state.
#[derive(Clone, Debug, Default)]
pub struct PosixEnvironment {
    /// Model tunables.
    pub config: PosixConfig,
    initial_fs: FileSystem,
}

impl PosixEnvironment {
    /// Creates a model with the default configuration and an empty file
    /// system.
    pub fn new() -> PosixEnvironment {
        PosixEnvironment::default()
    }

    /// Creates a model with an explicit configuration.
    pub fn with_config(config: PosixConfig) -> PosixEnvironment {
        PosixEnvironment {
            config,
            ..PosixEnvironment::default()
        }
    }

    /// Adds a concrete file visible to every initial state (e.g. a
    /// configuration file the target reads at startup).
    pub fn add_file(&mut self, path: &str, contents: &[u8]) -> &mut Self {
        self.initial_fs.add_file(path, contents);
        self
    }
}

impl Environment for PosixEnvironment {
    fn create_state(&self) -> Box<dyn EnvState> {
        let mut state = PosixState {
            fs: self.initial_fs.clone(),
            ..PosixState::default()
        };
        state.faults.max_faults_per_path = self.config.max_faults_per_path;
        Box::new(state)
    }

    fn syscall(
        &self,
        ctx: &mut SyscallContext<'_>,
        nr: u32,
        args: &[Value],
    ) -> Result<SyscallEffect, TerminationReason> {
        let state = &mut *ctx.state;
        let posix = ctx
            .env
            .as_any_mut()
            .downcast_mut::<PosixState>()
            .expect("PosixEnvironment used with a non-POSIX environment state");
        let mut call = Call {
            state,
            posix,
            solver: ctx.solver,
            config: &self.config,
        };
        call.dispatch(nr, args)
    }

    fn name(&self) -> &str {
        "posix"
    }
}

/// One in-flight syscall: split borrows of the execution state and the model
/// data, plus the solver for concretization.
struct Call<'a> {
    state: &'a mut ExecutionState,
    posix: &'a mut PosixState,
    solver: &'a Solver,
    config: &'a PosixConfig,
}

fn ret(v: u64) -> Result<SyscallEffect, TerminationReason> {
    Ok(SyscallEffect::Return(Value::concrete(v, Width::W64)))
}

fn err() -> Result<SyscallEffect, TerminationReason> {
    ret(nr::ERR)
}

impl<'a> Call<'a> {
    // -- plumbing -------------------------------------------------------------

    fn arg(&mut self, args: &[Value], i: usize) -> u64 {
        let v = args
            .get(i)
            .cloned()
            .unwrap_or(Value::concrete(0, Width::W64));
        match v.as_u64() {
            Some(c) => c,
            None => {
                let expr = v.to_expr();
                let c = self
                    .solver
                    .get_value(&self.state.constraints, &expr)
                    .unwrap_or(0);
                self.state
                    .add_constraint(c9_expr::Expr::eq(expr, c9_expr::Expr::const_(c, v.width())));
                c
            }
        }
    }

    fn pid(&self) -> u32 {
        self.state.thread().pid.0
    }

    /// The fd table of the calling process, created on first use by cloning
    /// the parent's table (fd inheritance across fork) or the stdio defaults.
    fn fd_table(&mut self) -> &mut FdTable {
        let pid = self.pid();
        if !self.posix.fd_tables.contains_key(&pid) {
            let inherited = self.state.processes[pid as usize]
                .parent
                .and_then(|pp| self.posix.fd_tables.get(&pp.0).cloned())
                .unwrap_or_else(FdTable::with_stdio);
            self.posix.fd_tables.insert(pid, inherited);
        }
        self.posix.fd_tables.get_mut(&pid).expect("just inserted")
    }

    fn entry(&mut self, fd: u64) -> Option<FdEntry> {
        self.fd_table().get(fd).cloned()
    }

    fn write_guest(&mut self, addr: u64, data: &[ByteValue]) -> bool {
        let space = self.state.current_space();
        self.state.memory.write_bytes(space, addr, data).is_ok()
    }

    fn read_guest(&mut self, addr: u64, len: usize) -> Option<Vec<ByteValue>> {
        let space = self.state.current_space();
        self.state.memory.read_bytes(space, addr, len).ok()
    }

    /// Wakes every thread sleeping on `wlist`.
    fn wake_all(&mut self, wlist: Option<WaitListId>) {
        let Some(wlist) = wlist else { return };
        let woken = self.state.wait_lists.dequeue(wlist, true);
        for tid in woken {
            self.state.threads[tid.0 as usize].status = c9_vm::ThreadStatus::Runnable;
        }
    }

    /// Wakes select() waiters (any readiness change may satisfy a select).
    fn wake_select(&mut self) {
        let wlist = self.posix.select_wlist;
        self.wake_all(wlist);
    }

    fn sleep_on(
        &mut self,
        wlist_slot: impl FnOnce(&mut PosixState, WaitListId) -> WaitListId,
    ) -> Result<SyscallEffect, TerminationReason> {
        let fresh = self.state.wait_lists.create();
        let wlist = wlist_slot(self.posix, fresh);
        Ok(SyscallEffect::Sleep {
            wlist,
            restart: true,
            retval: Value::concrete(0, Width::W64),
        })
    }

    /// Wraps a plain return value into a success/fault fork when fault
    /// injection applies to this descriptor.
    fn maybe_inject_fault(
        &mut self,
        fd_flag: bool,
        effect: Result<SyscallEffect, TerminationReason>,
    ) -> Result<SyscallEffect, TerminationReason> {
        if !self.posix.faults.should_consider(fd_flag) {
            return effect;
        }
        match effect {
            Ok(SyscallEffect::Return(v)) => {
                let success = SyscallAlternative::new("ok", v);
                let fault = SyscallAlternative::new("fault", Value::concrete(nr::ERR, Width::W64))
                    .with_update(|st| {
                        st.env_as_mut::<PosixState>().faults.record_injection();
                    });
                Ok(SyscallEffect::Fork(vec![success, fault]))
            }
            other => other,
        }
    }

    // -- dispatcher -----------------------------------------------------------

    fn dispatch(&mut self, nr_: u32, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        match nr_ {
            nr::OPEN => self.sys_open(args),
            nr::CLOSE => self.sys_close(args),
            nr::READ => self.sys_read(args),
            nr::WRITE => self.sys_write(args),
            nr::LSEEK => self.sys_lseek(args),
            nr::FSTAT_SIZE => self.sys_fstat_size(args),
            nr::DUP => self.sys_dup(args),
            nr::UNLINK => self.sys_unlink(args),
            nr::SOCKET => self.sys_socket(args),
            nr::BIND => self.sys_bind(args),
            nr::LISTEN => self.sys_listen(args),
            nr::ACCEPT => self.sys_accept(args),
            nr::CONNECT => self.sys_connect(args),
            nr::SEND => self.sys_write(args),
            nr::RECV => self.sys_read(args),
            nr::SHUTDOWN => self.sys_shutdown(args),
            nr::RECVFROM => self.sys_recvfrom(args),
            nr::SENDTO => self.sys_sendto(args),
            nr::PIPE => self.sys_pipe(args),
            nr::SELECT => self.sys_select(args),
            nr::IOCTL => self.sys_ioctl(args),
            nr::FI_ENABLE => {
                self.posix.faults.global_enabled = true;
                ret(0)
            }
            nr::FI_DISABLE => {
                self.posix.faults.global_enabled = false;
                ret(0)
            }
            nr::GETTIME => {
                self.posix.time += 1;
                ret(self.posix.time)
            }
            nr::MMAP_ANON => self.sys_mmap_anon(args),
            nr::GETPID => ret(u64::from(self.pid())),
            other => Err(TerminationReason::Bug(c9_vm::BugKind::UnknownSyscall(
                other,
            ))),
        }
    }

    // -- files ----------------------------------------------------------------

    fn sys_open(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let path_ptr = self.arg(args, 0);
        let flags = self.arg(args, 1);
        let space = self.state.current_space();
        let Ok(path_bytes) = self.state.memory.read_cstring(space, path_ptr, 4096) else {
            return err();
        };
        let path = String::from_utf8_lossy(&path_bytes).to_string();
        if !self.posix.fs.exists(&path) {
            if flags & nr::O_CREAT != 0 {
                self.posix.fs.create(&path);
            } else {
                return err();
            }
        }
        let file_idx = self
            .posix
            .objects
            .add_open_file(OpenFile { path, offset: 0 });
        let fd = self
            .fd_table()
            .install(FdEntry::new(FdObject::File(file_idx)));
        let effect = ret(fd);
        self.maybe_inject_fault(false, effect)
    }

    fn sys_close(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let Some(entry) = self.fd_table().remove(fd) else {
            return err();
        };
        match entry.object {
            FdObject::Socket(idx) => self.close_socket(idx),
            FdObject::PipeRead(s) => {
                self.posix.objects.streams[s].reader_closed = true;
                let w = self.posix.objects.streams[s].write_waiters;
                self.wake_all(w);
            }
            FdObject::PipeWrite(s) => {
                self.posix.objects.streams[s].writer_closed = true;
                let r = self.posix.objects.streams[s].read_waiters;
                self.wake_all(r);
                self.wake_select();
            }
            _ => {}
        }
        ret(0)
    }

    fn close_socket(&mut self, idx: SocketIdx) {
        let sock_state = std::mem::replace(
            &mut self.posix.objects.sockets[idx].state,
            SocketState::Closed,
        );
        if let SocketState::Connected { tx, rx } = sock_state {
            self.posix.objects.streams[tx].writer_closed = true;
            self.posix.objects.streams[rx].reader_closed = true;
            let read_w = self.posix.objects.streams[tx].read_waiters;
            let write_w = self.posix.objects.streams[rx].write_waiters;
            self.wake_all(read_w);
            self.wake_all(write_w);
            self.wake_select();
        }
    }

    fn sys_read(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let buf = self.arg(args, 1);
        let len = self.arg(args, 2) as usize;
        let Some(entry) = self.entry(fd) else {
            return err();
        };
        let fault_flag = entry.flags.fault_inject;

        // Symbolic descriptors produce fresh symbolic input regardless of the
        // underlying object.
        if entry.flags.symbolic_budget.is_some() {
            let effect = self.symbolic_read(fd, buf, len, &entry);
            return self.maybe_inject_fault(fault_flag, effect);
        }

        let effect = match entry.object {
            FdObject::File(file_idx) => self.file_read(file_idx, buf, len),
            FdObject::PipeRead(s) => self.stream_read(s, buf, len, entry.flags.fragment),
            FdObject::Socket(sock) => match self.posix.objects.sockets[sock].state.clone() {
                SocketState::Connected { rx, .. } => {
                    self.stream_read(rx, buf, len, entry.flags.fragment)
                }
                _ => err(),
            },
            FdObject::Stdin => ret(0),
            FdObject::Stdout | FdObject::Stderr | FdObject::PipeWrite(_) => err(),
        };
        self.maybe_inject_fault(fault_flag, effect)
    }

    fn file_read(
        &mut self,
        file_idx: usize,
        buf: u64,
        len: usize,
    ) -> Result<SyscallEffect, TerminationReason> {
        let (path, offset) = {
            let of = &self.posix.objects.open_files[file_idx];
            (of.path.clone(), of.offset)
        };
        let Some(file) = self.posix.fs.file(&path) else {
            return err();
        };
        let data = file.read(offset, len);
        if !data.is_empty() && !self.write_guest(buf, &data) {
            return err();
        }
        self.posix.objects.open_files[file_idx].offset += data.len();
        ret(data.len() as u64)
    }

    fn stream_read(
        &mut self,
        s: StreamIdx,
        buf: u64,
        len: usize,
        fragment: bool,
    ) -> Result<SyscallEffect, TerminationReason> {
        if len == 0 {
            return ret(0);
        }
        let (is_empty, writer_closed, stream_len) = {
            let stream = &self.posix.objects.streams[s];
            (stream.is_empty(), stream.writer_closed, stream.len())
        };
        if is_empty {
            if writer_closed {
                return ret(0);
            }
            return self.sleep_on(|posix, fresh| {
                *posix.objects.streams[s].read_waiters.get_or_insert(fresh)
            });
        }
        let avail = stream_len.min(len);
        if fragment && avail > 1 {
            // Fork over how many bytes this read returns; each alternative
            // consumes exactly that many bytes from the stream.
            let max_alts = self.config.max_fragment_alternatives.max(1);
            let choices: Vec<usize> = fragment_choices(avail, max_alts);
            let alts = choices
                .into_iter()
                .map(|k| {
                    SyscallAlternative::new(
                        &format!("read{k}"),
                        Value::concrete(k as u64, Width::W64),
                    )
                    .with_update(move |st| {
                        let data = {
                            let posix = st.env_as_mut::<PosixState>();
                            posix.objects.streams[s].pop(k)
                        };
                        let space = st.current_space();
                        let _ = st.memory.write_bytes(space, buf, &data);
                    })
                })
                .collect();
            return Ok(SyscallEffect::Fork(alts));
        }
        let data = self.posix.objects.streams[s].pop(avail);
        if !self.write_guest(buf, &data) {
            return err();
        }
        let w = self.posix.objects.streams[s].write_waiters;
        self.wake_all(w);
        ret(data.len() as u64)
    }

    fn symbolic_read(
        &mut self,
        fd: u64,
        buf: u64,
        len: usize,
        entry: &FdEntry,
    ) -> Result<SyscallEffect, TerminationReason> {
        let budget = entry.flags.symbolic_budget.unwrap_or(0);
        let n_max = (len as u64).min(budget).min(self.config.max_symbolic_chunk) as usize;
        if n_max == 0 {
            return ret(0);
        }
        let name = format!("fd{fd}_in{}", self.posix.sym_counter);
        self.posix.sym_counter += 1;
        let bytes: Vec<ByteValue> = self
            .state
            .fresh_symbolic_bytes(&name, n_max)
            .into_iter()
            .map(ByteValue::from_expr)
            .collect();
        if !self.write_guest(buf, &bytes) {
            return err();
        }
        let pid = self.pid();
        if entry.flags.fragment && n_max > 1 {
            let choices: Vec<usize> =
                fragment_choices(n_max, self.config.max_fragment_alternatives);
            let alts = choices
                .into_iter()
                .map(|k| {
                    SyscallAlternative::new(
                        &format!("frag{k}"),
                        Value::concrete(k as u64, Width::W64),
                    )
                    .with_update(move |st| {
                        let posix = st.env_as_mut::<PosixState>();
                        if let Some(e) = posix.fd_tables.get_mut(&pid).and_then(|t| t.get_mut(fd)) {
                            if let Some(b) = &mut e.flags.symbolic_budget {
                                *b = b.saturating_sub(k as u64);
                            }
                        }
                    })
                })
                .collect();
            return Ok(SyscallEffect::Fork(alts));
        }
        if let Some(e) = self.fd_table().get_mut(fd) {
            if let Some(b) = &mut e.flags.symbolic_budget {
                *b = b.saturating_sub(n_max as u64);
            }
        }
        ret(n_max as u64)
    }

    fn sys_write(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let buf = self.arg(args, 1);
        let len = self.arg(args, 2) as usize;
        let Some(entry) = self.entry(fd) else {
            return err();
        };
        let fault_flag = entry.flags.fault_inject;
        let Some(data) = self.read_guest(buf, len) else {
            return err();
        };
        let effect = match entry.object {
            FdObject::Stdout | FdObject::Stderr => ret(len as u64),
            FdObject::File(file_idx) => {
                let (path, offset) = {
                    let of = &self.posix.objects.open_files[file_idx];
                    (of.path.clone(), of.offset)
                };
                match self.posix.fs.file_mut(&path) {
                    Some(file) => {
                        file.write(offset, &data);
                        self.posix.objects.open_files[file_idx].offset += data.len();
                        ret(data.len() as u64)
                    }
                    None => err(),
                }
            }
            FdObject::PipeWrite(s) => self.stream_write(s, &data),
            FdObject::Socket(sock) => match self.posix.objects.sockets[sock].state.clone() {
                SocketState::Connected { tx, .. } => self.stream_write(tx, &data),
                _ => {
                    // Writes to an unconnected but symbolic-input socket are
                    // simply discarded (the test harness plays the peer).
                    if entry.flags.symbolic_budget.is_some() {
                        ret(len as u64)
                    } else {
                        err()
                    }
                }
            },
            FdObject::Stdin | FdObject::PipeRead(_) => err(),
        };
        self.maybe_inject_fault(fault_flag, effect)
    }

    fn stream_write(
        &mut self,
        s: StreamIdx,
        data: &[ByteValue],
    ) -> Result<SyscallEffect, TerminationReason> {
        if self.posix.objects.streams[s].reader_closed {
            return err();
        }
        if self.posix.objects.streams[s].free_space() == 0 {
            return self.sleep_on(|posix, fresh| {
                *posix.objects.streams[s].write_waiters.get_or_insert(fresh)
            });
        }
        let pushed = self.posix.objects.streams[s].push(data);
        let r = self.posix.objects.streams[s].read_waiters;
        self.wake_all(r);
        self.wake_select();
        ret(pushed as u64)
    }

    fn sys_lseek(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let offset = self.arg(args, 1) as i64;
        let whence = self.arg(args, 2);
        let Some(entry) = self.entry(fd) else {
            return err();
        };
        let FdObject::File(file_idx) = entry.object else {
            return err();
        };
        let path = self.posix.objects.open_files[file_idx].path.clone();
        let size = self.posix.fs.file(&path).map(|f| f.len()).unwrap_or(0) as i64;
        let current = self.posix.objects.open_files[file_idx].offset as i64;
        let new = match whence {
            nr::SEEK_SET => offset,
            nr::SEEK_CUR => current + offset,
            nr::SEEK_END => size + offset,
            _ => return err(),
        };
        if new < 0 {
            return err();
        }
        self.posix.objects.open_files[file_idx].offset = new as usize;
        ret(new as u64)
    }

    fn sys_fstat_size(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let Some(entry) = self.entry(fd) else {
            return err();
        };
        let FdObject::File(file_idx) = entry.object else {
            return err();
        };
        let path = self.posix.objects.open_files[file_idx].path.clone();
        match self.posix.fs.file(&path) {
            Some(f) => ret(f.len() as u64),
            None => err(),
        }
    }

    fn sys_dup(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let Some(entry) = self.entry(fd) else {
            return err();
        };
        let new_fd = self.fd_table().install(entry);
        ret(new_fd)
    }

    fn sys_unlink(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let path_ptr = self.arg(args, 0);
        let space = self.state.current_space();
        let Ok(path_bytes) = self.state.memory.read_cstring(space, path_ptr, 4096) else {
            return err();
        };
        let path = String::from_utf8_lossy(&path_bytes).to_string();
        if self.posix.fs.unlink(&path) {
            ret(0)
        } else {
            err()
        }
    }

    fn sys_mmap_anon(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let len = self.arg(args, 0) as usize;
        let space = self.state.current_space();
        let base = self.state.memory.alloc(space, len);
        ret(base)
    }

    // -- sockets ----------------------------------------------------------------

    fn sys_socket(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let kind = if self.arg(args, 0) == nr::SOCK_DGRAM {
            SocketKind::Datagram
        } else {
            SocketKind::Stream
        };
        let idx = self.posix.objects.add_socket(Socket::new(kind));
        if kind == SocketKind::Datagram {
            self.posix.objects.sockets[idx].state = SocketState::Udp {
                port: None,
                rx_packets: Default::default(),
                recv_waiters: None,
            };
        }
        let fd = self.fd_table().install(FdEntry::new(FdObject::Socket(idx)));
        ret(fd)
    }

    fn socket_of(&mut self, fd: u64) -> Option<SocketIdx> {
        match self.entry(fd)?.object {
            FdObject::Socket(idx) => Some(idx),
            _ => None,
        }
    }

    fn sys_bind(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let port = self.arg(args, 1) as u16;
        let Some(idx) = self.socket_of(fd) else {
            return err();
        };
        match self.posix.objects.sockets[idx].kind {
            SocketKind::Stream => {
                // Remember the port by pre-registering a (not yet listening)
                // listener slot; listen() finalizes it.
                self.posix.network.tcp_listeners.insert(port, idx);
                ret(0)
            }
            SocketKind::Datagram => {
                if let SocketState::Udp { port: p, .. } = &mut self.posix.objects.sockets[idx].state
                {
                    *p = Some(port);
                }
                self.posix.network.udp_bound.insert(port, idx);
                ret(0)
            }
        }
    }

    fn sys_listen(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let Some(idx) = self.socket_of(fd) else {
            return err();
        };
        let port = self
            .posix
            .network
            .tcp_listeners
            .iter()
            .find(|(_, i)| **i == idx)
            .map(|(p, _)| *p)
            .unwrap_or(0);
        self.posix.objects.sockets[idx].state = SocketState::Listening {
            port,
            pending: Default::default(),
            accept_waiters: None,
        };
        ret(0)
    }

    fn sys_accept(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let Some(idx) = self.socket_of(fd) else {
            return err();
        };
        let pending_conn = match &mut self.posix.objects.sockets[idx].state {
            SocketState::Listening { pending, .. } => pending.pop_front(),
            _ => return err(),
        };
        match pending_conn {
            Some(conn_idx) => {
                let new_fd = self
                    .fd_table()
                    .install(FdEntry::new(FdObject::Socket(conn_idx)));
                ret(new_fd)
            }
            None => {
                self.sleep_on(
                    move |posix, fresh| match &mut posix.objects.sockets[idx].state {
                        SocketState::Listening { accept_waiters, .. } => {
                            *accept_waiters.get_or_insert(fresh)
                        }
                        _ => fresh,
                    },
                )
            }
        }
    }

    fn sys_connect(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let port = self.arg(args, 1) as u16;
        let Some(client_idx) = self.socket_of(fd) else {
            return err();
        };
        let Some(&listener_idx) = self.posix.network.tcp_listeners.get(&port) else {
            return err();
        };
        // Build the two half-duplex streams of Fig. 6.
        let c2s = self.posix.objects.add_stream(StreamBuffer::new());
        let s2c = self.posix.objects.add_stream(StreamBuffer::new());
        self.posix.objects.sockets[client_idx].state = SocketState::Connected { tx: c2s, rx: s2c };
        let server_conn = self.posix.objects.add_socket(Socket {
            kind: SocketKind::Stream,
            state: SocketState::Connected { tx: s2c, rx: c2s },
        });
        let waiters = match &mut self.posix.objects.sockets[listener_idx].state {
            SocketState::Listening {
                pending,
                accept_waiters,
                ..
            } => {
                pending.push_back(server_conn);
                *accept_waiters
            }
            _ => return err(),
        };
        self.wake_all(waiters);
        self.wake_select();
        ret(0)
    }

    fn sys_shutdown(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let Some(idx) = self.socket_of(fd) else {
            return err();
        };
        if let SocketState::Connected { tx, .. } = self.posix.objects.sockets[idx].state {
            self.posix.objects.streams[tx].writer_closed = true;
            let r = self.posix.objects.streams[tx].read_waiters;
            self.wake_all(r);
            self.wake_select();
        }
        ret(0)
    }

    fn sys_recvfrom(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let buf = self.arg(args, 1);
        let len = self.arg(args, 2) as usize;
        let Some(entry) = self.entry(fd) else {
            return err();
        };
        let Some(idx) = self.socket_of(fd) else {
            return err();
        };
        // Symbolic UDP source: each datagram is fresh symbolic bytes; with
        // fragmentation enabled the datagram size is also symbolic.
        if entry.flags.symbolic_budget.is_some() {
            return self.symbolic_read(fd, buf, len, &entry);
        }
        let packet = match &mut self.posix.objects.sockets[idx].state {
            SocketState::Udp { rx_packets, .. } => rx_packets.pop_front(),
            _ => return err(),
        };
        match packet {
            Some(dgram) => {
                let n = dgram.data.len().min(len);
                if !self.write_guest(buf, &dgram.data[..n]) {
                    return err();
                }
                ret(n as u64)
            }
            None => {
                self.sleep_on(
                    move |posix, fresh| match &mut posix.objects.sockets[idx].state {
                        SocketState::Udp { recv_waiters, .. } => *recv_waiters.get_or_insert(fresh),
                        _ => fresh,
                    },
                )
            }
        }
    }

    fn sys_sendto(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let buf = self.arg(args, 1);
        let len = self.arg(args, 2) as usize;
        let port = self.arg(args, 3) as u16;
        if self.socket_of(fd).is_none() {
            return err();
        }
        let Some(data) = self.read_guest(buf, len) else {
            return err();
        };
        let Some(&dest_idx) = self.posix.network.udp_bound.get(&port) else {
            // Datagrams to unbound ports vanish silently, like UDP.
            return ret(len as u64);
        };
        let waiters = match &mut self.posix.objects.sockets[dest_idx].state {
            SocketState::Udp {
                rx_packets,
                recv_waiters,
                ..
            } => {
                rx_packets.push_back(Datagram { data, from_port: 0 });
                *recv_waiters
            }
            _ => return err(),
        };
        self.wake_all(waiters);
        self.wake_select();
        ret(len as u64)
    }

    // -- pipes and polling --------------------------------------------------------

    fn sys_pipe(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fds_ptr = self.arg(args, 0);
        let s = self.posix.objects.add_stream(StreamBuffer::new());
        let read_fd = self.fd_table().install(FdEntry::new(FdObject::PipeRead(s)));
        let write_fd = self
            .fd_table()
            .install(FdEntry::new(FdObject::PipeWrite(s)));
        let mut out = Vec::new();
        for fd in [read_fd, write_fd] {
            out.extend((fd as u32).to_le_bytes().map(ByteValue::Concrete));
        }
        if !self.write_guest(fds_ptr, &out) {
            return err();
        }
        ret(0)
    }

    /// Whether a descriptor is ready for reading.
    fn fd_readable(&mut self, fd: u64) -> bool {
        let Some(entry) = self.entry(fd) else {
            return false;
        };
        if let Some(budget) = entry.flags.symbolic_budget {
            return budget > 0;
        }
        match entry.object {
            FdObject::File(_) | FdObject::Stdin => true,
            FdObject::PipeRead(s) => self.posix.objects.streams[s].readable(),
            FdObject::Socket(idx) => match &self.posix.objects.sockets[idx].state {
                SocketState::Connected { rx, .. } => self.posix.objects.streams[*rx].readable(),
                SocketState::Listening { pending, .. } => !pending.is_empty(),
                SocketState::Udp { rx_packets, .. } => !rx_packets.is_empty(),
                _ => false,
            },
            _ => false,
        }
    }

    /// Whether a descriptor is ready for writing.
    fn fd_writable(&mut self, fd: u64) -> bool {
        let Some(entry) = self.entry(fd) else {
            return false;
        };
        match entry.object {
            FdObject::File(_) | FdObject::Stdout | FdObject::Stderr => true,
            FdObject::PipeWrite(s) => self.posix.objects.streams[s].writable(),
            FdObject::Socket(idx) => match &self.posix.objects.sockets[idx].state {
                SocketState::Connected { tx, .. } => self.posix.objects.streams[*tx].writable(),
                SocketState::Udp { .. } => true,
                _ => entry.flags.symbolic_budget.is_some(),
            },
            _ => false,
        }
    }

    fn sys_select(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let nfds = self.arg(args, 0).min(64);
        let readfds_ptr = self.arg(args, 1);
        let writefds_ptr = self.arg(args, 2);
        let space = self.state.current_space();
        let read_mask = if readfds_ptr != 0 {
            self.state
                .memory
                .read(space, readfds_ptr, Width::W64)
                .ok()
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        } else {
            0
        };
        let write_mask = if writefds_ptr != 0 {
            self.state
                .memory
                .read(space, writefds_ptr, Width::W64)
                .ok()
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        } else {
            0
        };

        let mut ready_read: u64 = 0;
        let mut ready_write: u64 = 0;
        let mut count = 0u64;
        for fd in 0..nfds {
            if read_mask & (1 << fd) != 0 && self.fd_readable(fd) {
                ready_read |= 1 << fd;
                count += 1;
            }
            if write_mask & (1 << fd) != 0 && self.fd_writable(fd) {
                ready_write |= 1 << fd;
                count += 1;
            }
        }
        if count == 0 && (read_mask | write_mask) != 0 {
            return self.sleep_on(|posix, fresh| *posix.select_wlist.get_or_insert(fresh));
        }
        if readfds_ptr != 0 {
            let v = Value::concrete(ready_read, Width::W64);
            let _ = self.state.memory.write(space, readfds_ptr, &v, Width::W64);
        }
        if writefds_ptr != 0 {
            let v = Value::concrete(ready_write, Width::W64);
            let _ = self.state.memory.write(space, writefds_ptr, &v, Width::W64);
        }
        ret(count)
    }

    // -- ioctl / testing API -------------------------------------------------------

    fn sys_ioctl(&mut self, args: &[Value]) -> Result<SyscallEffect, TerminationReason> {
        let fd = self.arg(args, 0);
        let code = self.arg(args, 1);
        let arg = self.arg(args, 2);
        let Some(entry) = self.fd_table().get_mut(fd) else {
            return err();
        };
        match code {
            nr::SIO_SYMBOLIC => {
                entry.flags.symbolic_budget = Some(if arg == 0 { 64 } else { arg });
                ret(0)
            }
            nr::SIO_PKT_FRAGMENT => {
                entry.flags.fragment = true;
                ret(0)
            }
            nr::SIO_FAULT_INJ => {
                entry.flags.fault_inject = true;
                ret(0)
            }
            _ => err(),
        }
    }
}

/// The set of return-length alternatives for a fragmented read of `avail`
/// bytes, capped at `max_alts` alternatives. The full length and length 1 are
/// always included; intermediate lengths are sampled evenly.
fn fragment_choices(avail: usize, max_alts: usize) -> Vec<usize> {
    let max_alts = max_alts.max(2);
    if avail <= max_alts {
        return (1..=avail).collect();
    }
    let mut choices = vec![1];
    let steps = max_alts - 2;
    for i in 1..=steps {
        let v = 1 + i * (avail - 1) / (steps + 1);
        if !choices.contains(&v) {
            choices.push(v);
        }
    }
    if !choices.contains(&avail) {
        choices.push(avail);
    }
    choices
}

#[cfg(test)]
mod model_tests {
    use super::*;

    #[test]
    fn fragment_choices_cover_extremes() {
        assert_eq!(fragment_choices(3, 8), vec![1, 2, 3]);
        let c = fragment_choices(100, 5);
        assert!(c.contains(&1));
        assert!(c.contains(&100));
        assert!(c.len() <= 5);
        let c1 = fragment_choices(2, 2);
        assert_eq!(c1, vec![1, 2]);
    }
}
