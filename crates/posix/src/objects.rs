//! File descriptors, files, sockets, pipes, and the modelled file system.

use crate::buffers::{BlockBuffer, StreamBuffer};
use c9_vm::{ByteValue, WaitListId};
use std::collections::{BTreeMap, VecDeque};

/// Index of a stream buffer in [`crate::PosixState`].
pub type StreamIdx = usize;
/// Index of a socket in [`crate::PosixState`].
pub type SocketIdx = usize;
/// Index of an open file description in [`crate::PosixState`].
pub type FileIdx = usize;

/// The object a file descriptor refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FdObject {
    /// A regular file in the modelled file system.
    File(FileIdx),
    /// A socket.
    Socket(SocketIdx),
    /// The read end of a pipe.
    PipeRead(StreamIdx),
    /// The write end of a pipe.
    PipeWrite(StreamIdx),
    /// Standard input.
    Stdin,
    /// Standard output.
    Stdout,
    /// Standard error.
    Stderr,
}

/// Per-descriptor flags controlled through the extended ioctl codes of
/// Table 3 in the paper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FdFlags {
    /// When set, reads from this descriptor produce fresh symbolic bytes; the
    /// value is the number of symbolic bytes remaining.
    pub symbolic_budget: Option<u64>,
    /// When set, stream reads return a symbolically-chosen prefix of the
    /// requested length (packet fragmentation).
    pub fragment: bool,
    /// When set, operations on this descriptor are subject to fault
    /// injection.
    pub fault_inject: bool,
}

/// One slot in a process's file descriptor table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FdEntry {
    /// The object the descriptor refers to.
    pub object: FdObject,
    /// Per-descriptor testing flags.
    pub flags: FdFlags,
}

impl FdEntry {
    /// Creates an entry with default flags.
    pub fn new(object: FdObject) -> FdEntry {
        FdEntry {
            object,
            flags: FdFlags::default(),
        }
    }
}

/// A file descriptor table (one per process; inherited on fork by cloning).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FdTable {
    entries: Vec<Option<FdEntry>>,
}

impl FdTable {
    /// Creates a table with stdin/stdout/stderr preopened as fds 0–2.
    pub fn with_stdio() -> FdTable {
        FdTable {
            entries: vec![
                Some(FdEntry::new(FdObject::Stdin)),
                Some(FdEntry::new(FdObject::Stdout)),
                Some(FdEntry::new(FdObject::Stderr)),
            ],
        }
    }

    /// Installs an entry in the lowest free slot and returns its fd.
    pub fn install(&mut self, entry: FdEntry) -> u64 {
        for (i, slot) in self.entries.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(entry);
                return i as u64;
            }
        }
        self.entries.push(Some(entry));
        (self.entries.len() - 1) as u64
    }

    /// Looks up a descriptor.
    pub fn get(&self, fd: u64) -> Option<&FdEntry> {
        self.entries.get(fd as usize).and_then(|e| e.as_ref())
    }

    /// Looks up a descriptor mutably.
    pub fn get_mut(&mut self, fd: u64) -> Option<&mut FdEntry> {
        self.entries.get_mut(fd as usize).and_then(|e| e.as_mut())
    }

    /// Removes a descriptor, returning its entry.
    pub fn remove(&mut self, fd: u64) -> Option<FdEntry> {
        self.entries.get_mut(fd as usize).and_then(|e| e.take())
    }

    /// Number of live descriptors.
    pub fn live(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

/// An open file description: the file path plus the current offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpenFile {
    /// Path of the file within the modelled file system.
    pub path: String,
    /// Current read/write offset.
    pub offset: usize,
}

/// The modelled file system: a flat namespace of block buffers.
///
/// Concrete files play the role of the read-only "external environment"
/// files of the paper (e.g. `/etc` configuration files); symbolic files are
/// created by symbolic tests.
#[derive(Clone, Debug, Default)]
pub struct FileSystem {
    files: BTreeMap<String, BlockBuffer>,
}

impl FileSystem {
    /// Creates an empty file system.
    pub fn new() -> FileSystem {
        FileSystem::default()
    }

    /// Adds (or replaces) a file with concrete contents.
    pub fn add_file(&mut self, path: &str, contents: &[u8]) {
        self.files
            .insert(path.to_string(), BlockBuffer::from_bytes(contents));
    }

    /// Adds (or replaces) a file with the given (possibly symbolic) contents.
    pub fn add_file_values(&mut self, path: &str, contents: Vec<ByteValue>) {
        self.files
            .insert(path.to_string(), BlockBuffer::from_values(contents));
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Creates an empty file if it does not exist.
    pub fn create(&mut self, path: &str) {
        self.files
            .entry(path.to_string())
            .or_insert_with(|| BlockBuffer::zeroed(0));
    }

    /// Removes a file; returns whether it existed.
    pub fn unlink(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    /// Read-only access to a file's contents.
    pub fn file(&self, path: &str) -> Option<&BlockBuffer> {
        self.files.get(path)
    }

    /// Mutable access to a file's contents.
    pub fn file_mut(&mut self, path: &str) -> Option<&mut BlockBuffer> {
        self.files.get_mut(path)
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the file system holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

/// A datagram queued on a UDP socket.
#[derive(Clone, Debug)]
pub struct Datagram {
    /// Payload bytes (possibly symbolic).
    pub data: Vec<ByteValue>,
    /// Source port, when known.
    pub from_port: u16,
}

/// The state of a socket.
#[derive(Clone, Debug)]
pub enum SocketState {
    /// Freshly created, not yet bound or connected.
    Created,
    /// A TCP socket listening on a port.
    Listening {
        /// Bound port.
        port: u16,
        /// Accepted-side connection sockets waiting for `accept`.
        pending: VecDeque<SocketIdx>,
        /// Threads blocked in `accept`.
        accept_waiters: Option<WaitListId>,
    },
    /// A connected TCP socket.
    Connected {
        /// Stream carrying data this socket sends.
        tx: StreamIdx,
        /// Stream carrying data this socket receives.
        rx: StreamIdx,
    },
    /// A UDP socket (bound or not).
    Udp {
        /// Bound port, if any.
        port: Option<u16>,
        /// Received datagrams awaiting `recvfrom`.
        rx_packets: VecDeque<Datagram>,
        /// Threads blocked in `recvfrom`.
        recv_waiters: Option<WaitListId>,
    },
    /// Closed.
    Closed,
}

/// The kind of a socket, fixed at creation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketKind {
    /// Stream (TCP-like) socket.
    Stream,
    /// Datagram (UDP-like) socket.
    Datagram,
}

/// A socket object (§4.3, Fig. 6: a connection is a pair of stream buffers).
#[derive(Clone, Debug)]
pub struct Socket {
    /// Stream vs. datagram.
    pub kind: SocketKind,
    /// Current state.
    pub state: SocketState,
}

impl Socket {
    /// Creates a fresh socket of the given kind.
    pub fn new(kind: SocketKind) -> Socket {
        Socket {
            kind,
            state: SocketState::Created,
        }
    }
}

/// The single-IP modelled network: ports that sockets listen on.
#[derive(Clone, Debug, Default)]
pub struct Network {
    /// TCP listeners by port.
    pub tcp_listeners: BTreeMap<u16, SocketIdx>,
    /// UDP sockets by bound port.
    pub udp_bound: BTreeMap<u16, SocketIdx>,
}

/// The full set of kernel-object tables of the POSIX model.
#[derive(Clone, Debug, Default)]
pub struct ObjectTables {
    /// All stream buffers (socket directions and pipes).
    pub streams: Vec<StreamBuffer>,
    /// All sockets.
    pub sockets: Vec<Socket>,
    /// All open file descriptions.
    pub open_files: Vec<OpenFile>,
}

impl ObjectTables {
    /// Adds a stream buffer and returns its index.
    pub fn add_stream(&mut self, stream: StreamBuffer) -> StreamIdx {
        self.streams.push(stream);
        self.streams.len() - 1
    }

    /// Adds a socket and returns its index.
    pub fn add_socket(&mut self, socket: Socket) -> SocketIdx {
        self.sockets.push(socket);
        self.sockets.len() - 1
    }

    /// Adds an open file description and returns its index.
    pub fn add_open_file(&mut self, file: OpenFile) -> FileIdx {
        self.open_files.push(file);
        self.open_files.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_table_reuses_lowest_free_slot() {
        let mut t = FdTable::with_stdio();
        let a = t.install(FdEntry::new(FdObject::Stdin));
        assert_eq!(a, 3);
        t.remove(1);
        let b = t.install(FdEntry::new(FdObject::Stdout));
        assert_eq!(b, 1, "freed slot must be reused");
        assert_eq!(t.live(), 4);
    }

    #[test]
    fn file_system_basic_operations() {
        let mut fs = FileSystem::new();
        assert!(fs.is_empty());
        fs.add_file("/etc/config", b"key=value");
        assert!(fs.exists("/etc/config"));
        assert_eq!(fs.file("/etc/config").unwrap().len(), 9);
        fs.create("/tmp/new");
        assert!(fs.exists("/tmp/new"));
        assert!(fs.unlink("/tmp/new"));
        assert!(!fs.unlink("/tmp/new"));
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn object_tables_hand_out_sequential_indices() {
        let mut t = ObjectTables::default();
        assert_eq!(t.add_stream(StreamBuffer::new()), 0);
        assert_eq!(t.add_stream(StreamBuffer::new()), 1);
        assert_eq!(t.add_socket(Socket::new(SocketKind::Stream)), 0);
        assert_eq!(
            t.add_open_file(OpenFile {
                path: "/x".into(),
                offset: 0
            }),
            0
        );
    }
}
