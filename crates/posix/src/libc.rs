//! Guest-side C-library layer built on the engine primitives.
//!
//! The paper's POSIX model implements synchronization in *guest* code on top
//! of the symbolic system calls (Fig. 5 shows `pthread_mutex_lock`/`unlock`
//! written against `cloud9_thread_sleep`/`notify`). This module reproduces
//! that layer: it emits the corresponding IR functions into a
//! [`ProgramBuilder`], so target programs link against them exactly like a C
//! program links against the modelled pthreads library.
//!
//! Memory layout of the modelled objects (all fields 32-bit little-endian):
//!
//! * mutex (16 bytes): `wlist`, `taken`, `owner`, `queued`
//! * condition variable (4 bytes): `wlist`

use c9_ir::{BinaryOp, FuncId, Operand, ProgramBuilder, RegId, Width};
use c9_vm::sysno;

/// Function ids of the emitted C-library routines.
#[derive(Clone, Copy, Debug)]
pub struct Libc {
    /// `pthread_mutex_init(mutex_ptr)`.
    pub mutex_init: FuncId,
    /// `pthread_mutex_lock(mutex_ptr)` → 0.
    pub mutex_lock: FuncId,
    /// `pthread_mutex_unlock(mutex_ptr)` → 0 or -1 (EPERM).
    pub mutex_unlock: FuncId,
    /// `pthread_cond_init(cond_ptr)`.
    pub cond_init: FuncId,
    /// `pthread_cond_wait(cond_ptr, mutex_ptr)`.
    pub cond_wait: FuncId,
    /// `pthread_cond_signal(cond_ptr)`.
    pub cond_signal: FuncId,
    /// `pthread_cond_broadcast(cond_ptr)`.
    pub cond_broadcast: FuncId,
    /// `pthread_self()` → current thread id.
    pub thread_self: FuncId,
}

/// Size of a modelled `pthread_mutex_t`, in bytes.
pub const MUTEX_SIZE: u32 = 16;
/// Size of a modelled `pthread_cond_t`, in bytes.
pub const COND_SIZE: u32 = 4;

const MUTEX_WLIST: u32 = 0;
const MUTEX_TAKEN: u32 = 4;
const MUTEX_OWNER: u32 = 8;
const MUTEX_QUEUED: u32 = 12;

fn field(f: &mut c9_ir::FunctionBuilder<'_>, base: RegId, offset: u32) -> RegId {
    f.binary(BinaryOp::Add, Operand::Reg(base), Operand::word(offset))
}

/// Emits the C-library routines into `pb` and returns their ids.
pub fn add_libc(pb: &mut ProgramBuilder) -> Libc {
    let thread_self = build_thread_self(pb);
    let mutex_init = build_mutex_init(pb);
    let mutex_lock = build_mutex_lock(pb, thread_self);
    let mutex_unlock = build_mutex_unlock(pb, thread_self);
    let cond_init = build_cond_init(pb);
    let cond_signal = build_cond_notify(pb, "pthread_cond_signal", 0);
    let cond_broadcast = build_cond_notify(pb, "pthread_cond_broadcast", 1);
    let cond_wait = build_cond_wait(pb, mutex_lock, mutex_unlock);
    Libc {
        mutex_init,
        mutex_lock,
        mutex_unlock,
        cond_init,
        cond_wait,
        cond_signal,
        cond_broadcast,
        thread_self,
    }
}

fn build_thread_self(pb: &mut ProgramBuilder) -> FuncId {
    let mut f = pb.function("pthread_self", 0, Some(Width::W32));
    let ctx = f.syscall(sysno::GET_CONTEXT, vec![]);
    let tid = f.binary(
        BinaryOp::And,
        Operand::Reg(ctx),
        Operand::Const(0xffff, Width::W64),
    );
    let tid32 = f.trunc(Operand::Reg(tid), Width::W32);
    f.ret(Some(Operand::Reg(tid32)));
    f.finish()
}

fn build_mutex_init(pb: &mut ProgramBuilder) -> FuncId {
    let mut f = pb.function("pthread_mutex_init", 1, Some(Width::W32));
    let m = f.param(0);
    let wlist = f.syscall(sysno::GET_WLIST, vec![]);
    let wlist32 = f.trunc(Operand::Reg(wlist), Width::W32);
    let wlist_addr = field(&mut f, m, MUTEX_WLIST);
    f.store(Operand::Reg(wlist_addr), Operand::Reg(wlist32), Width::W32);
    for offset in [MUTEX_TAKEN, MUTEX_OWNER, MUTEX_QUEUED] {
        let addr = field(&mut f, m, offset);
        f.store(Operand::Reg(addr), Operand::word(0), Width::W32);
    }
    f.ret(Some(Operand::word(0)));
    f.finish()
}

/// Fig. 5 of the paper, transliterated to IR: wait while the mutex is taken
/// or has queued waiters, then take it.
fn build_mutex_lock(pb: &mut ProgramBuilder, thread_self: FuncId) -> FuncId {
    let mut f = pb.function("pthread_mutex_lock", 1, Some(Width::W32));
    let m = f.param(0);
    let wait_bb = f.create_block();
    let take_bb = f.create_block();

    let queued_addr = field(&mut f, m, MUTEX_QUEUED);
    let taken_addr = field(&mut f, m, MUTEX_TAKEN);
    let queued = f.load(Operand::Reg(queued_addr), Width::W32);
    let taken = f.load(Operand::Reg(taken_addr), Width::W32);
    let queued_pos = f.binary(BinaryOp::Ne, Operand::Reg(queued), Operand::word(0));
    let taken_set = f.binary(BinaryOp::Ne, Operand::Reg(taken), Operand::word(0));
    let need_wait = f.binary(
        BinaryOp::Or,
        Operand::Reg(queued_pos),
        Operand::Reg(taken_set),
    );
    f.branch(Operand::Reg(need_wait), wait_bb, take_bb);

    f.switch_to(wait_bb);
    let queued_addr_w = field(&mut f, m, MUTEX_QUEUED);
    let q = f.load(Operand::Reg(queued_addr_w), Width::W32);
    let q_inc = f.binary(BinaryOp::Add, Operand::Reg(q), Operand::word(1));
    f.store(Operand::Reg(queued_addr_w), Operand::Reg(q_inc), Width::W32);
    let wlist_addr = field(&mut f, m, MUTEX_WLIST);
    let wlist = f.load(Operand::Reg(wlist_addr), Width::W32);
    f.syscall(sysno::THREAD_SLEEP, vec![Operand::Reg(wlist)]);
    let q2 = f.load(Operand::Reg(queued_addr_w), Width::W32);
    let q_dec = f.binary(BinaryOp::Sub, Operand::Reg(q2), Operand::word(1));
    f.store(Operand::Reg(queued_addr_w), Operand::Reg(q_dec), Width::W32);
    f.jump(take_bb);

    f.switch_to(take_bb);
    let taken_addr2 = field(&mut f, m, MUTEX_TAKEN);
    f.store(Operand::Reg(taken_addr2), Operand::word(1), Width::W32);
    let me = f.call(thread_self, vec![]);
    let owner_addr = field(&mut f, m, MUTEX_OWNER);
    f.store(Operand::Reg(owner_addr), Operand::Reg(me), Width::W32);
    f.ret(Some(Operand::word(0)));
    f.finish()
}

fn build_mutex_unlock(pb: &mut ProgramBuilder, thread_self: FuncId) -> FuncId {
    let mut f = pb.function("pthread_mutex_unlock", 1, Some(Width::W32));
    let m = f.param(0);
    let error_bb = f.create_block();
    let release_bb = f.create_block();
    let notify_bb = f.create_block();
    let done_bb = f.create_block();

    let taken_addr = field(&mut f, m, MUTEX_TAKEN);
    let taken = f.load(Operand::Reg(taken_addr), Width::W32);
    let not_taken = f.binary(BinaryOp::Eq, Operand::Reg(taken), Operand::word(0));
    let owner_addr = field(&mut f, m, MUTEX_OWNER);
    let owner = f.load(Operand::Reg(owner_addr), Width::W32);
    let me = f.call(thread_self, vec![]);
    let not_owner = f.binary(BinaryOp::Ne, Operand::Reg(owner), Operand::Reg(me));
    let bad = f.binary(
        BinaryOp::Or,
        Operand::Reg(not_taken),
        Operand::Reg(not_owner),
    );
    f.branch(Operand::Reg(bad), error_bb, release_bb);

    f.switch_to(error_bb);
    // EPERM, as in Fig. 5.
    f.ret(Some(Operand::Const(u64::MAX, Width::W32)));

    f.switch_to(release_bb);
    let taken_addr2 = field(&mut f, m, MUTEX_TAKEN);
    f.store(Operand::Reg(taken_addr2), Operand::word(0), Width::W32);
    let queued_addr = field(&mut f, m, MUTEX_QUEUED);
    let queued = f.load(Operand::Reg(queued_addr), Width::W32);
    let has_waiters = f.binary(BinaryOp::Ne, Operand::Reg(queued), Operand::word(0));
    f.branch(Operand::Reg(has_waiters), notify_bb, done_bb);

    f.switch_to(notify_bb);
    let wlist_addr = field(&mut f, m, MUTEX_WLIST);
    let wlist = f.load(Operand::Reg(wlist_addr), Width::W32);
    f.syscall(
        sysno::THREAD_NOTIFY,
        vec![Operand::Reg(wlist), Operand::word(0)],
    );
    f.jump(done_bb);

    f.switch_to(done_bb);
    f.ret(Some(Operand::word(0)));
    f.finish()
}

fn build_cond_init(pb: &mut ProgramBuilder) -> FuncId {
    let mut f = pb.function("pthread_cond_init", 1, Some(Width::W32));
    let c = f.param(0);
    let wlist = f.syscall(sysno::GET_WLIST, vec![]);
    let wlist32 = f.trunc(Operand::Reg(wlist), Width::W32);
    f.store(Operand::Reg(c), Operand::Reg(wlist32), Width::W32);
    f.ret(Some(Operand::word(0)));
    f.finish()
}

fn build_cond_notify(pb: &mut ProgramBuilder, name: &str, all: u32) -> FuncId {
    let mut f = pb.function(name, 1, Some(Width::W32));
    let c = f.param(0);
    let wlist = f.load(Operand::Reg(c), Width::W32);
    f.syscall(
        sysno::THREAD_NOTIFY,
        vec![Operand::Reg(wlist), Operand::word(all)],
    );
    f.ret(Some(Operand::word(0)));
    f.finish()
}

fn build_cond_wait(pb: &mut ProgramBuilder, mutex_lock: FuncId, mutex_unlock: FuncId) -> FuncId {
    let mut f = pb.function("pthread_cond_wait", 2, Some(Width::W32));
    let c = f.param(0);
    let m = f.param(1);
    let _ = f.call(mutex_unlock, vec![Operand::Reg(m)]);
    let wlist = f.load(Operand::Reg(c), Width::W32);
    f.syscall(sysno::THREAD_SLEEP, vec![Operand::Reg(wlist)]);
    let _ = f.call(mutex_lock, vec![Operand::Reg(m)]);
    f.ret(Some(Operand::word(0)));
    f.finish()
}
