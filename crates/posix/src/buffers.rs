//! Stream buffers and block buffers.
//!
//! §4.3 of the paper: "The two most important data structures are stream
//! buffers and block buffers, analogous to character and block device types
//! in UNIX." Stream buffers model half-duplex byte channels with event
//! notification (used for sockets and pipes); block buffers are fixed-size
//! random-access buffers (used for symbolic files).

use c9_vm::{ByteValue, WaitListId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Default capacity of a stream buffer, in bytes.
pub const DEFAULT_STREAM_CAPACITY: usize = 64 * 1024;

/// A producer–consumer byte queue with waiters on both ends.
#[derive(Clone, Debug)]
pub struct StreamBuffer {
    data: VecDeque<ByteValue>,
    capacity: usize,
    /// Set when the write end has been closed: readers see EOF after
    /// draining.
    pub writer_closed: bool,
    /// Set when the read end has been closed: writers get an error.
    pub reader_closed: bool,
    /// Wait list for threads blocked reading from an empty buffer.
    pub read_waiters: Option<WaitListId>,
    /// Wait list for threads blocked writing to a full buffer.
    pub write_waiters: Option<WaitListId>,
}

impl StreamBuffer {
    /// Creates an empty stream buffer with the default capacity.
    pub fn new() -> StreamBuffer {
        StreamBuffer::with_capacity(DEFAULT_STREAM_CAPACITY)
    }

    /// Creates an empty stream buffer with an explicit capacity.
    pub fn with_capacity(capacity: usize) -> StreamBuffer {
        StreamBuffer {
            data: VecDeque::new(),
            capacity,
            writer_closed: false,
            reader_closed: false,
            read_waiters: None,
            write_waiters: None,
        }
    }

    /// Number of bytes currently buffered.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Free space remaining before the capacity is reached.
    pub fn free_space(&self) -> usize {
        self.capacity.saturating_sub(self.data.len())
    }

    /// Appends bytes, up to the remaining capacity; returns how many were
    /// accepted.
    pub fn push(&mut self, bytes: &[ByteValue]) -> usize {
        let n = bytes.len().min(self.free_space());
        for b in &bytes[..n] {
            self.data.push_back(b.clone());
        }
        n
    }

    /// Removes and returns up to `max` bytes from the front.
    pub fn pop(&mut self, max: usize) -> Vec<ByteValue> {
        let n = max.min(self.data.len());
        self.data.drain(..n).collect()
    }

    /// Whether a reader would see EOF (no data and the writer is gone).
    pub fn at_eof(&self) -> bool {
        self.data.is_empty() && self.writer_closed
    }

    /// Whether a read of at least one byte can complete without blocking.
    pub fn readable(&self) -> bool {
        !self.data.is_empty() || self.writer_closed
    }

    /// Whether a write of at least one byte can complete without blocking.
    pub fn writable(&self) -> bool {
        self.free_space() > 0 || self.reader_closed
    }
}

impl Default for StreamBuffer {
    fn default() -> Self {
        StreamBuffer::new()
    }
}

/// A fixed-size random-access buffer used to back symbolic files.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlockBuffer {
    data: Vec<ByteValue>,
}

impl BlockBuffer {
    /// Creates a zero-filled block buffer of `size` bytes.
    pub fn zeroed(size: usize) -> BlockBuffer {
        BlockBuffer {
            data: vec![ByteValue::Concrete(0); size],
        }
    }

    /// Creates a block buffer from concrete contents.
    pub fn from_bytes(data: &[u8]) -> BlockBuffer {
        BlockBuffer {
            data: data.iter().map(|b| ByteValue::Concrete(*b)).collect(),
        }
    }

    /// Creates a block buffer from already-symbolic contents.
    pub fn from_values(data: Vec<ByteValue>) -> BlockBuffer {
        BlockBuffer { data }
    }

    /// Size of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer has zero size.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads up to `len` bytes starting at `offset` (clamped to the size).
    pub fn read(&self, offset: usize, len: usize) -> Vec<ByteValue> {
        if offset >= self.data.len() {
            return Vec::new();
        }
        let end = (offset + len).min(self.data.len());
        self.data[offset..end].to_vec()
    }

    /// Writes bytes starting at `offset`, growing the buffer if needed.
    pub fn write(&mut self, offset: usize, bytes: &[ByteValue]) {
        let needed = offset + bytes.len();
        if needed > self.data.len() {
            self.data.resize(needed, ByteValue::Concrete(0));
        }
        self.data[offset..needed].clone_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concrete(data: &[u8]) -> Vec<ByteValue> {
        data.iter().map(|b| ByteValue::Concrete(*b)).collect()
    }

    #[test]
    fn stream_buffer_fifo() {
        let mut sb = StreamBuffer::with_capacity(8);
        assert_eq!(sb.push(&concrete(b"hello")), 5);
        assert_eq!(sb.push(&concrete(b"world")), 3); // capacity 8
        assert_eq!(sb.len(), 8);
        let out = sb.pop(6);
        let bytes: Vec<u8> = out.iter().map(|b| b.as_concrete().unwrap()).collect();
        assert_eq!(&bytes, b"hellow");
        assert_eq!(sb.len(), 2);
    }

    #[test]
    fn stream_buffer_eof_semantics() {
        let mut sb = StreamBuffer::new();
        assert!(!sb.readable());
        sb.push(&concrete(b"x"));
        assert!(sb.readable());
        assert!(!sb.at_eof());
        sb.pop(1);
        sb.writer_closed = true;
        assert!(sb.at_eof());
        assert!(sb.readable());
    }

    #[test]
    fn block_buffer_read_write_and_growth() {
        let mut bb = BlockBuffer::from_bytes(b"abcdef");
        assert_eq!(bb.len(), 6);
        let part = bb.read(2, 3);
        assert_eq!(part.len(), 3);
        assert_eq!(part[0].as_concrete(), Some(b'c'));
        // Read past the end is clamped.
        assert_eq!(bb.read(5, 10).len(), 1);
        assert_eq!(bb.read(10, 4).len(), 0);
        // Writing past the end grows the buffer.
        bb.write(8, &concrete(b"zz"));
        assert_eq!(bb.len(), 10);
        assert_eq!(bb.read(8, 2)[0].as_concrete(), Some(b'z'));
    }
}
