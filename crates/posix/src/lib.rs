//! The symbolic POSIX environment model for Cloud9-RS.
//!
//! This crate reproduces §4 and §5 of the Cloud9 paper: a quasi-complete
//! model of the POSIX interface — files, pipes, TCP/UDP sockets, `select`
//! polling, descriptor-level symbolic input, packet fragmentation, and fault
//! injection — together with the guest-side pthreads layer built on the
//! engine primitives of Table 1.
//!
//! * [`PosixEnvironment`] / [`PosixState`] — the host-side syscall handlers
//!   and their per-path state (descriptor tables, stream buffers, sockets,
//!   the modelled file system). Register a `PosixEnvironment` with a
//!   [`c9_vm::Engine`] or `Executor`.
//! * [`nr`] — syscall numbers, the extended ioctl codes of Table 3
//!   (`SIO_SYMBOLIC`, `SIO_PKT_FRAGMENT`, `SIO_FAULT_INJ`), and error values.
//! * [`libc`](crate::add_libc) — guest IR implementations of
//!   `pthread_mutex_*` and `pthread_cond_*` (Fig. 5 of the paper), emitted
//!   into a [`c9_ir::ProgramBuilder`].
//!
//! # Writing symbolic tests
//!
//! A symbolic test (§5 of the paper) is just target code that uses the
//! testing API: it marks data symbolic with `cloud9_make_symbolic`
//! ([`c9_vm::sysno::MAKE_SYMBOLIC`]), turns descriptors into symbolic sources
//! with `ioctl(fd, SIO_SYMBOLIC, n)`, enables packet fragmentation or fault
//! injection, and then exercises the code under test. See the `c9-targets`
//! crate for complete examples (memcached-style symbolic packets, lighttpd
//! fragmentation patterns, fault-injection sweeps).
//!
//! # Examples
//!
//! Run a tiny "server" that reads one symbolic byte from a socket and
//! branches on it:
//!
//! ```
//! use std::sync::Arc;
//! use c9_ir::{BinaryOp, Operand, ProgramBuilder, Width};
//! use c9_posix::{nr, PosixEnvironment};
//! use c9_vm::{sysno, DfsSearcher, Engine, EngineConfig};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main", 0, Some(Width::W32));
//! let sock = f.syscall(nr::SOCKET, vec![Operand::word(0)]);
//! f.syscall(nr::IOCTL, vec![
//!     Operand::Reg(sock),
//!     Operand::Const(nr::SIO_SYMBOLIC, Width::W64),
//!     Operand::word(1),
//! ]);
//! let buf = f.alloc(Operand::word(1));
//! f.syscall(nr::RECV, vec![Operand::Reg(sock), Operand::Reg(buf), Operand::word(1)]);
//! let b = f.load(Operand::Reg(buf), Width::W8);
//! let is_q = f.binary(BinaryOp::Eq, Operand::Reg(b), Operand::byte(b'q'));
//! let quit = f.create_block();
//! let keep = f.create_block();
//! f.branch(Operand::Reg(is_q), quit, keep);
//! f.switch_to(quit);
//! f.ret(Some(Operand::word(1)));
//! f.switch_to(keep);
//! f.ret(Some(Operand::word(0)));
//! let main = f.finish();
//! pb.set_entry(main);
//!
//! let mut engine = Engine::new(
//!     Arc::new(pb.finish()),
//!     Arc::new(PosixEnvironment::new()),
//!     Box::new(DfsSearcher::new()),
//!     EngineConfig::default(),
//! );
//! let summary = engine.run();
//! assert_eq!(summary.paths_completed, 2);
//! # let _ = sysno::EXIT;
//! ```

mod buffers;
mod faults;
mod libc;
mod model;
pub mod nr;
mod objects;

pub use buffers::{BlockBuffer, StreamBuffer, DEFAULT_STREAM_CAPACITY};
pub use faults::FaultState;
pub use libc::{add_libc, Libc, COND_SIZE, MUTEX_SIZE};
pub use model::{PosixConfig, PosixEnvironment, PosixState};
pub use objects::{
    Datagram, FdEntry, FdFlags, FdObject, FdTable, FileSystem, Network, ObjectTables, OpenFile,
    Socket, SocketIdx, SocketKind, SocketState, StreamIdx,
};

#[cfg(test)]
mod tests;
