//! POSIX-model syscall numbers, ioctl codes, and error values.
//!
//! All numbers are ≥ [`c9_ir::Program::ENV_SYSCALL_BASE`] so the executor
//! routes them to the [`crate::PosixEnvironment`]. Engine primitives (Table 1
//! of the paper) live in [`c9_vm::sysno`].

/// `open(path_ptr, flags)` → fd or [`ERR`].
pub const OPEN: u32 = 100;
/// `close(fd)`.
pub const CLOSE: u32 = 101;
/// `read(fd, buf, len)` → bytes read, 0 at EOF, or [`ERR`].
pub const READ: u32 = 102;
/// `write(fd, buf, len)` → bytes written or [`ERR`].
pub const WRITE: u32 = 103;
/// `lseek(fd, offset, whence)` → new offset or [`ERR`].
pub const LSEEK: u32 = 104;
/// `fstat_size(fd)` → file size or [`ERR`] (simplified stat).
pub const FSTAT_SIZE: u32 = 105;
/// `dup(fd)` → new fd or [`ERR`].
pub const DUP: u32 = 106;
/// `unlink(path_ptr)`.
pub const UNLINK: u32 = 107;

/// `socket(kind)` → fd; `kind` 0 = TCP (stream), 1 = UDP (datagram).
pub const SOCKET: u32 = 110;
/// `bind(fd, port)`.
pub const BIND: u32 = 111;
/// `listen(fd, backlog)`.
pub const LISTEN: u32 = 112;
/// `accept(fd)` → connected fd (blocks until a connection arrives).
pub const ACCEPT: u32 = 113;
/// `connect(fd, port)` → 0 or [`ERR`].
pub const CONNECT: u32 = 114;
/// `send(fd, buf, len)` → bytes sent or [`ERR`].
pub const SEND: u32 = 115;
/// `recv(fd, buf, len)` → bytes received, 0 on orderly shutdown, or [`ERR`].
pub const RECV: u32 = 116;
/// `shutdown(fd)` — closes the write side of a connection.
pub const SHUTDOWN: u32 = 117;
/// `recvfrom(fd, buf, len)` — datagram receive (UDP).
pub const RECVFROM: u32 = 118;
/// `sendto(fd, buf, len, port)` — datagram send (UDP).
pub const SENDTO: u32 = 119;

/// `pipe(fds_ptr)` — writes two fds (read end, write end) to guest memory.
pub const PIPE: u32 = 120;
/// `select(nfds, readfds_ptr, writefds_ptr)` → number of ready descriptors;
/// blocks when none are ready. The fd sets are 64-bit masks in guest memory.
pub const SELECT: u32 = 121;

/// `ioctl(fd, code, arg)` — see the `SIO_*` codes below.
pub const IOCTL: u32 = 130;
/// `cloud9_fi_enable()` — enable fault injection globally (Table 2).
pub const FI_ENABLE: u32 = 131;
/// `cloud9_fi_disable()` — disable fault injection globally (Table 2).
pub const FI_DISABLE: u32 = 132;

/// `mutex`-free time source: returns a monotonically increasing counter.
pub const GETTIME: u32 = 150;
/// `mmap_anon(len)` → address of a fresh zeroed allocation (simplified mmap).
pub const MMAP_ANON: u32 = 151;
/// `getpid()` → pid of the calling process.
pub const GETPID: u32 = 152;

// ---------------------------------------------------------------------------
// Extended ioctl codes (Table 3 of the paper).
// ---------------------------------------------------------------------------

/// Turns this file or socket into a source of symbolic input. The ioctl
/// argument is the maximum number of symbolic bytes the descriptor produces.
pub const SIO_SYMBOLIC: u64 = 1;
/// Enables symbolic packet fragmentation on this (stream) descriptor: each
/// read returns a symbolically-chosen prefix of the requested length.
pub const SIO_PKT_FRAGMENT: u64 = 2;
/// Enables fault injection for operations on this descriptor.
pub const SIO_FAULT_INJ: u64 = 3;

// ---------------------------------------------------------------------------
// Return values and errno-style codes.
// ---------------------------------------------------------------------------

/// The error return value (-1 as an unsigned 64-bit pattern).
pub const ERR: u64 = u64::MAX;

/// Whence values for `lseek`.
pub const SEEK_SET: u64 = 0;
/// Seek relative to the current offset.
pub const SEEK_CUR: u64 = 1;
/// Seek relative to the end of the file.
pub const SEEK_END: u64 = 2;

/// `open` flag: create the file if it does not exist.
pub const O_CREAT: u64 = 0x40;

/// Socket kind passed to [`SOCKET`]: TCP stream socket.
pub const SOCK_STREAM: u64 = 0;
/// Socket kind passed to [`SOCKET`]: UDP datagram socket.
pub const SOCK_DGRAM: u64 = 1;
