//! Fault-injection configuration and accounting.
//!
//! §5.1 of the paper: "Calls in a POSIX system can return an error code when
//! they fail. […] Such error return codes are simulated by Cloud9 whenever
//! fault injection is turned on." Fault injection can be enabled globally
//! (`cloud9_fi_enable` / `cloud9_fi_disable`, Table 2) or per descriptor
//! (the `SIO_FAULT_INJ` ioctl, Table 3).

/// Fault-injection switches and per-path accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultState {
    /// Whether fault injection is globally enabled.
    pub global_enabled: bool,
    /// Number of faults injected along this path. The fault-injection
    /// exploration strategy of §7.3.3 favours states with fewer injected
    /// faults, which yields "one fault first, then pairs of faults, …".
    pub injected: u64,
    /// Upper bound on the number of faults injected along one path
    /// (0 = unlimited). Keeping this small bounds path explosion.
    pub max_faults_per_path: u64,
}

impl FaultState {
    /// Whether a fault may be injected for an operation on a descriptor with
    /// the given per-descriptor flag.
    pub fn should_consider(&self, fd_flag: bool) -> bool {
        if !(self.global_enabled || fd_flag) {
            return false;
        }
        self.max_faults_per_path == 0 || self.injected < self.max_faults_per_path
    }

    /// Records that a fault was injected along this path.
    pub fn record_injection(&mut self) {
        self.injected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let f = FaultState::default();
        assert!(!f.should_consider(false));
        assert!(f.should_consider(true), "per-fd flag enables injection");
    }

    #[test]
    fn global_switch() {
        let mut f = FaultState {
            global_enabled: true,
            ..FaultState::default()
        };
        assert!(f.should_consider(false));
        f.global_enabled = false;
        assert!(!f.should_consider(false));
    }

    #[test]
    fn per_path_limit() {
        let mut f = FaultState {
            global_enabled: true,
            max_faults_per_path: 2,
            ..FaultState::default()
        };
        assert!(f.should_consider(false));
        f.record_injection();
        f.record_injection();
        assert!(!f.should_consider(false));
        assert_eq!(f.injected, 2);
    }
}
