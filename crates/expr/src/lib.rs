//! Symbolic bit-vector expressions for Cloud9-RS.
//!
//! This crate provides the expression language that the symbolic execution
//! engine ([`c9-vm`](../c9_vm/index.html)) uses to represent values derived
//! from symbolic program inputs, and that the constraint solver
//! ([`c9-solver`](../c9_solver/index.html)) reasons about.
//!
//! Expressions are immutable reference-counted DAGs over fixed-width
//! bit-vectors (1 to 64 bits). Construction goes through [`Expr`]'s
//! associated functions, which perform constant folding and a set of cheap
//! algebraic simplifications so that fully-concrete computations never reach
//! the solver.
//!
//! # Examples
//!
//! ```
//! use c9_expr::{Expr, Width, SymbolManager, Assignment};
//!
//! let mut syms = SymbolManager::new();
//! let x = syms.fresh("x", Width::W8);
//! // (x + 1) == 5
//! let sum = Expr::add(Expr::sym(x, Width::W8), Expr::const_(1, Width::W8));
//! let cond = Expr::eq(sum, Expr::const_(5, Width::W8));
//!
//! let mut asg = Assignment::new();
//! asg.set(x, 4);
//! assert_eq!(cond.eval(&asg).unwrap().value(), 1);
//! ```

mod build;
mod eval;
mod expr;
mod symbol;
mod value;
mod visit;
mod width;

pub use eval::{eval_constraints, Assignment};
pub use expr::{BinaryOp, Expr, ExprKind, ExprRef, UnaryOp};
pub use symbol::{SymbolId, SymbolInfo, SymbolManager};
pub use value::ConstValue;
pub use visit::{collect_symbols, expr_depth, expr_size, substitute};
pub use width::Width;

#[cfg(test)]
mod tests;
