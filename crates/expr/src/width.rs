//! Bit-vector widths.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Width of a bit-vector expression, in bits.
///
/// Cloud9-RS supports widths from 1 to 64 bits. A handful of common widths
/// have named constructors; arbitrary widths in that range can be created
/// with [`Width::new`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Width(u8);

impl Width {
    /// A boolean (1-bit) value.
    pub const W1: Width = Width(1);
    /// A byte.
    pub const W8: Width = Width(8);
    /// A 16-bit half word.
    pub const W16: Width = Width(16);
    /// A 32-bit word.
    pub const W32: Width = Width(32);
    /// A 64-bit double word; also the width of pointers in the VM.
    pub const W64: Width = Width(64);

    /// Creates a width of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 64.
    pub fn new(bits: u32) -> Width {
        assert!((1..=64).contains(&bits), "width out of range: {bits}");
        Width(bits as u8)
    }

    /// Number of bits.
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }

    /// Number of bytes needed to store a value of this width (rounded up).
    pub fn bytes(self) -> usize {
        self.bits().div_ceil(8) as usize
    }

    /// Bit mask selecting exactly the bits of this width.
    pub fn mask(self) -> u64 {
        if self.0 == 64 {
            u64::MAX
        } else {
            (1u64 << self.0) - 1
        }
    }

    /// Truncates `value` to this width.
    pub fn truncate(self, value: u64) -> u64 {
        value & self.mask()
    }

    /// Sign-extends a value of this width to a 64-bit signed integer.
    pub fn sign_extend(self, value: u64) -> i64 {
        let v = self.truncate(value);
        let shift = 64 - self.bits();
        ((v << shift) as i64) >> shift
    }

    /// Maximum unsigned value representable in this width.
    pub fn max_unsigned(self) -> u64 {
        self.mask()
    }

    /// Maximum signed value representable in this width.
    pub fn max_signed(self) -> i64 {
        (self.mask() >> 1) as i64
    }

    /// Minimum signed value representable in this width.
    pub fn min_signed(self) -> i64 {
        -(self.max_signed() + 1)
    }
}

impl fmt::Debug for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_and_truncate() {
        assert_eq!(Width::W8.mask(), 0xff);
        assert_eq!(Width::W1.mask(), 1);
        assert_eq!(Width::W64.mask(), u64::MAX);
        assert_eq!(Width::W8.truncate(0x1ff), 0xff);
        assert_eq!(Width::new(12).mask(), 0xfff);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(Width::W8.sign_extend(0xff), -1);
        assert_eq!(Width::W8.sign_extend(0x7f), 127);
        assert_eq!(Width::W16.sign_extend(0x8000), -32768);
        assert_eq!(Width::W64.sign_extend(u64::MAX), -1);
    }

    #[test]
    fn bounds() {
        assert_eq!(Width::W8.max_unsigned(), 255);
        assert_eq!(Width::W8.max_signed(), 127);
        assert_eq!(Width::W8.min_signed(), -128);
        assert_eq!(Width::W1.max_signed(), 0);
        assert_eq!(Width::W1.min_signed(), -1);
    }

    #[test]
    fn bytes_rounding() {
        assert_eq!(Width::W1.bytes(), 1);
        assert_eq!(Width::new(9).bytes(), 2);
        assert_eq!(Width::W64.bytes(), 8);
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        Width::new(0);
    }

    #[test]
    #[should_panic]
    fn oversized_width_rejected() {
        Width::new(65);
    }
}
