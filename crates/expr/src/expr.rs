//! The expression DAG.

use crate::{ConstValue, SymbolId, Width};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Reference-counted handle to an expression node.
///
/// Expressions are immutable; sharing is achieved through `Arc` so that a
/// forked execution state can reuse the expressions of its parent without
/// copying.
pub type ExprRef = Arc<Expr>;

/// Binary operators over bit-vectors.
///
/// Comparison operators produce a 1-bit result; all other operators produce a
/// result of the same width as their operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; division by zero yields all-ones (the VM reports a
    /// division-by-zero bug before evaluating it).
    UDiv,
    /// Signed division.
    SDiv,
    /// Unsigned remainder.
    URem,
    /// Signed remainder.
    SRem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left; shift amounts ≥ width yield zero.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Equality (1-bit result).
    Eq,
    /// Inequality (1-bit result).
    Ne,
    /// Unsigned less-than (1-bit result).
    Ult,
    /// Unsigned less-or-equal (1-bit result).
    Ule,
    /// Signed less-than (1-bit result).
    Slt,
    /// Signed less-or-equal (1-bit result).
    Sle,
}

impl BinaryOp {
    /// Whether the operator is a comparison (produces a 1-bit result).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Ult
                | BinaryOp::Ule
                | BinaryOp::Slt
                | BinaryOp::Sle
        )
    }

    /// Whether the operator is commutative.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinaryOp::Add
                | BinaryOp::Mul
                | BinaryOp::And
                | BinaryOp::Or
                | BinaryOp::Xor
                | BinaryOp::Eq
                | BinaryOp::Ne
        )
    }

    /// Applies the operator to two concrete values of equal width.
    pub fn apply(self, a: ConstValue, b: ConstValue) -> ConstValue {
        debug_assert_eq!(a.width(), b.width(), "operand width mismatch in {self:?}");
        let w = a.width();
        let (ua, ub) = (a.value(), b.value());
        let (sa, sb) = (a.signed(), b.signed());
        match self {
            BinaryOp::Add => ConstValue::new(ua.wrapping_add(ub), w),
            BinaryOp::Sub => ConstValue::new(ua.wrapping_sub(ub), w),
            BinaryOp::Mul => ConstValue::new(ua.wrapping_mul(ub), w),
            BinaryOp::UDiv => ConstValue::new(ua.checked_div(ub).unwrap_or(w.mask()), w),
            BinaryOp::SDiv => ConstValue::new(
                if sb == 0 {
                    w.mask()
                } else {
                    sa.wrapping_div(sb) as u64
                },
                w,
            ),
            BinaryOp::URem => ConstValue::new(if ub == 0 { ua } else { ua % ub }, w),
            BinaryOp::SRem => ConstValue::new(
                if sb == 0 {
                    ua
                } else {
                    sa.wrapping_rem(sb) as u64
                },
                w,
            ),
            BinaryOp::And => ConstValue::new(ua & ub, w),
            BinaryOp::Or => ConstValue::new(ua | ub, w),
            BinaryOp::Xor => ConstValue::new(ua ^ ub, w),
            BinaryOp::Shl => {
                if ub >= u64::from(w.bits()) {
                    ConstValue::new(0, w)
                } else {
                    ConstValue::new(ua << ub, w)
                }
            }
            BinaryOp::LShr => {
                if ub >= u64::from(w.bits()) {
                    ConstValue::new(0, w)
                } else {
                    ConstValue::new(ua >> ub, w)
                }
            }
            BinaryOp::AShr => {
                let shift = ub.min(u64::from(w.bits()) - 1);
                ConstValue::new((sa >> shift) as u64, w)
            }
            BinaryOp::Eq => ConstValue::bool(ua == ub),
            BinaryOp::Ne => ConstValue::bool(ua != ub),
            BinaryOp::Ult => ConstValue::bool(ua < ub),
            BinaryOp::Ule => ConstValue::bool(ua <= ub),
            BinaryOp::Slt => ConstValue::bool(sa < sb),
            BinaryOp::Sle => ConstValue::bool(sa <= sb),
        }
    }
}

/// Unary operators over bit-vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Bitwise complement.
    Not,
    /// Two's complement negation.
    Neg,
}

impl UnaryOp {
    /// Applies the operator to a concrete value.
    pub fn apply(self, a: ConstValue) -> ConstValue {
        let w = a.width();
        match self {
            UnaryOp::Not => ConstValue::new(!a.value(), w),
            UnaryOp::Neg => ConstValue::new(a.value().wrapping_neg(), w),
        }
    }
}

/// The different kinds of expression nodes.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExprKind {
    /// A concrete constant.
    Const(ConstValue),
    /// A symbolic variable.
    Sym(SymbolId),
    /// A unary operation.
    Unary(UnaryOp, ExprRef),
    /// A binary operation.
    Binary(BinaryOp, ExprRef, ExprRef),
    /// If-then-else over a 1-bit condition; both arms have equal width.
    Ite(ExprRef, ExprRef, ExprRef),
    /// Zero extension to a wider width.
    ZExt(ExprRef),
    /// Sign extension to a wider width.
    SExt(ExprRef),
    /// Bit extraction: `offset` is the bit offset of the least significant
    /// extracted bit.
    Extract(ExprRef, u32),
    /// Concatenation: the first operand forms the high bits.
    Concat(ExprRef, ExprRef),
}

/// A bit-vector expression node.
///
/// Construct expressions with the associated functions in this crate (e.g.
/// [`Expr::add`], [`Expr::eq`]); they perform constant folding and light
/// simplification. The width of every node is computed at construction time
/// and cached.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Expr {
    kind: ExprKind,
    width: Width,
}

impl Expr {
    pub(crate) fn new(kind: ExprKind, width: Width) -> ExprRef {
        Arc::new(Expr { kind, width })
    }

    /// The kind of this node.
    pub fn kind(&self) -> &ExprKind {
        &self.kind
    }

    /// The width of the value this expression produces.
    pub fn width(&self) -> Width {
        self.width
    }

    /// If the expression is a constant, returns its value.
    pub fn as_const(&self) -> Option<ConstValue> {
        match self.kind {
            ExprKind::Const(v) => Some(v),
            _ => None,
        }
    }

    /// If the expression is a bare symbol, returns its identifier.
    pub fn as_sym(&self) -> Option<SymbolId> {
        match self.kind {
            ExprKind::Sym(id) => Some(id),
            _ => None,
        }
    }

    /// Whether the expression contains no symbolic variables.
    ///
    /// Because constructors constant-fold, a concrete expression is always a
    /// single `Const` node.
    pub fn is_concrete(&self) -> bool {
        matches!(self.kind, ExprKind::Const(_))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ExprKind::Const(v) => write!(f, "{}", v.value()),
            ExprKind::Sym(id) => write!(f, "{id:?}"),
            ExprKind::Unary(op, a) => write!(f, "({op:?} {a})"),
            ExprKind::Binary(op, a, b) => write!(f, "({op:?} {a} {b})"),
            ExprKind::Ite(c, t, e) => write!(f, "(Ite {c} {t} {e})"),
            ExprKind::ZExt(a) => write!(f, "(ZExt{} {a})", self.width),
            ExprKind::SExt(a) => write!(f, "(SExt{} {a})", self.width),
            ExprKind::Extract(a, off) => write!(f, "(Extract{}@{off} {a})", self.width),
            ExprKind::Concat(hi, lo) => write!(f, "(Concat {hi} {lo})"),
        }
    }
}
