//! Unit and property-based tests for the expression crate.

use crate::eval::eval_constraints;
use crate::{
    collect_symbols, expr_depth, expr_size, substitute, Assignment, BinaryOp, Expr, SymbolManager,
    Width,
};
use proptest::prelude::*;

fn mgr_with_bytes(n: usize) -> (SymbolManager, Vec<crate::SymbolId>) {
    let mut m = SymbolManager::new();
    let syms = m.fresh_bytes("in", n);
    (m, syms)
}

#[test]
fn constant_folding_collapses_concrete_math() {
    let e = Expr::add(Expr::const_(40, Width::W32), Expr::const_(2, Width::W32));
    assert_eq!(e.as_const().unwrap().value(), 42);

    let e = Expr::mul(Expr::const_(6, Width::W8), Expr::const_(7, Width::W8));
    assert_eq!(e.as_const().unwrap().value(), 42);

    let e = Expr::eq(Expr::const_(1, Width::W8), Expr::const_(2, Width::W8));
    assert!(e.as_const().unwrap().is_false());
}

#[test]
fn wrapping_semantics() {
    let e = Expr::add(Expr::const_(250, Width::W8), Expr::const_(10, Width::W8));
    assert_eq!(e.as_const().unwrap().value(), 4);
    let e = Expr::sub(Expr::const_(0, Width::W8), Expr::const_(1, Width::W8));
    assert_eq!(e.as_const().unwrap().value(), 255);
}

#[test]
fn identity_simplifications() {
    let (_, syms) = mgr_with_bytes(1);
    let x = Expr::sym(syms[0], Width::W8);
    assert_eq!(Expr::add(x.clone(), Expr::const_(0, Width::W8)), x);
    assert_eq!(Expr::mul(x.clone(), Expr::const_(1, Width::W8)), x);
    assert!(Expr::mul(x.clone(), Expr::const_(0, Width::W8))
        .as_const()
        .unwrap()
        .is_zero());
    assert_eq!(
        Expr::and(x.clone(), Expr::const_(0xff, Width::W8)),
        x.clone()
    );
    assert!(Expr::eq(x.clone(), x.clone()).as_const().unwrap().is_true());
    assert!(Expr::ult(x.clone(), x.clone())
        .as_const()
        .unwrap()
        .is_false());
}

#[test]
fn commutative_canonicalization_moves_constant_right() {
    let (_, syms) = mgr_with_bytes(1);
    let x = Expr::sym(syms[0], Width::W8);
    let a = Expr::add(Expr::const_(3, Width::W8), x.clone());
    let b = Expr::add(x, Expr::const_(3, Width::W8));
    assert_eq!(a, b);
}

#[test]
fn ite_simplification() {
    let (_, syms) = mgr_with_bytes(1);
    let x = Expr::sym(syms[0], Width::W8);
    let t = Expr::const_(1, Width::W8);
    let f = Expr::const_(2, Width::W8);
    assert_eq!(Expr::ite(Expr::true_(), t.clone(), f.clone()), t);
    assert_eq!(Expr::ite(Expr::false_(), t.clone(), f.clone()), f);
    let cond = Expr::eq(x, Expr::const_(0, Width::W8));
    assert_eq!(Expr::ite(cond, t.clone(), t.clone()), t);
}

#[test]
fn division_by_zero_is_total() {
    // The engine reports division-by-zero separately; the expression algebra
    // itself must stay total so the solver never panics.
    let e = Expr::udiv(Expr::const_(10, Width::W8), Expr::const_(0, Width::W8));
    assert_eq!(e.as_const().unwrap().value(), 0xff);
    let e = Expr::urem(Expr::const_(10, Width::W8), Expr::const_(0, Width::W8));
    assert_eq!(e.as_const().unwrap().value(), 10);
}

#[test]
fn shift_out_of_range_is_zero() {
    let e = Expr::shl(Expr::const_(1, Width::W8), Expr::const_(9, Width::W8));
    assert_eq!(e.as_const().unwrap().value(), 0);
    let e = Expr::lshr(Expr::const_(0x80, Width::W8), Expr::const_(200, Width::W8));
    assert_eq!(e.as_const().unwrap().value(), 0);
}

#[test]
fn extensions_and_extract() {
    let (_, syms) = mgr_with_bytes(1);
    let x = Expr::sym(syms[0], Width::W8);
    let z = Expr::zext(x.clone(), Width::W32);
    assert_eq!(z.width(), Width::W32);
    // Extract of zext within the original width folds back to the original.
    let low = Expr::extract(z.clone(), 0, Width::W8);
    assert_eq!(low, x);
    // Extract of zext entirely in the extension is zero.
    let hi = Expr::extract(z, 16, Width::W8);
    assert!(hi.as_const().unwrap().is_zero());
}

#[test]
fn concat_and_le_bytes_roundtrip() {
    let (_, syms) = mgr_with_bytes(4);
    let bytes: Vec<_> = syms.iter().map(|s| Expr::sym(*s, Width::W8)).collect();
    let word = Expr::from_le_bytes(&bytes);
    assert_eq!(word.width(), Width::W32);

    let mut asg = Assignment::new();
    asg.set(syms[0], 0xef);
    asg.set(syms[1], 0xbe);
    asg.set(syms[2], 0xad);
    asg.set(syms[3], 0xde);
    assert_eq!(word.eval(&asg).unwrap().value(), 0xdead_beef);

    let split = Expr::to_le_bytes(&word);
    assert_eq!(split.len(), 4);
    assert_eq!(split[0].eval(&asg).unwrap().value(), 0xef);
    assert_eq!(split[3].eval(&asg).unwrap().value(), 0xde);
}

#[test]
fn eval_respects_signedness() {
    let (_, syms) = mgr_with_bytes(1);
    let x = Expr::sym(syms[0], Width::W8);
    let is_neg = Expr::slt(x.clone(), Expr::const_(0, Width::W8));
    let mut asg = Assignment::new();
    asg.set(syms[0], 0x80);
    assert_eq!(is_neg.eval_bool(&asg), Some(true));
    asg.set(syms[0], 0x7f);
    assert_eq!(is_neg.eval_bool(&asg), Some(false));
}

#[test]
fn partial_eval_returns_none_for_unbound() {
    let (_, syms) = mgr_with_bytes(2);
    let x = Expr::sym(syms[0], Width::W8);
    let y = Expr::sym(syms[1], Width::W8);
    let sum = Expr::add(x, y);
    let mut asg = Assignment::new();
    asg.set(syms[0], 1);
    assert_eq!(sum.eval(&asg), None);
}

#[test]
fn eval_constraints_short_circuits_on_false() {
    let (_, syms) = mgr_with_bytes(2);
    let x = Expr::sym(syms[0], Width::W8);
    let y = Expr::sym(syms[1], Width::W8);
    let c1 = Expr::eq(x, Expr::const_(3, Width::W8));
    let c2 = Expr::eq(y, Expr::const_(5, Width::W8));
    let mut asg = Assignment::new();
    asg.set(syms[0], 4);
    // c1 is definitely false even though c2 is unknown.
    assert_eq!(eval_constraints(&[c1, c2], &asg), Some(false));
}

#[test]
fn symbol_collection_and_size() {
    let (_, syms) = mgr_with_bytes(3);
    let x = Expr::sym(syms[0], Width::W8);
    let y = Expr::sym(syms[1], Width::W8);
    let e = Expr::add(Expr::mul(x.clone(), y.clone()), x.clone());
    let collected = collect_symbols(&e);
    assert!(collected.contains(&syms[0]));
    assert!(collected.contains(&syms[1]));
    assert!(!collected.contains(&syms[2]));
    assert!(expr_size(&e) >= 4);
    assert!(expr_depth(&e) >= 3);
}

#[test]
fn substitution_folds_constants() {
    let (_, syms) = mgr_with_bytes(2);
    let x = Expr::sym(syms[0], Width::W8);
    let y = Expr::sym(syms[1], Width::W8);
    let e = Expr::add(Expr::mul(x, Expr::const_(2, Width::W8)), y.clone());
    let mut asg = Assignment::new();
    asg.set(syms[0], 10);
    let sub = substitute(&e, &asg);
    // Becomes 20 + y.
    let expected = Expr::add(y, Expr::const_(20, Width::W8));
    assert_eq!(sub, expected);
}

#[test]
fn logical_not_of_comparison() {
    let (_, syms) = mgr_with_bytes(1);
    let x = Expr::sym(syms[0], Width::W8);
    let cond = Expr::ult(x, Expr::const_(10, Width::W8));
    let neg = Expr::logical_not(cond.clone());
    let mut asg = Assignment::new();
    asg.set(syms[0], 5);
    assert_eq!(cond.eval_bool(&asg), Some(true));
    assert_eq!(neg.eval_bool(&asg), Some(false));
    asg.set(syms[0], 20);
    assert_eq!(neg.eval_bool(&asg), Some(true));
}

#[test]
fn display_is_readable() {
    let (_, syms) = mgr_with_bytes(1);
    let x = Expr::sym(syms[0], Width::W8);
    let e = Expr::eq(
        Expr::add(x, Expr::const_(1, Width::W8)),
        Expr::const_(5, Width::W8),
    );
    let s = format!("{e}");
    assert!(s.contains("Eq"));
    assert!(s.contains("Add"));
}

// ---------------------------------------------------------------------------
// Property-based tests: the smart constructors must agree with direct
// concrete evaluation for every operator.
// ---------------------------------------------------------------------------

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::W8),
        Just(Width::W16),
        Just(Width::W32),
        Just(Width::W64),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::UDiv),
        Just(BinaryOp::SDiv),
        Just(BinaryOp::URem),
        Just(BinaryOp::SRem),
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
        Just(BinaryOp::Xor),
        Just(BinaryOp::Shl),
        Just(BinaryOp::LShr),
        Just(BinaryOp::AShr),
        Just(BinaryOp::Eq),
        Just(BinaryOp::Ne),
        Just(BinaryOp::Ult),
        Just(BinaryOp::Ule),
        Just(BinaryOp::Slt),
        Just(BinaryOp::Sle),
    ]
}

proptest! {
    /// Folding a binary op over constants equals evaluating the symbolic
    /// form of the same op under an assignment of those constants.
    #[test]
    fn prop_fold_matches_eval(op in arb_binop(), w in arb_width(), a: u64, b: u64) {
        let folded = Expr::binary(op, Expr::const_(a, w), Expr::const_(b, w));
        let folded = folded.as_const().expect("constants must fold");

        let mut m = SymbolManager::new();
        let xa = m.fresh("a", w);
        let xb = m.fresh("b", w);
        let symbolic = Expr::binary(op, Expr::sym(xa, w), Expr::sym(xb, w));
        let mut asg = Assignment::new();
        asg.set(xa, w.truncate(a));
        asg.set(xb, w.truncate(b));
        let evaluated = symbolic.eval(&asg).expect("fully bound");
        prop_assert_eq!(folded, evaluated);
    }

    /// Substituting a full assignment into an expression produces exactly the
    /// constant that evaluation produces.
    #[test]
    fn prop_substitute_agrees_with_eval(a: u8, b: u8, c: u8) {
        let mut m = SymbolManager::new();
        let sa = m.fresh("a", Width::W8);
        let sb = m.fresh("b", Width::W8);
        let sc = m.fresh("c", Width::W8);
        let e = Expr::add(
            Expr::mul(Expr::sym(sa, Width::W8), Expr::sym(sb, Width::W8)),
            Expr::xor(Expr::sym(sc, Width::W8), Expr::const_(0x5a, Width::W8)),
        );
        let mut asg = Assignment::new();
        asg.set(sa, u64::from(a));
        asg.set(sb, u64::from(b));
        asg.set(sc, u64::from(c));
        let substituted = substitute(&e, &asg);
        prop_assert!(substituted.is_concrete());
        prop_assert_eq!(substituted.as_const().unwrap(), e.eval(&asg).unwrap());
    }

    /// from_le_bytes/to_le_bytes round-trips through evaluation.
    #[test]
    fn prop_le_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..=8)) {
        let mut m = SymbolManager::new();
        let syms = m.fresh_bytes("b", bytes.len());
        let exprs: Vec<_> = syms.iter().map(|s| Expr::sym(*s, Width::W8)).collect();
        let word = Expr::from_le_bytes(&exprs);
        let mut asg = Assignment::new();
        for (s, b) in syms.iter().zip(&bytes) {
            asg.set(*s, u64::from(*b));
        }
        let mut expected: u64 = 0;
        for (i, b) in bytes.iter().enumerate() {
            expected |= u64::from(*b) << (8 * i);
        }
        prop_assert_eq!(word.eval(&asg).unwrap().value(), expected);

        let split = Expr::to_le_bytes(&word);
        for (i, part) in split.iter().enumerate() {
            prop_assert_eq!(part.eval(&asg).unwrap().value(), u64::from(bytes[i]));
        }
    }

    /// Truncation in ConstValue matches Width::truncate.
    #[test]
    fn prop_const_truncation(v: u64, w in arb_width()) {
        let c = crate::ConstValue::new(v, w);
        prop_assert_eq!(c.value(), w.truncate(v));
        prop_assert_eq!(c.signed(), w.sign_extend(v));
    }
}
