//! Concrete bit-vector values.

use crate::Width;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete bit-vector value: a bit pattern together with its width.
///
/// The stored bits are always truncated to the width, so two equal
/// `ConstValue`s compare equal structurally.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConstValue {
    bits: u64,
    width: Width,
}

impl ConstValue {
    /// Creates a value, truncating `bits` to `width`.
    pub fn new(bits: u64, width: Width) -> ConstValue {
        ConstValue {
            bits: width.truncate(bits),
            width,
        }
    }

    /// The boolean `true` value (width 1).
    pub fn true_() -> ConstValue {
        ConstValue::new(1, Width::W1)
    }

    /// The boolean `false` value (width 1).
    pub fn false_() -> ConstValue {
        ConstValue::new(0, Width::W1)
    }

    /// Creates a boolean value from a Rust `bool`.
    pub fn bool(b: bool) -> ConstValue {
        ConstValue::new(u64::from(b), Width::W1)
    }

    /// The unsigned interpretation of the bits.
    pub fn value(self) -> u64 {
        self.bits
    }

    /// The signed (two's complement) interpretation of the bits.
    pub fn signed(self) -> i64 {
        self.width.sign_extend(self.bits)
    }

    /// The width of the value.
    pub fn width(self) -> Width {
        self.width
    }

    /// Whether this is the 1-bit value `1`.
    pub fn is_true(self) -> bool {
        self.width == Width::W1 && self.bits == 1
    }

    /// Whether this is the 1-bit value `0`.
    pub fn is_false(self) -> bool {
        self.width == Width::W1 && self.bits == 0
    }

    /// Whether the bit pattern is all zeros.
    pub fn is_zero(self) -> bool {
        self.bits == 0
    }

    /// Zero-extends (or truncates) the value to a new width.
    pub fn zext(self, width: Width) -> ConstValue {
        ConstValue::new(self.bits, width)
    }

    /// Sign-extends (or truncates) the value to a new width.
    pub fn sext(self, width: Width) -> ConstValue {
        ConstValue::new(self.signed() as u64, width)
    }

    /// Extracts `width` bits starting at bit `offset`.
    pub fn extract(self, offset: u32, width: Width) -> ConstValue {
        debug_assert!(offset + width.bits() <= self.width.bits());
        ConstValue::new(self.bits >> offset, width)
    }
}

impl fmt::Debug for ConstValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}:{}", self.bits, self.width)
    }
}

impl fmt::Display for ConstValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_on_construction() {
        let v = ConstValue::new(0x1ff, Width::W8);
        assert_eq!(v.value(), 0xff);
        assert_eq!(v.signed(), -1);
    }

    #[test]
    fn zext_and_sext() {
        let v = ConstValue::new(0x80, Width::W8);
        assert_eq!(v.zext(Width::W32).value(), 0x80);
        assert_eq!(v.sext(Width::W32).value(), 0xffff_ff80);
        assert_eq!(v.sext(Width::W32).signed(), -128);
    }

    #[test]
    fn extraction() {
        let v = ConstValue::new(0xdead_beef, Width::W32);
        assert_eq!(v.extract(0, Width::W8).value(), 0xef);
        assert_eq!(v.extract(8, Width::W8).value(), 0xbe);
        assert_eq!(v.extract(16, Width::W16).value(), 0xdead);
    }

    #[test]
    fn booleans() {
        assert!(ConstValue::true_().is_true());
        assert!(ConstValue::false_().is_false());
        assert!(ConstValue::bool(true).is_true());
        assert!(!ConstValue::bool(false).is_true());
    }
}
