//! Smart constructors with constant folding and algebraic simplification.
//!
//! Keeping expressions small at construction time is what allows the solver
//! to stay simple: any computation that only involves concrete values is
//! folded away before it ever becomes a constraint.

use crate::expr::{BinaryOp, Expr, ExprKind, ExprRef, UnaryOp};
use crate::{ConstValue, SymbolId, Width};

// Smart constructors intentionally mirror operator names (`add`, `not`, ...)
// without implementing the std operator traits: they take `ExprRef`s by
// value and return shared subtrees.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Creates a constant expression.
    pub fn const_(value: u64, width: Width) -> ExprRef {
        Expr::new(ExprKind::Const(ConstValue::new(value, width)), width)
    }

    /// Creates a constant expression from a [`ConstValue`].
    pub fn const_value(value: ConstValue) -> ExprRef {
        Expr::new(ExprKind::Const(value), value.width())
    }

    /// The 1-bit constant `1`.
    pub fn true_() -> ExprRef {
        Expr::const_(1, Width::W1)
    }

    /// The 1-bit constant `0`.
    pub fn false_() -> ExprRef {
        Expr::const_(0, Width::W1)
    }

    /// Creates a symbolic variable reference.
    pub fn sym(id: SymbolId, width: Width) -> ExprRef {
        Expr::new(ExprKind::Sym(id), width)
    }

    /// Generic binary operation constructor with folding and simplification.
    pub fn binary(op: BinaryOp, a: ExprRef, b: ExprRef) -> ExprRef {
        debug_assert_eq!(
            a.width(),
            b.width(),
            "width mismatch in {op:?}: {} vs {}",
            a.width(),
            b.width()
        );
        let result_width = if op.is_comparison() {
            Width::W1
        } else {
            a.width()
        };

        // Constant folding.
        if let (Some(ca), Some(cb)) = (a.as_const(), b.as_const()) {
            return Expr::const_value(op.apply(ca, cb));
        }

        // Canonicalize: constant on the right for commutative operators.
        let (a, b) = if op.is_commutative() && a.is_concrete() && !b.is_concrete() {
            (b, a)
        } else {
            (a, b)
        };

        // Algebraic identities.
        if let Some(simplified) = simplify_binary(op, &a, &b) {
            return simplified;
        }

        Expr::new(ExprKind::Binary(op, a, b), result_width)
    }

    /// Generic unary operation constructor.
    pub fn unary(op: UnaryOp, a: ExprRef) -> ExprRef {
        if let Some(ca) = a.as_const() {
            return Expr::const_value(op.apply(ca));
        }
        // Double negation / complement elimination.
        if let ExprKind::Unary(inner_op, inner) = a.kind() {
            if *inner_op == op {
                return inner.clone();
            }
        }
        let width = a.width();
        Expr::new(ExprKind::Unary(op, a), width)
    }

    /// Wrapping addition.
    pub fn add(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::Sub, a, b)
    }

    /// Wrapping multiplication.
    pub fn mul(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::Mul, a, b)
    }

    /// Unsigned division.
    pub fn udiv(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::UDiv, a, b)
    }

    /// Signed division.
    pub fn sdiv(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::SDiv, a, b)
    }

    /// Unsigned remainder.
    pub fn urem(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::URem, a, b)
    }

    /// Signed remainder.
    pub fn srem(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::SRem, a, b)
    }

    /// Bitwise and.
    pub fn and(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::And, a, b)
    }

    /// Bitwise or.
    pub fn or(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::Or, a, b)
    }

    /// Bitwise exclusive or.
    pub fn xor(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::Xor, a, b)
    }

    /// Logical shift left.
    pub fn shl(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::Shl, a, b)
    }

    /// Logical shift right.
    pub fn lshr(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::LShr, a, b)
    }

    /// Arithmetic shift right.
    pub fn ashr(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::AShr, a, b)
    }

    /// Equality comparison.
    pub fn eq(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::Eq, a, b)
    }

    /// Inequality comparison.
    pub fn ne(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::Ne, a, b)
    }

    /// Unsigned less-than.
    pub fn ult(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::Ult, a, b)
    }

    /// Unsigned less-or-equal.
    pub fn ule(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::Ule, a, b)
    }

    /// Signed less-than.
    pub fn slt(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::Slt, a, b)
    }

    /// Signed less-or-equal.
    pub fn sle(a: ExprRef, b: ExprRef) -> ExprRef {
        Expr::binary(BinaryOp::Sle, a, b)
    }

    /// Bitwise complement.
    pub fn not(a: ExprRef) -> ExprRef {
        Expr::unary(UnaryOp::Not, a)
    }

    /// Two's complement negation.
    pub fn neg(a: ExprRef) -> ExprRef {
        Expr::unary(UnaryOp::Neg, a)
    }

    /// Logical negation of a 1-bit expression.
    pub fn logical_not(a: ExprRef) -> ExprRef {
        debug_assert_eq!(a.width(), Width::W1);
        // not(a) on 1 bit is the same as a == 0, but `Xor 1` keeps
        // comparisons visible to the solver's pattern matching.
        Expr::xor(a, Expr::true_())
    }

    /// Logical and of two 1-bit expressions.
    pub fn logical_and(a: ExprRef, b: ExprRef) -> ExprRef {
        debug_assert_eq!(a.width(), Width::W1);
        debug_assert_eq!(b.width(), Width::W1);
        Expr::and(a, b)
    }

    /// Logical or of two 1-bit expressions.
    pub fn logical_or(a: ExprRef, b: ExprRef) -> ExprRef {
        debug_assert_eq!(a.width(), Width::W1);
        debug_assert_eq!(b.width(), Width::W1);
        Expr::or(a, b)
    }

    /// If-then-else over a 1-bit condition.
    pub fn ite(cond: ExprRef, then_e: ExprRef, else_e: ExprRef) -> ExprRef {
        debug_assert_eq!(cond.width(), Width::W1);
        debug_assert_eq!(then_e.width(), else_e.width());
        if let Some(c) = cond.as_const() {
            return if c.is_true() { then_e } else { else_e };
        }
        if then_e == else_e {
            return then_e;
        }
        let width = then_e.width();
        Expr::new(ExprKind::Ite(cond, then_e, else_e), width)
    }

    /// Zero extension to `width` (which must not be narrower than the
    /// operand; equal width is the identity).
    pub fn zext(a: ExprRef, width: Width) -> ExprRef {
        debug_assert!(width >= a.width());
        if a.width() == width {
            return a;
        }
        if let Some(c) = a.as_const() {
            return Expr::const_value(c.zext(width));
        }
        Expr::new(ExprKind::ZExt(a), width)
    }

    /// Sign extension to `width`.
    pub fn sext(a: ExprRef, width: Width) -> ExprRef {
        debug_assert!(width >= a.width());
        if a.width() == width {
            return a;
        }
        if let Some(c) = a.as_const() {
            return Expr::const_value(c.sext(width));
        }
        Expr::new(ExprKind::SExt(a), width)
    }

    /// Extracts `width` bits starting at bit `offset` (little-endian bit
    /// numbering).
    pub fn extract(a: ExprRef, offset: u32, width: Width) -> ExprRef {
        debug_assert!(offset + width.bits() <= a.width().bits());
        if offset == 0 && width == a.width() {
            return a;
        }
        if let Some(c) = a.as_const() {
            return Expr::const_value(c.extract(offset, width));
        }
        // Extract of a zero-extension that stays within the original value.
        if let ExprKind::ZExt(inner) = a.kind() {
            if offset + width.bits() <= inner.width().bits() {
                return Expr::extract(inner.clone(), offset, width);
            }
            if offset >= inner.width().bits() {
                return Expr::const_(0, width);
            }
        }
        Expr::new(ExprKind::Extract(a, offset), width)
    }

    /// Concatenates two expressions; `hi` forms the most significant bits.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the combined width exceeds 64 bits.
    pub fn concat(hi: ExprRef, lo: ExprRef) -> ExprRef {
        let total = hi.width().bits() + lo.width().bits();
        debug_assert!(total <= 64, "concat would exceed 64 bits");
        let width = Width::new(total);
        if let (Some(h), Some(l)) = (hi.as_const(), lo.as_const()) {
            let bits = (h.value() << lo.width().bits()) | l.value();
            return Expr::const_(bits, width);
        }
        // Concat of zero with anything is a zero extension.
        if let Some(h) = hi.as_const() {
            if h.is_zero() {
                return Expr::zext(lo, width);
            }
        }
        Expr::new(ExprKind::Concat(hi, lo), width)
    }

    /// Builds a little-endian integer expression from byte expressions.
    ///
    /// `bytes[0]` becomes the least significant byte. All inputs must be
    /// 8 bits wide and at most 8 bytes may be supplied.
    pub fn from_le_bytes(bytes: &[ExprRef]) -> ExprRef {
        assert!(!bytes.is_empty() && bytes.len() <= 8);
        let mut acc = bytes[bytes.len() - 1].clone();
        for b in bytes[..bytes.len() - 1].iter().rev() {
            acc = Expr::concat(acc, b.clone());
        }
        acc
    }

    /// Splits an expression into little-endian byte expressions.
    pub fn to_le_bytes(e: &ExprRef) -> Vec<ExprRef> {
        let nbytes = e.width().bytes();
        (0..nbytes)
            .map(|i| Expr::extract(e.clone(), (i * 8) as u32, Width::W8))
            .collect()
    }
}

/// Algebraic identities for binary operators. Returns `None` when no
/// simplification applies.
fn simplify_binary(op: BinaryOp, a: &ExprRef, b: &ExprRef) -> Option<ExprRef> {
    let bw = a.width();
    let b_const = b.as_const();
    match op {
        BinaryOp::Add
        | BinaryOp::Sub
        | BinaryOp::Or
        | BinaryOp::Xor
        | BinaryOp::Shl
        | BinaryOp::LShr
        | BinaryOp::AShr
            if b_const.is_some_and(|c| c.is_zero()) =>
        {
            return Some(a.clone());
        }
        BinaryOp::Mul => {
            if let Some(c) = b_const {
                if c.is_zero() {
                    return Some(Expr::const_(0, bw));
                }
                if c.value() == 1 {
                    return Some(a.clone());
                }
            }
        }
        BinaryOp::And => {
            if let Some(c) = b_const {
                if c.is_zero() {
                    return Some(Expr::const_(0, bw));
                }
                if c.value() == bw.mask() {
                    return Some(a.clone());
                }
            }
        }
        BinaryOp::UDiv if b_const.is_some_and(|c| c.value() == 1) => {
            return Some(a.clone());
        }
        BinaryOp::Eq => {
            if a == b {
                return Some(Expr::true_());
            }
            // `(x == true) -> x` and `(x == false) -> !x` for booleans.
            if bw == Width::W1 {
                if let Some(c) = b_const {
                    return Some(if c.is_true() {
                        a.clone()
                    } else {
                        Expr::logical_not(a.clone())
                    });
                }
            }
            // Structural decomposition against constants: splitting an
            // equality over a concatenation (or extension) into byte-level
            // equalities is what keeps protocol "magic value" checks cheap
            // for the solver.
            if let Some(c) = b_const {
                match a.kind() {
                    ExprKind::Concat(hi, lo) => {
                        let lo_bits = lo.width().bits();
                        let lo_val = c.value() & lo.width().mask();
                        let hi_val = c.value() >> lo_bits;
                        return Some(Expr::and(
                            Expr::eq(hi.clone(), Expr::const_(hi_val, hi.width())),
                            Expr::eq(lo.clone(), Expr::const_(lo_val, lo.width())),
                        ));
                    }
                    ExprKind::ZExt(inner) => {
                        if c.value() > inner.width().max_unsigned() {
                            return Some(Expr::false_());
                        }
                        return Some(Expr::eq(
                            inner.clone(),
                            Expr::const_(c.value(), inner.width()),
                        ));
                    }
                    ExprKind::SExt(inner) => {
                        let trunc = inner.width().truncate(c.value());
                        let back = ConstValue::new(trunc, inner.width()).sext(bw);
                        if back.value() == c.value() {
                            return Some(Expr::eq(
                                inner.clone(),
                                Expr::const_(trunc, inner.width()),
                            ));
                        }
                        return Some(Expr::false_());
                    }
                    _ => {}
                }
            }
        }
        BinaryOp::Ne => {
            if a == b {
                return Some(Expr::false_());
            }
            if let Some(c) = b_const {
                match a.kind() {
                    ExprKind::Concat(hi, lo) => {
                        let lo_bits = lo.width().bits();
                        let lo_val = c.value() & lo.width().mask();
                        let hi_val = c.value() >> lo_bits;
                        return Some(Expr::or(
                            Expr::ne(hi.clone(), Expr::const_(hi_val, hi.width())),
                            Expr::ne(lo.clone(), Expr::const_(lo_val, lo.width())),
                        ));
                    }
                    ExprKind::ZExt(inner) => {
                        if c.value() > inner.width().max_unsigned() {
                            return Some(Expr::true_());
                        }
                        return Some(Expr::ne(
                            inner.clone(),
                            Expr::const_(c.value(), inner.width()),
                        ));
                    }
                    _ => {}
                }
            }
        }
        BinaryOp::Ult => {
            if a == b {
                return Some(Expr::false_());
            }
            if b_const.is_some_and(|c| c.is_zero()) {
                return Some(Expr::false_());
            }
        }
        BinaryOp::Ule => {
            if a == b {
                return Some(Expr::true_());
            }
            if b_const.is_some_and(|c| c.value() == bw.mask()) {
                return Some(Expr::true_());
            }
        }
        BinaryOp::Slt if a == b => {
            return Some(Expr::false_());
        }
        BinaryOp::Sle if a == b => {
            return Some(Expr::true_());
        }
        _ => {}
    }
    None
}
