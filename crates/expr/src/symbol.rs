//! Symbolic variables and their registry.

use crate::Width;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a symbolic variable.
///
/// Symbol identifiers are allocated by a [`SymbolManager`]; the execution
/// state carries one manager per path so that symbol identifiers are
/// deterministic across job replays (see the "broken replays" discussion in
/// §6 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// The raw index of this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Metadata recorded for each symbolic variable.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolInfo {
    /// Identifier of the symbol.
    pub id: SymbolId,
    /// Human-readable name, e.g. `"packet0[3]"`.
    pub name: String,
    /// Width of the symbol.
    pub width: Width,
}

/// Allocator and registry of symbolic variables.
///
/// Each execution state owns its own manager so that the n-th symbol created
/// along a path always receives the same identifier, which is required for
/// deterministic job replay on a different worker.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolManager {
    symbols: Vec<SymbolInfo>,
}

impl SymbolManager {
    /// Creates an empty manager.
    pub fn new() -> SymbolManager {
        SymbolManager::default()
    }

    /// Allocates a fresh symbol with the given name and width.
    pub fn fresh(&mut self, name: &str, width: Width) -> SymbolId {
        let id = SymbolId(self.symbols.len() as u32);
        self.symbols.push(SymbolInfo {
            id,
            name: name.to_string(),
            width,
        });
        id
    }

    /// Allocates `count` fresh byte-wide symbols named `name[0..count]`.
    pub fn fresh_bytes(&mut self, name: &str, count: usize) -> Vec<SymbolId> {
        (0..count)
            .map(|i| self.fresh(&format!("{name}[{i}]"), Width::W8))
            .collect()
    }

    /// Looks up the metadata of a symbol.
    pub fn info(&self, id: SymbolId) -> Option<&SymbolInfo> {
        self.symbols.get(id.index())
    }

    /// Number of symbols allocated so far.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether no symbols have been allocated.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Iterates over all allocated symbols in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = &SymbolInfo> {
        self.symbols.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_symbols_are_sequential() {
        let mut m = SymbolManager::new();
        let a = m.fresh("a", Width::W8);
        let b = m.fresh("b", Width::W32);
        assert_eq!(a, SymbolId(0));
        assert_eq!(b, SymbolId(1));
        assert_eq!(m.info(a).unwrap().name, "a");
        assert_eq!(m.info(b).unwrap().width, Width::W32);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn fresh_bytes_names() {
        let mut m = SymbolManager::new();
        let bytes = m.fresh_bytes("pkt", 3);
        assert_eq!(bytes.len(), 3);
        assert_eq!(m.info(bytes[2]).unwrap().name, "pkt[2]");
        assert_eq!(m.info(bytes[2]).unwrap().width, Width::W8);
    }

    #[test]
    fn cloned_manager_is_deterministic() {
        let mut m = SymbolManager::new();
        m.fresh("a", Width::W8);
        let mut clone = m.clone();
        let x = m.fresh("x", Width::W8);
        let y = clone.fresh("x", Width::W8);
        // Two forked states allocating the next symbol get the same id.
        assert_eq!(x, y);
    }
}
