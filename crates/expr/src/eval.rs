//! Evaluation of expressions under (partial) assignments.

use crate::expr::{Expr, ExprKind, ExprRef};
use crate::{ConstValue, SymbolId, Width};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A (possibly partial) assignment of concrete values to symbolic variables.
///
/// The solver produces total assignments over the symbols of a constraint set
/// (a *model*); during its search it evaluates constraints under partial
/// assignments to prune the search space early.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    values: BTreeMap<SymbolId, u64>,
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Binds `sym` to `value`.
    pub fn set(&mut self, sym: SymbolId, value: u64) {
        self.values.insert(sym, value);
    }

    /// Removes the binding for `sym`.
    pub fn unset(&mut self, sym: SymbolId) {
        self.values.remove(&sym);
    }

    /// Looks up the value bound to `sym`.
    pub fn get(&self, sym: SymbolId) -> Option<u64> {
        self.values.get(&sym).copied()
    }

    /// Number of bound symbols.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the assignment binds no symbols.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over all bindings in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, u64)> + '_ {
        self.values.iter().map(|(k, v)| (*k, *v))
    }
}

impl FromIterator<(SymbolId, u64)> for Assignment {
    fn from_iter<T: IntoIterator<Item = (SymbolId, u64)>>(iter: T) -> Assignment {
        Assignment {
            values: iter.into_iter().collect(),
        }
    }
}

impl Expr {
    /// Evaluates the expression under `assignment`.
    ///
    /// Returns `None` if the expression references a symbol that the
    /// assignment does not bind (partial evaluation may still succeed if the
    /// unbound symbol does not influence the result, e.g. in a short-circuit
    /// `Ite` whose condition is concrete).
    pub fn eval(&self, assignment: &Assignment) -> Option<ConstValue> {
        match self.kind() {
            ExprKind::Const(v) => Some(*v),
            ExprKind::Sym(id) => assignment
                .get(*id)
                .map(|raw| ConstValue::new(raw, self.width())),
            ExprKind::Unary(op, a) => a.eval(assignment).map(|v| op.apply(v)),
            ExprKind::Binary(op, a, b) => {
                let va = a.eval(assignment)?;
                let vb = b.eval(assignment)?;
                Some(op.apply(va, vb))
            }
            ExprKind::Ite(c, t, e) => {
                let vc = c.eval(assignment)?;
                if vc.is_true() {
                    t.eval(assignment)
                } else {
                    e.eval(assignment)
                }
            }
            ExprKind::ZExt(a) => a.eval(assignment).map(|v| v.zext(self.width())),
            ExprKind::SExt(a) => a.eval(assignment).map(|v| v.sext(self.width())),
            ExprKind::Extract(a, offset) => {
                a.eval(assignment).map(|v| v.extract(*offset, self.width()))
            }
            ExprKind::Concat(hi, lo) => {
                let vh = hi.eval(assignment)?;
                let vl = lo.eval(assignment)?;
                let bits = (vh.value() << lo.width().bits()) | vl.value();
                Some(ConstValue::new(bits, self.width()))
            }
        }
    }

    /// Evaluates a 1-bit expression to a boolean under `assignment`.
    pub fn eval_bool(&self, assignment: &Assignment) -> Option<bool> {
        debug_assert_eq!(self.width(), Width::W1);
        self.eval(assignment).map(|v| v.is_true())
    }
}

/// Convenience: evaluates a slice of 1-bit constraints, returning `Some(true)`
/// only if every constraint evaluates to true, `Some(false)` if any evaluates
/// to false, and `None` if the outcome cannot be determined (some constraint
/// is not fully bound and none is definitely false).
pub fn eval_constraints(constraints: &[ExprRef], assignment: &Assignment) -> Option<bool> {
    let mut all_known = true;
    for c in constraints {
        match c.eval_bool(assignment) {
            Some(false) => return Some(false),
            Some(true) => {}
            None => all_known = false,
        }
    }
    if all_known {
        Some(true)
    } else {
        None
    }
}
