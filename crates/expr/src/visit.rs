//! Traversals over expression DAGs: symbol collection, substitution, sizing.

use crate::expr::{Expr, ExprKind, ExprRef};
use crate::{Assignment, SymbolId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Collects the set of symbols referenced by `expr` into `out`.
pub fn collect_symbols_into(expr: &ExprRef, out: &mut BTreeSet<SymbolId>) {
    // Iterative DFS with a visited set keyed on node address, so shared
    // sub-DAGs are visited once.
    let mut visited: HashSet<*const Expr> = HashSet::new();
    let mut stack: Vec<&ExprRef> = vec![expr];
    while let Some(e) = stack.pop() {
        if !visited.insert(std::sync::Arc::as_ptr(e)) {
            continue;
        }
        match e.kind() {
            ExprKind::Const(_) => {}
            ExprKind::Sym(id) => {
                out.insert(*id);
            }
            ExprKind::Unary(_, a)
            | ExprKind::ZExt(a)
            | ExprKind::SExt(a)
            | ExprKind::Extract(a, _) => stack.push(a),
            ExprKind::Binary(_, a, b) | ExprKind::Concat(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            ExprKind::Ite(c, t, f) => {
                stack.push(c);
                stack.push(t);
                stack.push(f);
            }
        }
    }
}

/// Returns the set of symbols referenced by `expr`.
pub fn collect_symbols(expr: &ExprRef) -> BTreeSet<SymbolId> {
    let mut out = BTreeSet::new();
    collect_symbols_into(expr, &mut out);
    out
}

/// Number of nodes in the expression, counting shared nodes once.
pub fn expr_size(expr: &ExprRef) -> usize {
    let mut visited: HashSet<*const Expr> = HashSet::new();
    let mut stack: Vec<&ExprRef> = vec![expr];
    let mut count = 0;
    while let Some(e) = stack.pop() {
        if !visited.insert(std::sync::Arc::as_ptr(e)) {
            continue;
        }
        count += 1;
        match e.kind() {
            ExprKind::Const(_) | ExprKind::Sym(_) => {}
            ExprKind::Unary(_, a)
            | ExprKind::ZExt(a)
            | ExprKind::SExt(a)
            | ExprKind::Extract(a, _) => stack.push(a),
            ExprKind::Binary(_, a, b) | ExprKind::Concat(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            ExprKind::Ite(c, t, f) => {
                stack.push(c);
                stack.push(t);
                stack.push(f);
            }
        }
    }
    count
}

/// Depth of the expression tree (a single node has depth 1).
pub fn expr_depth(expr: &ExprRef) -> usize {
    fn go(e: &ExprRef, memo: &mut HashMap<*const Expr, usize>) -> usize {
        let key = std::sync::Arc::as_ptr(e);
        if let Some(&d) = memo.get(&key) {
            return d;
        }
        let d = 1 + match e.kind() {
            ExprKind::Const(_) | ExprKind::Sym(_) => 0,
            ExprKind::Unary(_, a)
            | ExprKind::ZExt(a)
            | ExprKind::SExt(a)
            | ExprKind::Extract(a, _) => go(a, memo),
            ExprKind::Binary(_, a, b) | ExprKind::Concat(a, b) => go(a, memo).max(go(b, memo)),
            ExprKind::Ite(c, t, f) => go(c, memo).max(go(t, memo)).max(go(f, memo)),
        };
        memo.insert(key, d);
        d
    }
    go(expr, &mut HashMap::new())
}

/// Substitutes the symbols bound in `assignment` with their concrete values,
/// re-simplifying along the way. Unbound symbols are left in place.
pub fn substitute(expr: &ExprRef, assignment: &Assignment) -> ExprRef {
    fn go(e: &ExprRef, asg: &Assignment, memo: &mut HashMap<*const Expr, ExprRef>) -> ExprRef {
        let key = std::sync::Arc::as_ptr(e);
        if let Some(cached) = memo.get(&key) {
            return cached.clone();
        }
        let result = match e.kind() {
            ExprKind::Const(_) => e.clone(),
            ExprKind::Sym(id) => match asg.get(*id) {
                Some(v) => Expr::const_(v, e.width()),
                None => e.clone(),
            },
            ExprKind::Unary(op, a) => Expr::unary(*op, go(a, asg, memo)),
            ExprKind::Binary(op, a, b) => Expr::binary(*op, go(a, asg, memo), go(b, asg, memo)),
            ExprKind::Ite(c, t, f) => {
                Expr::ite(go(c, asg, memo), go(t, asg, memo), go(f, asg, memo))
            }
            ExprKind::ZExt(a) => Expr::zext(go(a, asg, memo), e.width()),
            ExprKind::SExt(a) => Expr::sext(go(a, asg, memo), e.width()),
            ExprKind::Extract(a, offset) => Expr::extract(go(a, asg, memo), *offset, e.width()),
            ExprKind::Concat(hi, lo) => Expr::concat(go(hi, asg, memo), go(lo, asg, memo)),
        };
        memo.insert(key, result.clone());
        result
    }
    go(expr, assignment, &mut HashMap::new())
}
