//! Independence slicing of constraint sets.
//!
//! Two constraints are *dependent* if they share a symbol (directly or
//! transitively through other constraints). A query only needs the
//! constraints that are dependent on the symbols it mentions; the rest of the
//! path condition cannot influence the answer. This mirrors the independent
//! constraint-set optimization in KLEE, on which Cloud9 builds.

use crate::ConstraintSet;
use c9_expr::{collect_symbols, ExprRef, SymbolId};
use std::collections::{BTreeSet, HashMap};

/// Union-find over symbol identifiers.
struct UnionFind {
    parent: HashMap<SymbolId, SymbolId>,
}

impl UnionFind {
    fn new() -> UnionFind {
        UnionFind {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, x: SymbolId) -> SymbolId {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: SymbolId, b: SymbolId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Splits a constraint set into groups of mutually dependent constraints.
///
/// Constraints that reference no symbols at all (which normally cannot occur,
/// since such constraints fold to constants) are placed in their own group.
pub fn independent_groups(set: &ConstraintSet) -> Vec<Vec<ExprRef>> {
    let mut uf = UnionFind::new();
    let mut per_constraint_syms: Vec<BTreeSet<SymbolId>> = Vec::with_capacity(set.len());
    for c in set.iter() {
        let syms = collect_symbols(c);
        let mut it = syms.iter();
        if let Some(first) = it.next() {
            for s in it {
                uf.union(*first, *s);
            }
        }
        per_constraint_syms.push(syms);
    }

    let mut groups: HashMap<Option<SymbolId>, Vec<ExprRef>> = HashMap::new();
    for (c, syms) in set.iter().zip(&per_constraint_syms) {
        let key = syms.iter().next().map(|s| uf.find(*s));
        groups.entry(key).or_default().push(c.clone());
    }
    let mut result: Vec<Vec<ExprRef>> = groups.into_values().collect();
    // Deterministic ordering: by the smallest symbol mentioned in the group.
    result.sort_by_key(|group| {
        group
            .iter()
            .flat_map(collect_symbols)
            .min()
            .map(|s| s.0)
            .unwrap_or(u32::MAX)
    });
    result
}

/// Returns the constraints of `set` that are (transitively) dependent on any
/// of `query_symbols`, i.e. the slice that is sufficient to answer a query
/// over those symbols.
pub fn relevant_constraints(
    set: &ConstraintSet,
    query_symbols: &BTreeSet<SymbolId>,
) -> Vec<ExprRef> {
    if query_symbols.is_empty() {
        return Vec::new();
    }
    // Fixpoint: grow the symbol closure until no constraint adds new symbols.
    let mut closure: BTreeSet<SymbolId> = query_symbols.clone();
    let per_constraint: Vec<(ExprRef, BTreeSet<SymbolId>)> = set
        .iter()
        .map(|c| (c.clone(), collect_symbols(c)))
        .collect();
    let mut included = vec![false; per_constraint.len()];
    loop {
        let mut changed = false;
        for (i, (_, syms)) in per_constraint.iter().enumerate() {
            if included[i] {
                continue;
            }
            if syms.iter().any(|s| closure.contains(s)) {
                included[i] = true;
                for s in syms {
                    if closure.insert(*s) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    per_constraint
        .into_iter()
        .zip(included)
        .filter_map(|((c, _), inc)| if inc { Some(c) } else { None })
        .collect()
}
