//! Unit and property-based tests for the solver.

use crate::{
    classify, independent_groups, relevant_constraints, BitBlastBackend, CacheSlice, ConstraintSet,
    QueryCache, QueryClass, SatResult, SearchBudget, SearchOutcome, ShardedQueryCache, SliceEntry,
    Solver, SolverBackend, SolverBackendKind, SolverConfig, Validity,
};
use c9_expr::{collect_symbols, Assignment, Expr, ExprRef, SymbolId, SymbolManager, Width};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn byte(sym: SymbolId) -> ExprRef {
    Expr::sym(sym, Width::W8)
}

#[test]
fn empty_set_is_sat() {
    let solver = Solver::new();
    let pc = ConstraintSet::new();
    assert!(solver.check_sat(&pc).is_sat());
}

#[test]
fn single_equality_gives_exact_model() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::eq(byte(x), Expr::const_(42, Width::W8)));
    let solver = Solver::new();
    let model = solver.get_model(&pc).expect("sat");
    assert_eq!(model.get(x), Some(42));
}

#[test]
fn contradiction_is_unsat() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::eq(byte(x), Expr::const_(1, Width::W8)));
    pc.push(Expr::eq(byte(x), Expr::const_(2, Width::W8)));
    let solver = Solver::new();
    assert!(solver.check_sat(&pc).is_unsat());
}

#[test]
fn range_constraints_produce_in_range_model() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::ult(byte(x), Expr::const_(100, Width::W8)));
    pc.push(Expr::ult(Expr::const_(90, Width::W8), byte(x)));
    let solver = Solver::new();
    let model = solver.get_model(&pc).expect("sat");
    let v = model.get(x).unwrap();
    assert!(v > 90 && v < 100, "got {v}");
}

#[test]
fn arithmetic_relation_between_symbols() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let y = m.fresh("y", Width::W8);
    // x + y == 10 and x > y.
    let mut pc = ConstraintSet::new();
    pc.push(Expr::eq(
        Expr::add(byte(x), byte(y)),
        Expr::const_(10, Width::W8),
    ));
    pc.push(Expr::ult(byte(y), byte(x)));
    let solver = Solver::new();
    let model = solver.get_model(&pc).expect("sat");
    let (vx, vy) = (model.get(x).unwrap(), model.get(y).unwrap());
    assert_eq!((vx + vy) & 0xff, 10);
    assert!(vy < vx);
}

#[test]
fn unsat_over_full_byte_domain_is_proved() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    // x*2 == 1 has no solution modulo 256 (left side is always even).
    let mut pc = ConstraintSet::new();
    pc.push(Expr::eq(
        Expr::mul(byte(x), Expr::const_(2, Width::W8)),
        Expr::const_(1, Width::W8),
    ));
    let solver = Solver::new();
    assert!(solver.check_sat(&pc).is_unsat());
}

#[test]
fn may_and_must_be_true() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::ult(byte(x), Expr::const_(10, Width::W8)));
    let solver = Solver::new();

    // x < 20 must hold; x < 5 may hold but need not.
    assert!(solver.must_be_true(&pc, Expr::ult(byte(x), Expr::const_(20, Width::W8))));
    assert!(solver.may_be_true(&pc, Expr::ult(byte(x), Expr::const_(5, Width::W8))));
    assert!(!solver.must_be_true(&pc, Expr::ult(byte(x), Expr::const_(5, Width::W8))));
    // x >= 10 contradicts the constraints.
    assert!(!solver.may_be_true(&pc, Expr::ule(Expr::const_(10, Width::W8), byte(x))));
}

#[test]
fn validity_classification() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::eq(byte(x), Expr::const_(7, Width::W8)));
    let solver = Solver::new();
    assert_eq!(
        solver.validity(&pc, Expr::eq(byte(x), Expr::const_(7, Width::W8))),
        Validity::True
    );
    assert_eq!(
        solver.validity(&pc, Expr::eq(byte(x), Expr::const_(8, Width::W8))),
        Validity::False
    );

    let mut pc2 = ConstraintSet::new();
    pc2.push(Expr::ult(byte(x), Expr::const_(10, Width::W8)));
    assert_eq!(
        solver.validity(&pc2, Expr::eq(byte(x), Expr::const_(3, Width::W8))),
        Validity::Unknown
    );
}

#[test]
fn get_value_concretizes() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::eq(byte(x), Expr::const_(99, Width::W8)));
    let solver = Solver::new();
    let doubled = Expr::mul(byte(x), Expr::const_(2, Width::W8));
    assert_eq!(solver.get_value(&pc, &doubled), Some(198));
    assert_eq!(solver.get_value(&pc, &Expr::const_(5, Width::W32)), Some(5));
}

#[test]
fn wide_symbol_with_bounds() {
    let mut m = SymbolManager::new();
    let n = m.fresh("n", Width::W32);
    let ne = Expr::sym(n, Width::W32);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::ult(ne.clone(), Expr::const_(1000, Width::W32)));
    pc.push(Expr::ult(Expr::const_(500, Width::W32), ne.clone()));
    let solver = Solver::new();
    let model = solver.get_model(&pc).expect("sat");
    let v = model.get(n).unwrap();
    assert!(v > 500 && v < 1000);
}

#[test]
fn multi_byte_word_comparison() {
    // A 32-bit value assembled from 4 symbolic bytes, compared to a magic
    // constant — the typical protocol-parsing constraint shape.
    let mut m = SymbolManager::new();
    let bytes = m.fresh_bytes("hdr", 4);
    let exprs: Vec<_> = bytes.iter().map(|b| byte(*b)).collect();
    let word = Expr::from_le_bytes(&exprs);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::eq(word, Expr::const_(0x1234_5678, Width::W32)));
    let solver = Solver::new();
    let model = solver.get_model(&pc).expect("sat");
    assert_eq!(model.get(bytes[0]), Some(0x78));
    assert_eq!(model.get(bytes[1]), Some(0x56));
    assert_eq!(model.get(bytes[2]), Some(0x34));
    assert_eq!(model.get(bytes[3]), Some(0x12));
}

#[test]
fn caches_report_hits() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::ult(byte(x), Expr::const_(10, Width::W8)));
    let solver = Solver::new();
    assert!(solver.check_sat(&pc).is_sat());
    assert!(solver.check_sat(&pc).is_sat());
    let stats = solver.stats();
    assert!(stats.query_cache_hits + stats.model_cache_hits >= 1);
    assert!(stats.cache_hit_rate() > 0.0);
}

#[test]
fn clearing_caches_forces_research() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::eq(byte(x), Expr::const_(3, Width::W8)));
    let solver = Solver::new();
    assert!(solver.check_sat(&pc).is_sat());
    let searches_before = solver.stats().searches;
    solver.clear_caches();
    assert!(solver.check_sat(&pc).is_sat());
    assert!(solver.stats().searches > searches_before);
}

#[test]
fn disabled_caches_still_correct() {
    let config = SolverConfig {
        enable_model_cache: false,
        enable_query_cache: false,
        ..SolverConfig::default()
    };
    let solver = Solver::with_config(config);
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::eq(byte(x), Expr::const_(200, Width::W8)));
    assert_eq!(solver.get_model(&pc).unwrap().get(x), Some(200));
    assert_eq!(solver.stats().query_cache_hits, 0);
    assert_eq!(solver.stats().model_cache_hits, 0);
}

#[test]
fn trivially_false_set() {
    let mut pc = ConstraintSet::new();
    pc.push(Expr::false_());
    assert!(pc.is_trivially_false());
    let solver = Solver::new();
    assert!(solver.check_sat(&pc).is_unsat());
}

#[test]
fn independence_groups_split_unrelated_symbols() {
    let mut m = SymbolManager::new();
    let a = m.fresh("a", Width::W8);
    let b = m.fresh("b", Width::W8);
    let c = m.fresh("c", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::ult(byte(a), Expr::const_(5, Width::W8)));
    pc.push(Expr::ult(byte(b), byte(c)));
    pc.push(Expr::ult(byte(c), Expr::const_(100, Width::W8)));
    let groups = independent_groups(&pc);
    assert_eq!(groups.len(), 2);
    let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
    assert!(sizes.contains(&1) && sizes.contains(&2));
}

#[test]
fn relevant_constraints_slices_by_query_symbols() {
    let mut m = SymbolManager::new();
    let a = m.fresh("a", Width::W8);
    let b = m.fresh("b", Width::W8);
    let c = m.fresh("c", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::ult(byte(a), Expr::const_(5, Width::W8)));
    pc.push(Expr::ult(byte(b), byte(c)));
    let query = Expr::eq(byte(a), Expr::const_(1, Width::W8));
    let relevant = relevant_constraints(&pc, &collect_symbols(&query));
    assert_eq!(relevant.len(), 1);
    assert_eq!(collect_symbols(&relevant[0]).len(), 1);
}

#[test]
fn relevant_constraints_follow_transitive_dependencies() {
    let mut m = SymbolManager::new();
    let a = m.fresh("a", Width::W8);
    let b = m.fresh("b", Width::W8);
    let c = m.fresh("c", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::ult(byte(a), byte(b)));
    pc.push(Expr::ult(byte(b), byte(c)));
    let query = Expr::eq(byte(a), Expr::const_(1, Width::W8));
    let relevant = relevant_constraints(&pc, &collect_symbols(&query));
    // Both constraints are needed: a relates to b, b relates to c.
    assert_eq!(relevant.len(), 2);
}

#[test]
fn sliced_query_still_respects_sliced_group_consistency() {
    // Unsatisfiable subgroup unrelated to the query must not block a
    // feasibility answer about an unrelated symbol... but an unsat *related*
    // group must.
    let mut m = SymbolManager::new();
    let a = m.fresh("a", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::ult(byte(a), Expr::const_(5, Width::W8)));
    pc.push(Expr::ult(Expr::const_(10, Width::W8), byte(a)));
    let solver = Solver::new();
    // The whole set is unsat, so nothing may be true over it.
    assert!(!solver.may_be_true(&pc, Expr::eq(byte(a), Expr::const_(1, Width::W8))));
}

#[test]
fn string_match_constraints() {
    // Model the "GET " prefix check that HTTP-like parsers perform.
    let mut m = SymbolManager::new();
    let req = m.fresh_bytes("req", 4);
    let mut pc = ConstraintSet::new();
    for (i, ch) in b"GET ".iter().enumerate() {
        pc.push(Expr::eq(
            byte(req[i]),
            Expr::const_(u64::from(*ch), Width::W8),
        ));
    }
    let solver = Solver::new();
    let model = solver.get_model(&pc).expect("sat");
    let recovered: Vec<u8> = req.iter().map(|s| model.get(*s).unwrap() as u8).collect();
    assert_eq!(&recovered, b"GET ");
}

/// The solver must be shareable across executor threads.
#[test]
fn solver_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Solver>();
}

fn pin_constraint(sym: SymbolId, value: u64) -> ExprRef {
    Expr::eq(byte(sym), Expr::const_(value, Width::W8))
}

#[test]
fn query_cache_eviction_keeps_hot_entries() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let mut cache = QueryCache::new(8);
    // Fill to capacity with 8 distinct single-constraint queries.
    for v in 0..8u64 {
        cache.insert(&[pin_constraint(x, v)], None, true, None);
    }
    assert_eq!(cache.len(), 8);
    // Touch the first four: their reference bits mark them hot.
    for v in 0..4u64 {
        assert!(cache.get(&[pin_constraint(x, v)], None, true).is_some());
    }
    // Overflow: a segmented second-chance sweep must free one segment
    // (capacity/8 = 1 entry here) without dropping the whole cache.
    cache.insert(&[pin_constraint(x, 8)], None, false, None);
    assert!(cache.len() <= 8, "capacity exceeded: {}", cache.len());
    assert!(
        cache.len() >= 7,
        "wholesale eviction happened: only {} entries survived",
        cache.len()
    );
    assert!(cache.evictions() >= 1);
    // Every hot entry survived the sweep (the cold tail was evicted first).
    for v in 0..4u64 {
        assert!(
            cache.get(&[pin_constraint(x, v)], None, true).is_some(),
            "hot entry {v} was evicted"
        );
    }
    // The newly inserted entry is present with its recorded answer.
    assert_eq!(
        cache.get(&[pin_constraint(x, 8)], None, true),
        Some((false, None))
    );
}

#[test]
fn query_cache_eviction_boundary_exact_capacity() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let mut cache = QueryCache::new(4);
    // Inserting exactly `capacity` entries must not evict anything.
    for v in 0..4u64 {
        cache.insert(&[pin_constraint(x, v)], None, true, None);
    }
    assert_eq!(cache.len(), 4);
    assert_eq!(cache.evictions(), 0);
    // Re-inserting an existing key updates in place: still no eviction.
    cache.insert(&[pin_constraint(x, 0)], None, true, None);
    assert_eq!(cache.len(), 4);
    assert_eq!(cache.evictions(), 0);
    // The first insert past capacity triggers exactly one segment sweep.
    cache.insert(&[pin_constraint(x, 99)], None, true, None);
    assert!(cache.len() <= 4);
    assert!(cache.evictions() >= 1);
}

#[test]
fn query_cache_survives_sustained_overflow() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let y = m.fresh("y", Width::W8);
    let mut cache = QueryCache::new(16);
    // One pinned-hot entry, kept alive by touching it between inserts.
    let hot = [pin_constraint(x, 255)];
    cache.insert(&hot, None, true, None);
    for v in 0..200u64 {
        cache.insert(&[pin_constraint(y, v % 251)], None, v % 2 == 0, None);
        assert!(
            cache.get(&hot, None, true).is_some(),
            "hot entry lost at {v}"
        );
        assert!(cache.len() <= 16);
    }
}

#[test]
fn concurrent_solver_preserves_stats_and_cache_monotonicity() {
    let solver = Solver::new();
    const THREADS: u64 = 8;
    const REPEATS: u64 = 50;
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let y = m.fresh("y", Width::W8);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let solver = &solver;
            let mut pc = ConstraintSet::new();
            // Every thread shares one constraint (cache-hot across threads)
            // and adds a private one (cache-cold on first use).
            pc.push(Expr::ult(byte(x), Expr::const_(200, Width::W8)));
            pc.push(pin_constraint(y, t));
            scope.spawn(move || {
                for _ in 0..REPEATS {
                    assert!(solver.check_sat(&pc).is_sat());
                    assert!(
                        solver.may_be_true(&pc, Expr::ult(byte(x), Expr::const_(100, Width::W8)))
                    );
                }
            });
        }
    });
    let stats = solver.stats();
    // No lost updates: every query of every thread is accounted for.
    assert_eq!(stats.queries, THREADS * REPEATS * 2);
    assert_eq!(stats.sat, THREADS * REPEATS * 2);
    // The shared cache answered the repeats: far fewer searches than
    // queries, and a healthy hit count.
    assert!(
        stats.query_cache_hits + stats.model_cache_hits >= THREADS * (REPEATS - 1),
        "hits too low: {stats:?}"
    );
    assert!(
        stats.searches <= 4 * THREADS,
        "searches too high: {stats:?}"
    );

    // Cache hits are monotone: asking an already-cached query again can
    // only grow the hit counters.
    let before = solver.stats();
    let mut pc = ConstraintSet::new();
    pc.push(Expr::ult(byte(x), Expr::const_(200, Width::W8)));
    pc.push(pin_constraint(y, 0));
    assert!(solver.check_sat(&pc).is_sat());
    let after = solver.stats();
    assert!(
        after.query_cache_hits + after.model_cache_hits
            > before.query_cache_hits + before.model_cache_hits
    );
}

#[test]
fn canonical_models_are_reproducible() {
    // The model handed to model-returning callers is a pure function of
    // the constraint set: a fresh solver (empty caches) and a warmed-up
    // solver must return the very same assignment.
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let y = m.fresh("y", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::ult(byte(x), Expr::const_(50, Width::W8)));
    pc.push(Expr::eq(
        Expr::add(byte(x), byte(y)),
        Expr::const_(60, Width::W8),
    ));

    let warm = Solver::new();
    // Warm the witness cache with a *different* but overlapping query whose
    // model also satisfies `pc` for some values.
    let mut other = ConstraintSet::new();
    other.push(Expr::ult(byte(x), Expr::const_(50, Width::W8)));
    assert!(warm.check_sat(&other).is_sat());
    let warm_model = warm.get_model(&pc).expect("sat");

    let fresh = Solver::new();
    let fresh_model = fresh.get_model(&pc).expect("sat");
    assert_eq!(
        warm_model.get(x),
        fresh_model.get(x),
        "canonical model depends on cache state"
    );
    assert_eq!(warm_model.get(y), fresh_model.get(y));
    // And asking the same solver twice reproduces it as well.
    let again = warm.get_model(&pc).expect("sat");
    assert_eq!(again.get(x), warm_model.get(x));
    assert_eq!(again.get(y), warm_model.get(y));
}

fn slice_for(sym: SymbolId, specs: &[(u64, bool, bool)]) -> CacheSlice {
    CacheSlice {
        entries: specs
            .iter()
            .map(|&(v, hot, with_model)| SliceEntry {
                constraints: vec![pin_constraint(sym, v)],
                query: None,
                sat: true,
                // Models are a pure function of the key, mirroring the
                // canonical-model invariant of real caches.
                model: with_model.then(|| {
                    let mut a = Assignment::new();
                    a.set(sym, v);
                    a
                }),
                hot,
            })
            .collect(),
    }
}

#[test]
fn imported_slice_never_evicts_residents() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let y = m.fresh("y", Width::W8);
    // 2 entries per shard: small enough that a large import would flush it
    // if imports were allowed to evict.
    let cache = ShardedQueryCache::new(32);
    for v in 0..8u64 {
        cache.insert(&[pin_constraint(x, v)], None, true, None);
    }
    let residents = cache.len();
    // A slice far larger than the whole cache.
    let specs: Vec<(u64, bool, bool)> = (0..200).map(|v| (v % 251, true, false)).collect();
    let big = slice_for(y, &specs);
    cache.merge_slice(&big);
    // Every resident is still answerable — imports only used spare room.
    for v in 0..8u64 {
        assert!(
            cache.get(&[pin_constraint(x, v)], None, false).is_some(),
            "resident {v} evicted by an import"
        );
    }
    assert!(cache.len() >= residents);
}

#[test]
fn reference_bits_survive_slice_merge() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let cache = ShardedQueryCache::new(256);
    let key = [pin_constraint(x, 7)];
    cache.insert(&key, None, true, None);
    // A hit sets the clock reference bit.
    assert!(cache.get(&key, None, false).is_some());
    // Import the same key (cold, but carrying the canonical model).
    let mut model = Assignment::new();
    model.set(x, 7);
    let slice = CacheSlice {
        entries: vec![SliceEntry {
            constraints: key.to_vec(),
            query: None,
            sat: true,
            model: Some(model.clone()),
            hot: false,
        }],
    };
    assert_eq!(
        cache.merge_slice(&slice),
        0,
        "existing key must merge in place"
    );
    // The re-exported entry still carries the reference bit — the merge
    // neither cleared it nor replaced the entry — and gained the model.
    let exported = cache.export_slice(16);
    let entry = exported
        .entries
        .iter()
        .find(|e| e.constraints == key)
        .expect("merged entry must still be exportable");
    assert!(entry.hot, "reference bit lost in merge");
    assert_eq!(entry.model.as_ref(), Some(&model));
}

#[test]
fn export_slice_ranks_hot_entries_first() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let cache = ShardedQueryCache::new(256);
    for v in 0..8u64 {
        cache.insert(&[pin_constraint(x, v)], None, true, None);
    }
    for v in [1u64, 4, 6] {
        assert!(cache.get(&[pin_constraint(x, v)], None, false).is_some());
    }
    let slice = cache.export_slice(3);
    assert_eq!(slice.len(), 3);
    assert!(
        slice.entries.iter().all(|e| e.hot),
        "cold entry out-ranked a hot one"
    );
}

#[test]
fn export_slice_for_filters_by_footprint() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let y = m.fresh("y", Width::W8);
    let cache = ShardedQueryCache::new(256);
    cache.insert(&[pin_constraint(x, 1)], None, true, None);
    cache.insert(&[pin_constraint(y, 2)], None, true, None);
    let footprint: BTreeSet<SymbolId> = [x].into_iter().collect();
    let slice = cache.export_slice_for(&footprint, 16);
    assert_eq!(slice.len(), 1);
    assert!(collect_symbols(&slice.entries[0].constraints[0]).contains(&x));
}

#[test]
fn imported_entries_serve_warm_hits_without_searches() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let sets: Vec<ConstraintSet> = (0..6u64)
        .map(|v| {
            let mut pc = ConstraintSet::new();
            pc.push(pin_constraint(x, v));
            pc
        })
        .collect();
    let source = Solver::new();
    for pc in &sets {
        assert!(source.check_sat(pc).is_sat());
    }
    let slice = source.export_slice(64);
    assert!(slice.len() >= sets.len());

    let sink = Solver::new();
    assert_eq!(sink.import_slice(&slice) as usize, slice.len());
    for pc in &sets {
        assert!(sink.check_sat(pc).is_sat());
    }
    let stats = sink.stats();
    assert_eq!(
        stats.searches, 0,
        "imported answers should spare all searches"
    );
    assert_eq!(stats.imported_cache_entries as usize, slice.len());
    assert_eq!(stats.warm_hits, sets.len() as u64);
    assert!(stats.warm_hit_rate() > 0.99);

    // Imported canonical models are authoritative for the exact key: the
    // sink returns the same model a fresh solver would compute itself.
    let fresh = Solver::new();
    for pc in &sets {
        assert_eq!(
            sink.get_model(pc).unwrap().get(x),
            fresh.get_model(pc).unwrap().get(x)
        );
    }
}

#[test]
fn bitblast_backend_agrees_on_small_queries() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let widths: std::collections::BTreeMap<SymbolId, Width> =
        [(x, Width::W8)].into_iter().collect();
    let budget = SearchBudget::default();

    // Sat: verified witness.
    let sat = [pin_constraint(x, 42)];
    match BitBlastBackend.solve(&sat, &widths, budget) {
        SearchOutcome::Sat(model) => {
            assert_eq!(c9_expr::eval_constraints(&sat, &model), Some(true));
            assert_eq!(model.get(x), Some(42));
        }
        other => panic!("expected sat, got {other:?}"),
    }

    // Unsat over an exhaustive byte domain is proved.
    let unsat = [pin_constraint(x, 1), pin_constraint(x, 2)];
    assert_eq!(
        BitBlastBackend.solve(&unsat, &widths, budget),
        SearchOutcome::Unsat
    );
}

#[test]
fn backend_selection_table_is_class_driven() {
    let mut m = SymbolManager::new();
    let x = m.fresh("x", Width::W8);
    let n = m.fresh("n", Width::W64);
    let tiny: std::collections::BTreeMap<SymbolId, Width> = [(x, Width::W8)].into_iter().collect();
    let wide: std::collections::BTreeMap<SymbolId, Width> = [(n, Width::W64)].into_iter().collect();
    assert_eq!(classify(&tiny), QueryClass::Tiny);
    assert_eq!(classify(&wide), QueryClass::Wide);
    let budget = SearchBudget::default();
    // Canonical never consults the alternative backend.
    assert!(crate::alt_budget(SolverBackendKind::Canonical, QueryClass::Tiny, budget).is_none());
    // Wide queries never go to the bit-blaster (its search is bit-depth
    // exponential without exhaustive domains).
    assert!(crate::alt_budget(SolverBackendKind::BitBlast, QueryClass::Wide, budget).is_none());
    assert!(crate::alt_budget(SolverBackendKind::Race, QueryClass::Wide, budget).is_none());
    // Race mode throttles the witness finder to a budget slice.
    let race = crate::alt_budget(SolverBackendKind::Race, QueryClass::Tiny, budget).unwrap();
    assert!(race.max_nodes < budget.max_nodes);
}

#[test]
fn backend_choice_is_invisible_to_the_engine() {
    // Same queries, three backend kinds: identical feasibility decisions
    // and identical canonical models — the determinism contract that lets
    // racing be enabled per worker without perturbing path sets.
    let kinds = [
        SolverBackendKind::Canonical,
        SolverBackendKind::BitBlast,
        SolverBackendKind::Race,
    ];
    let mut decisions: Vec<Vec<bool>> = Vec::new();
    let mut models: Vec<Vec<Option<u64>>> = Vec::new();
    for kind in kinds {
        let solver = Solver::with_config(SolverConfig {
            backend: kind,
            ..SolverConfig::default()
        });
        let mut m = SymbolManager::new();
        let x = m.fresh("x", Width::W8);
        let y = m.fresh("y", Width::W8);
        let n = m.fresh("n", Width::W32);
        let mut pc = ConstraintSet::new();
        pc.push(Expr::ult(byte(x), Expr::const_(100, Width::W8)));
        pc.push(Expr::eq(
            Expr::add(byte(x), byte(y)),
            Expr::const_(120, Width::W8),
        ));
        pc.push(Expr::ult(
            Expr::sym(n, Width::W32),
            Expr::const_(1000, Width::W32),
        ));
        let queries = [
            Expr::ult(byte(x), Expr::const_(50, Width::W8)),
            Expr::eq(byte(y), Expr::const_(30, Width::W8)),
            Expr::ult(Expr::sym(n, Width::W32), Expr::const_(5, Width::W32)),
            Expr::eq(byte(x), Expr::const_(200, Width::W8)),
        ];
        decisions.push(
            queries
                .iter()
                .map(|q| solver.may_be_true(&pc, q.clone()))
                .collect(),
        );
        let model = solver.get_model(&pc).expect("sat");
        models.push(vec![model.get(x), model.get(y), model.get(n)]);
    }
    assert_eq!(decisions[0], decisions[1], "bitblast changed a decision");
    assert_eq!(decisions[0], decisions[2], "race changed a decision");
    assert_eq!(models[0], models[1], "bitblast changed the canonical model");
    assert_eq!(models[0], models[2], "race changed the canonical model");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slice merge is commutative and associative (the key-join union with
    /// OR-ed hot bits and prefer-present models), given the purity
    /// invariant that identical keys carry identical answers.
    #[test]
    fn prop_slice_merge_commutative_associative(
        a in proptest::collection::vec((0u64..8, any::<bool>(), any::<bool>()), 0..10),
        b in proptest::collection::vec((0u64..8, any::<bool>(), any::<bool>()), 0..10),
        c in proptest::collection::vec((0u64..8, any::<bool>(), any::<bool>()), 0..10),
    ) {
        let mut m = SymbolManager::new();
        let x = m.fresh("x", Width::W8);
        let (a, b, c) = (slice_for(x, &a), slice_for(x, &b), slice_for(x, &c));
        let merged = |l: &CacheSlice, r: &CacheSlice| {
            let mut out = l.clone();
            out.merge(r);
            out
        };
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
        // Merging a slice into itself is the identity (idempotence).
        let aa = merged(&a, &a);
        prop_assert_eq!(merged(&aa, &a), aa);
    }

    /// Any model returned by the solver actually satisfies the constraints.
    #[test]
    fn prop_models_satisfy_constraints(bound in 1u8..=255, target in 0u8..=254) {
        let mut m = SymbolManager::new();
        let x = m.fresh("x", Width::W8);
        let y = m.fresh("y", Width::W8);
        let mut pc = ConstraintSet::new();
        pc.push(Expr::ult(byte(x), Expr::const_(u64::from(bound), Width::W8)));
        pc.push(Expr::eq(
            Expr::xor(byte(x), byte(y)),
            Expr::const_(u64::from(target), Width::W8),
        ));
        let solver = Solver::new();
        match solver.check_sat(&pc) {
            SatResult::Sat(model) => {
                prop_assert_eq!(pc.eval(&model), Some(true));
            }
            SatResult::Unsat => {
                // Only possible when no x < bound exists, i.e. never for bound >= 1.
                prop_assert!(false, "unexpected unsat");
            }
            SatResult::Unknown => prop_assert!(false, "unexpected unknown"),
        }
    }

    /// A constraint pinning each byte to a concrete value is always sat and
    /// the model reproduces exactly those bytes.
    #[test]
    fn prop_pinned_bytes_recovered(data in proptest::collection::vec(any::<u8>(), 1..12)) {
        let mut m = SymbolManager::new();
        let syms = m.fresh_bytes("d", data.len());
        let mut pc = ConstraintSet::new();
        for (s, b) in syms.iter().zip(&data) {
            pc.push(Expr::eq(byte(*s), Expr::const_(u64::from(*b), Width::W8)));
        }
        let solver = Solver::new();
        let model = solver.get_model(&pc).expect("must be sat");
        for (s, b) in syms.iter().zip(&data) {
            prop_assert_eq!(model.get(*s), Some(u64::from(*b)));
        }
    }

    /// must_be_true and may_be_true are consistent: a valid expression is
    /// also feasible (on a satisfiable constraint set).
    #[test]
    fn prop_validity_implies_feasibility(limit in 1u8..200) {
        let mut m = SymbolManager::new();
        let x = m.fresh("x", Width::W8);
        let mut pc = ConstraintSet::new();
        pc.push(Expr::ult(byte(x), Expr::const_(u64::from(limit), Width::W8)));
        let solver = Solver::new();
        let q = Expr::ult(byte(x), Expr::const_(u64::from(limit) + 1, Width::W8));
        if solver.must_be_true(&pc, q.clone()) {
            prop_assert!(solver.may_be_true(&pc, q));
        }
    }
}
