//! Per-symbol value domains and their refinement from constraints.
//!
//! Before the backtracking search starts, every symbol is given a *domain*:
//! the candidate values the search will try for it. Byte-wide symbols start
//! with the full `0..=255` range; wider symbols start with an interval plus a
//! set of "interesting" candidate values mined from the constraints. Simple
//! syntactic patterns (`sym == c`, `sym < c`, `zext(sym) <= c`, …) refine the
//! domains before the search begins, which is what keeps the search tractable
//! for parser-style constraints.

use c9_expr::{BinaryOp, Expr, ExprKind, ExprRef, SymbolId, Width};
use std::collections::{BTreeMap, BTreeSet};

/// The candidate values the search will try for one symbol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Domain {
    /// Width of the symbol.
    pub width: Width,
    /// Inclusive lower bound (unsigned).
    pub lo: u64,
    /// Inclusive upper bound (unsigned).
    pub hi: u64,
    /// Values explicitly excluded (from `!=` constraints).
    pub excluded: BTreeSet<u64>,
    /// Extra candidate values worth trying (mined from constraint constants).
    pub candidates: BTreeSet<u64>,
    /// Whether enumerating this domain covers every possible value of the
    /// symbol. When false, a failed search means "unknown", not "unsat".
    pub exhaustive: bool,
}

/// Maximum number of values the search enumerates exhaustively per symbol.
pub(crate) const EXHAUSTIVE_LIMIT: u64 = 1 << 16;

impl Domain {
    /// Creates the initial (unconstrained) domain for a symbol of `width`.
    pub fn full(width: Width) -> Domain {
        let hi = width.max_unsigned();
        Domain {
            width,
            lo: 0,
            hi,
            excluded: BTreeSet::new(),
            candidates: BTreeSet::new(),
            exhaustive: hi < EXHAUSTIVE_LIMIT,
        }
    }

    /// Whether the domain admits no values at all.
    pub fn is_empty(&self) -> bool {
        if self.lo > self.hi {
            return true;
        }
        // A fully-excluded small interval is also empty.
        let size = self.hi - self.lo + 1;
        size <= self.excluded.len() as u64
            && (self.lo..=self.hi).all(|v| self.excluded.contains(&v))
    }

    /// Number of values the search will try for this symbol.
    pub fn search_size(&self) -> u64 {
        if self.lo > self.hi {
            return 0;
        }
        let span = self.hi - self.lo + 1;
        if span <= EXHAUSTIVE_LIMIT {
            span.saturating_sub(self.excluded.len() as u64)
        } else {
            // Interval too large to enumerate: only candidates + endpoints.
            self.candidates.len() as u64 + 4
        }
    }

    /// Intersects the domain with the interval `[lo, hi]`.
    pub fn clamp(&mut self, lo: u64, hi: u64) {
        self.lo = self.lo.max(lo);
        self.hi = self.hi.min(hi);
    }

    /// Excludes a single value.
    pub fn exclude(&mut self, v: u64) {
        self.excluded.insert(v);
    }

    /// Records an interesting candidate value (clamped into the width).
    pub fn suggest(&mut self, v: u64) {
        let v = self.width.truncate(v);
        self.candidates.insert(v);
    }

    /// Iterates the values the search should try, in a deterministic order
    /// that puts likely-useful values first: candidates mined from the
    /// constraints, then the interval endpoints, then the rest of the
    /// interval (if small enough to enumerate).
    pub fn iter_values(&self) -> impl Iterator<Item = u64> + '_ {
        let span_small = self.hi.saturating_sub(self.lo) < EXHAUSTIVE_LIMIT;
        let prioritized: Vec<u64> = self
            .candidates
            .iter()
            .copied()
            .filter(move |v| *v >= self.lo && *v <= self.hi && !self.excluded.contains(v))
            .collect();
        let endpoints: Vec<u64> = [self.lo, self.hi, self.lo.wrapping_add(1)]
            .into_iter()
            .filter(move |v| {
                *v >= self.lo
                    && *v <= self.hi
                    && !self.excluded.contains(v)
                    && !self.candidates.contains(v)
            })
            .collect();
        let rest: Box<dyn Iterator<Item = u64> + '_> = if span_small {
            Box::new(
                (self.lo..=self.hi)
                    .filter(move |v| !self.excluded.contains(v))
                    .filter(move |v| !self.candidates.contains(v))
                    .filter(move |v| *v != self.lo && *v != self.hi && *v != self.lo + 1),
            )
        } else {
            Box::new(std::iter::empty())
        };
        prioritized.into_iter().chain(endpoints).chain(rest)
    }
}

/// If `e` is a bare symbol, possibly wrapped in zero/sign extensions, returns
/// the symbol.
fn as_extended_sym(e: &ExprRef) -> Option<SymbolId> {
    match e.kind() {
        ExprKind::Sym(id) => Some(*id),
        ExprKind::ZExt(inner) | ExprKind::SExt(inner) => as_extended_sym(inner),
        _ => None,
    }
}

/// Collects every constant appearing anywhere inside `e` into `out`.
fn collect_constants(e: &ExprRef, out: &mut BTreeSet<u64>) {
    match e.kind() {
        ExprKind::Const(v) => {
            out.insert(v.value());
            out.insert(v.value().wrapping_add(1));
            out.insert(v.value().wrapping_sub(1));
        }
        ExprKind::Sym(_) => {}
        ExprKind::Unary(_, a) | ExprKind::ZExt(a) | ExprKind::SExt(a) | ExprKind::Extract(a, _) => {
            collect_constants(a, out)
        }
        ExprKind::Binary(_, a, b) | ExprKind::Concat(a, b) => {
            collect_constants(a, out);
            collect_constants(b, out);
        }
        ExprKind::Ite(c, t, f) => {
            collect_constants(c, out);
            collect_constants(t, out);
            collect_constants(f, out);
        }
    }
}

/// Applies one comparison constraint of the shape `sym ⋈ const` (or
/// `const ⋈ sym`) to the symbol's domain.
fn refine_from_comparison(domains: &mut BTreeMap<SymbolId, Domain>, c: &ExprRef) {
    let ExprKind::Binary(op, lhs, rhs) = c.kind() else {
        return;
    };
    // Normalize to sym-op-const.
    let (sym, konst, flipped) = match (as_extended_sym(lhs), rhs.as_const()) {
        (Some(s), Some(k)) => (s, k, false),
        _ => match (lhs.as_const(), as_extended_sym(rhs)) {
            (Some(k), Some(s)) => (s, k, true),
            _ => return,
        },
    };
    let Some(dom) = domains.get_mut(&sym) else {
        return;
    };
    let k = konst.value();
    // Only apply unsigned reasoning when the constant fits the symbol width;
    // signed comparisons are handled conservatively via candidates only.
    let fits = k <= dom.width.max_unsigned();
    match (op, flipped) {
        (BinaryOp::Eq, _) if fits => dom.clamp(k, k),
        (BinaryOp::Ne, _) if fits => dom.exclude(k),
        // sym < k
        (BinaryOp::Ult, false) => {
            if k == 0 {
                dom.clamp(1, 0); // empty
            } else {
                dom.clamp(0, k.saturating_sub(1).min(dom.width.max_unsigned()));
            }
        }
        // k < sym
        (BinaryOp::Ult, true) => dom.clamp(k.saturating_add(1), u64::MAX),
        // sym <= k
        (BinaryOp::Ule, false) => dom.clamp(0, k.min(dom.width.max_unsigned())),
        // k <= sym
        (BinaryOp::Ule, true) => dom.clamp(k, u64::MAX),
        _ => {
            dom.suggest(k);
        }
    }
}

/// Builds refined domains for all `symbols` given the constraints.
///
/// `widths` supplies the width of each symbol (the expression nodes know
/// their own widths, but bare symbols mentioned only through extensions need
/// the original width).
pub fn refine_domains(
    constraints: &[ExprRef],
    widths: &BTreeMap<SymbolId, Width>,
) -> BTreeMap<SymbolId, Domain> {
    let mut domains: BTreeMap<SymbolId, Domain> =
        widths.iter().map(|(s, w)| (*s, Domain::full(*w))).collect();

    // Mine interesting constants for all symbols mentioned in each constraint.
    for c in constraints {
        let mut consts = BTreeSet::new();
        collect_constants(c, &mut consts);
        for s in c9_expr::collect_symbols(c) {
            if let Some(dom) = domains.get_mut(&s) {
                for k in &consts {
                    dom.suggest(*k);
                }
                dom.suggest(0);
                dom.suggest(1);
                dom.suggest(dom.width.max_unsigned());
            }
        }
    }

    // Apply direct comparison constraints.
    for c in constraints {
        refine_from_comparison(&mut domains, c);
        // Also handle the negation pattern produced by `logical_not`:
        // `(cmp ^ 1)` meaning the comparison is false.
        if let ExprKind::Binary(BinaryOp::Xor, inner, one) = c.kind() {
            if one.as_const().is_some_and(|v| v.is_true()) {
                if let ExprKind::Binary(op, lhs, rhs) = inner.kind() {
                    // Negated comparisons: rewrite to the complementary op
                    // where that is still a sym-const pattern.
                    let flipped: Option<ExprRef> = match op {
                        BinaryOp::Eq => Some(Expr::ne(lhs.clone(), rhs.clone())),
                        BinaryOp::Ne => Some(Expr::eq(lhs.clone(), rhs.clone())),
                        BinaryOp::Ult => Some(Expr::ule(rhs.clone(), lhs.clone())),
                        BinaryOp::Ule => Some(Expr::ult(rhs.clone(), lhs.clone())),
                        _ => None,
                    };
                    if let Some(f) = flipped {
                        refine_from_comparison(&mut domains, &f);
                    }
                }
            }
        }
    }
    domains
}

#[cfg(test)]
mod tests {
    use super::*;
    use c9_expr::SymbolManager;

    #[test]
    fn full_domain_of_byte_is_exhaustive() {
        let d = Domain::full(Width::W8);
        assert!(d.exhaustive);
        assert_eq!(d.search_size(), 256);
    }

    #[test]
    fn full_domain_of_word_is_not_exhaustive() {
        let d = Domain::full(Width::W32);
        assert!(!d.exhaustive);
    }

    #[test]
    fn refinement_from_eq_and_lt() {
        let mut m = SymbolManager::new();
        let a = m.fresh("a", Width::W8);
        let b = m.fresh("b", Width::W8);
        let ae = Expr::sym(a, Width::W8);
        let be = Expr::sym(b, Width::W8);
        let constraints = vec![
            Expr::eq(ae.clone(), Expr::const_(42, Width::W8)),
            Expr::ult(be.clone(), Expr::const_(5, Width::W8)),
        ];
        let widths = [(a, Width::W8), (b, Width::W8)].into_iter().collect();
        let domains = refine_domains(&constraints, &widths);
        assert_eq!(domains[&a].lo, 42);
        assert_eq!(domains[&a].hi, 42);
        assert_eq!(domains[&b].hi, 4);
    }

    #[test]
    fn refinement_through_zext() {
        let mut m = SymbolManager::new();
        let a = m.fresh("a", Width::W8);
        let wide = Expr::zext(Expr::sym(a, Width::W8), Width::W32);
        let constraints = vec![Expr::ule(wide, Expr::const_(100, Width::W32))];
        let widths = [(a, Width::W8)].into_iter().collect();
        let domains = refine_domains(&constraints, &widths);
        assert_eq!(domains[&a].hi, 100);
    }

    #[test]
    fn exclusion_from_ne() {
        let mut m = SymbolManager::new();
        let a = m.fresh("a", Width::W8);
        let ae = Expr::sym(a, Width::W8);
        let constraints = vec![Expr::ne(ae, Expr::const_(0, Width::W8))];
        let widths = [(a, Width::W8)].into_iter().collect();
        let domains = refine_domains(&constraints, &widths);
        assert!(domains[&a].excluded.contains(&0));
        assert!(!domains[&a].iter_values().any(|v| v == 0));
    }

    #[test]
    fn contradictory_bounds_make_empty_domain() {
        let mut m = SymbolManager::new();
        let a = m.fresh("a", Width::W8);
        let ae = Expr::sym(a, Width::W8);
        let constraints = vec![
            Expr::ult(ae.clone(), Expr::const_(5, Width::W8)),
            Expr::ult(Expr::const_(10, Width::W8), ae),
        ];
        let widths = [(a, Width::W8)].into_iter().collect();
        let domains = refine_domains(&constraints, &widths);
        assert!(domains[&a].is_empty());
    }
}
