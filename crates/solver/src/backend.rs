//! Pluggable solver backends and the per-query-class selection table.
//!
//! The canonical engine is the budgeted backtracking search in
//! [`crate::search`]: it defines the *canonical model* of every constraint
//! set and therefore the shape of the execution tree (see the determinism
//! notes on [`crate::Solver`]). Alternative backends are strictly *witness
//! finders* for feasibility queries: a backend other than the canonical one
//! may only short-circuit a query by producing a **verified** satisfying
//! assignment. Everything else — `Unsat`, `Unknown`, and every
//! model-returning query — resolves through the canonical search, so path
//! sets, coverage, and bug sets are invariant under the backend choice
//! (with the engine's default `unknown_is_sat` policy, a verified witness
//! and a canonical `Sat`/`Unknown` lead to the same branch decision).
//!
//! The second in-tree backend, [`BitBlastBackend`], bit-blasts the existing
//! domain representation: instead of enumerating refined per-symbol domains
//! value by value in candidate-first order, it assigns each symbol bit by
//! bit (most-significant first), pruning bit prefixes whose completion
//! interval cannot intersect the refined domain. On bit-sparse parser
//! constraints this finds witnesses along a very different, often shorter,
//! deterministic route.

use crate::domain::{refine_domains, Domain};
use crate::search::{search, SearchBudget, SearchOutcome};
use c9_expr::{collect_symbols, Assignment, ExprRef, SymbolId, Width};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Which backend strategy a [`crate::Solver`] uses for feasibility
/// searches. Selected per worker via `--solver-backend` (and the run spec).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolverBackendKind {
    /// Only the canonical backtracking search (the default).
    #[default]
    Canonical,
    /// Consult the bit-blasting witness finder (full budget) on small query
    /// classes before falling back to the canonical search.
    BitBlast,
    /// Race mode: the bit-blasting backend gets a small slice of the node
    /// budget first — first verified sat wins — then the canonical search
    /// runs with the full budget. The race is sequential and therefore a
    /// pure function of the query, never of thread timing.
    Race,
}

impl std::fmt::Display for SolverBackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SolverBackendKind::Canonical => "canonical",
            SolverBackendKind::BitBlast => "bitblast",
            SolverBackendKind::Race => "race",
        })
    }
}

impl std::str::FromStr for SolverBackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<SolverBackendKind, String> {
        match s {
            "canonical" => Ok(SolverBackendKind::Canonical),
            "bitblast" => Ok(SolverBackendKind::BitBlast),
            "race" => Ok(SolverBackendKind::Race),
            other => Err(format!(
                "unknown solver backend {other:?} (expected canonical, bitblast, or race)"
            )),
        }
    }
}

/// A constraint-search engine.
///
/// Implementations must be deterministic: the outcome may depend only on
/// the arguments, never on timing or global state.
pub trait SolverBackend: std::fmt::Debug + Send + Sync {
    /// A short stable name for reports and traces.
    fn name(&self) -> &'static str;

    /// Searches for an assignment satisfying all `constraints`.
    fn solve(
        &self,
        constraints: &[ExprRef],
        widths: &BTreeMap<SymbolId, Width>,
        budget: SearchBudget,
    ) -> SearchOutcome;
}

/// The canonical backend: the hand-rolled backtracking search whose models
/// define the execution tree.
#[derive(Clone, Copy, Debug, Default)]
pub struct BacktrackBackend;

impl SolverBackend for BacktrackBackend {
    fn name(&self) -> &'static str {
        "backtrack"
    }

    fn solve(
        &self,
        constraints: &[ExprRef],
        widths: &BTreeMap<SymbolId, Width>,
        budget: SearchBudget,
    ) -> SearchOutcome {
        search(constraints, widths, budget, None)
    }
}

/// Bit-blasting witness finder over the refined domain representation.
///
/// Symbols are processed in `SymbolId` order; each symbol is assigned bit
/// by bit from the most significant bit down, trying `0` before `1`, and a
/// bit prefix is pruned as soon as the interval of its possible completions
/// no longer intersects the symbol's refined `[lo, hi]` domain. Constraints
/// are checked by partial evaluation whenever a symbol completes. A `Sat`
/// answer is only returned after the full assignment re-evaluates every
/// constraint to true, so callers may trust the witness unconditionally.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitBlastBackend;

impl SolverBackend for BitBlastBackend {
    fn name(&self) -> &'static str {
        "bitblast"
    }

    fn solve(
        &self,
        constraints: &[ExprRef],
        widths: &BTreeMap<SymbolId, Width>,
        budget: SearchBudget,
    ) -> SearchOutcome {
        if constraints.is_empty() {
            return SearchOutcome::Sat(Assignment::new());
        }
        let domains = refine_domains(constraints, widths);
        if domains.values().any(|d| d.is_empty()) {
            return SearchOutcome::Unsat;
        }
        let order: Vec<SymbolId> = widths.keys().copied().collect();
        let exhaustive_all = order
            .iter()
            .all(|s| domains.get(s).map(|d| d.exhaustive).unwrap_or(false));
        let constraint_syms: Vec<BTreeSet<SymbolId>> =
            constraints.iter().map(collect_symbols).collect();
        let mut assignment = Assignment::new();
        let mut nodes: u64 = 0;
        let result = blast_symbol(
            0,
            &order,
            &domains,
            constraints,
            &constraint_syms,
            &mut assignment,
            &mut nodes,
            budget.max_nodes,
        );
        match result {
            Blast::Found(model) => {
                // The per-bit pruning is only a heuristic filter; the final
                // verification is what makes the witness trustworthy.
                if c9_expr::eval_constraints(constraints, &model) == Some(true) {
                    SearchOutcome::Sat(model)
                } else {
                    SearchOutcome::Unknown
                }
            }
            Blast::Exhausted if exhaustive_all => SearchOutcome::Unsat,
            Blast::Exhausted => SearchOutcome::Unknown,
            Blast::Budget => SearchOutcome::Unknown,
        }
    }
}

enum Blast {
    Found(Assignment),
    Exhausted,
    Budget,
}

/// Assigns the symbol at `depth` via bit-level DFS, then recurses to the
/// next symbol.
#[allow(clippy::too_many_arguments)]
fn blast_symbol(
    depth: usize,
    order: &[SymbolId],
    domains: &BTreeMap<SymbolId, Domain>,
    constraints: &[ExprRef],
    constraint_syms: &[BTreeSet<SymbolId>],
    assignment: &mut Assignment,
    nodes: &mut u64,
    max_nodes: u64,
) -> Blast {
    if depth == order.len() {
        return Blast::Found(assignment.clone());
    }
    let sym = order[depth];
    let dom = &domains[&sym];
    blast_bits(
        sym,
        dom,
        dom.width.bits(),
        0,
        depth,
        order,
        domains,
        constraints,
        constraint_syms,
        assignment,
        nodes,
        max_nodes,
    )
}

/// The interval `[lo, hi]` of values reachable by completing the bit prefix
/// `prefix` with `remaining` free low bits.
fn completion_interval(prefix: u64, remaining: u32) -> (u64, u64) {
    if remaining >= 64 {
        return (0, u64::MAX);
    }
    let lo = prefix << remaining;
    (lo, lo | ((1u64 << remaining) - 1))
}

/// Chooses the remaining bits of `sym` (most significant first, `0` before
/// `1`), pruning prefixes outside the refined domain interval.
#[allow(clippy::too_many_arguments)]
fn blast_bits(
    sym: SymbolId,
    dom: &Domain,
    remaining: u32,
    prefix: u64,
    depth: usize,
    order: &[SymbolId],
    domains: &BTreeMap<SymbolId, Domain>,
    constraints: &[ExprRef],
    constraint_syms: &[BTreeSet<SymbolId>],
    assignment: &mut Assignment,
    nodes: &mut u64,
    max_nodes: u64,
) -> Blast {
    *nodes += 1;
    if *nodes > max_nodes {
        return Blast::Budget;
    }
    let (lo, hi) = completion_interval(prefix, remaining);
    if hi < dom.lo || lo > dom.hi {
        return Blast::Exhausted; // prefix cannot reach the domain interval
    }
    if remaining == 0 {
        let value = prefix;
        if dom.excluded.contains(&value) {
            return Blast::Exhausted;
        }
        assignment.set(sym, value);
        // Partial evaluation over the constraints that mention the symbol
        // just completed — same pruning rule as the canonical search.
        let contradicted = constraints
            .iter()
            .zip(constraint_syms)
            .filter(|(_, syms)| syms.contains(&sym))
            .any(|(c, _)| c.eval_bool(assignment) == Some(false));
        let result = if contradicted {
            Blast::Exhausted
        } else {
            blast_symbol(
                depth + 1,
                order,
                domains,
                constraints,
                constraint_syms,
                assignment,
                nodes,
                max_nodes,
            )
        };
        if matches!(result, Blast::Exhausted) {
            assignment.unset(sym);
        }
        return result;
    }
    for bit in [0u64, 1] {
        let result = blast_bits(
            sym,
            dom,
            remaining - 1,
            (prefix << 1) | bit,
            depth,
            order,
            domains,
            constraints,
            constraint_syms,
            assignment,
            nodes,
            max_nodes,
        );
        if !matches!(result, Blast::Exhausted) {
            return result;
        }
    }
    Blast::Exhausted
}

/// Size classes for the per-query-class backend selection table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryClass {
    /// At most two symbols, at most 16 total bits.
    Tiny,
    /// At most 32 total bits.
    Narrow,
    /// Everything larger.
    Wide,
}

/// Classifies a query by its symbol footprint.
pub fn classify(widths: &BTreeMap<SymbolId, Width>) -> QueryClass {
    let total_bits: u32 = widths.values().map(|w| w.bits()).sum();
    if widths.len() <= 2 && total_bits <= 16 {
        QueryClass::Tiny
    } else if total_bits <= 32 {
        QueryClass::Narrow
    } else {
        QueryClass::Wide
    }
}

/// The selection table: the node budget the bit-blasting witness finder is
/// given before the canonical search runs, or `None` to skip it entirely.
pub fn alt_budget(
    kind: SolverBackendKind,
    class: QueryClass,
    budget: SearchBudget,
) -> Option<SearchBudget> {
    match (kind, class) {
        (SolverBackendKind::Canonical, _) => None,
        (SolverBackendKind::BitBlast, QueryClass::Wide) => None,
        (SolverBackendKind::BitBlast, _) => Some(budget),
        (SolverBackendKind::Race, QueryClass::Tiny) => Some(SearchBudget {
            max_nodes: (budget.max_nodes / 8).max(1),
        }),
        (SolverBackendKind::Race, QueryClass::Narrow) => Some(SearchBudget {
            max_nodes: (budget.max_nodes / 16).max(1),
        }),
        (SolverBackendKind::Race, QueryClass::Wide) => None,
    }
}

/// Resolves a *feasibility* search through the configured backend kind.
///
/// Returns the outcome plus whether the answer came from an alternative
/// backend (`true` only for a verified witness). Anything but a verified
/// `Sat` from the alternative backend is discarded and the canonical
/// search decides — see the module documentation for why this keeps path
/// sets backend-invariant.
pub fn solve_feasibility(
    kind: SolverBackendKind,
    constraints: &[ExprRef],
    widths: &BTreeMap<SymbolId, Width>,
    budget: SearchBudget,
) -> (SearchOutcome, bool) {
    if let Some(alt) = alt_budget(kind, classify(widths), budget) {
        if let SearchOutcome::Sat(model) = BitBlastBackend.solve(constraints, widths, alt) {
            return (SearchOutcome::Sat(model), true);
        }
    }
    (BacktrackBackend.solve(constraints, widths, budget), false)
}
