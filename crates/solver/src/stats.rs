//! Solver statistics.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing the work a [`crate::Solver`] has performed.
///
/// These feed the per-worker statistics that Cloud9 workers report to the
/// load balancer and that the evaluation harness aggregates. The live
/// counters inside a solver are [`AtomicSolverStats`] (many executor threads
/// share one solver); this struct is the serializable snapshot that crosses
/// the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Total satisfiability queries issued (feasibility + validity).
    pub queries: u64,
    /// Queries answered from the query cache.
    pub query_cache_hits: u64,
    /// Queries answered by re-using a cached model.
    pub model_cache_hits: u64,
    /// Queries that required a full backtracking search.
    pub searches: u64,
    /// Searches that ended with `Unknown` (budget exhausted or incomplete
    /// domain enumeration).
    pub unknowns: u64,
    /// Queries proved unsatisfiable.
    pub unsat: u64,
    /// Queries proved satisfiable.
    pub sat: u64,
    /// Queries whose constraint set was reduced by independence slicing
    /// (at least one independent constraint group was dropped).
    pub independence_slices: u64,
    /// Query-cache entries added by importing [`crate::CacheSlice`]s from
    /// other workers (job-batch piggyback, status gossip, or the
    /// coordinator's cluster hot set).
    pub imported_cache_entries: u64,
    /// Query-cache hits served by an imported entry — the queries this
    /// worker did not have to re-solve because a sibling already had.
    pub warm_hits: u64,
}

impl SolverStats {
    /// Merges another stats snapshot into this one.
    pub fn merge(&mut self, other: &SolverStats) {
        self.queries += other.queries;
        self.query_cache_hits += other.query_cache_hits;
        self.model_cache_hits += other.model_cache_hits;
        self.searches += other.searches;
        self.unknowns += other.unknowns;
        self.unsat += other.unsat;
        self.sat += other.sat;
        self.independence_slices += other.independence_slices;
        self.imported_cache_entries += other.imported_cache_entries;
        self.warm_hits += other.warm_hits;
    }

    /// Fraction of queries answered by either cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        (self.query_cache_hits + self.model_cache_hits) as f64 / self.queries as f64
    }

    /// Fraction of query-cache hits served by imported entries, in
    /// `[0, 1]` — how much of the cache's value came from siblings.
    pub fn warm_hit_rate(&self) -> f64 {
        if self.query_cache_hits == 0 {
            return 0.0;
        }
        self.warm_hits as f64 / self.query_cache_hits as f64
    }
}

/// Lock-free live counters of a shared [`crate::Solver`].
///
/// Every counter is a relaxed atomic: executor threads bump them
/// concurrently and only aggregate totals are ever observed, so no ordering
/// between counters is required. [`AtomicSolverStats::snapshot`] produces
/// the serializable [`SolverStats`] view.
#[derive(Debug, Default)]
pub struct AtomicSolverStats {
    queries: AtomicU64,
    query_cache_hits: AtomicU64,
    model_cache_hits: AtomicU64,
    searches: AtomicU64,
    unknowns: AtomicU64,
    unsat: AtomicU64,
    sat: AtomicU64,
    independence_slices: AtomicU64,
}

macro_rules! bump {
    ($($method:ident => $field:ident),* $(,)?) => {
        $(
            #[doc = concat!("Increments the `", stringify!($field), "` counter.")]
            pub fn $method(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )*
    };
}

impl AtomicSolverStats {
    bump! {
        inc_queries => queries,
        inc_query_cache_hits => query_cache_hits,
        inc_model_cache_hits => model_cache_hits,
        inc_searches => searches,
        inc_unknowns => unknowns,
        inc_unsat => unsat,
        inc_sat => sat,
        inc_independence_slices => independence_slices,
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> SolverStats {
        SolverStats {
            queries: self.queries.load(Ordering::Relaxed),
            query_cache_hits: self.query_cache_hits.load(Ordering::Relaxed),
            model_cache_hits: self.model_cache_hits.load(Ordering::Relaxed),
            searches: self.searches.load(Ordering::Relaxed),
            unknowns: self.unknowns.load(Ordering::Relaxed),
            unsat: self.unsat.load(Ordering::Relaxed),
            sat: self.sat.load(Ordering::Relaxed),
            independence_slices: self.independence_slices.load(Ordering::Relaxed),
            // Sourced from the query-cache counters, not atomics here:
            // `Solver::stats` overlays them on this snapshot.
            imported_cache_entries: 0,
            warm_hits: 0,
        }
    }
}
