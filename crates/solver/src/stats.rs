//! Solver statistics.

use serde::{Deserialize, Serialize};

/// Counters describing the work a [`crate::Solver`] has performed.
///
/// These feed the per-worker statistics that Cloud9 workers report to the
/// load balancer and that the evaluation harness aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Total satisfiability queries issued (feasibility + validity).
    pub queries: u64,
    /// Queries answered from the query cache.
    pub query_cache_hits: u64,
    /// Queries answered by re-using a cached model.
    pub model_cache_hits: u64,
    /// Queries that required a full backtracking search.
    pub searches: u64,
    /// Searches that ended with `Unknown` (budget exhausted or incomplete
    /// domain enumeration).
    pub unknowns: u64,
    /// Queries proved unsatisfiable.
    pub unsat: u64,
    /// Queries proved satisfiable.
    pub sat: u64,
}

impl SolverStats {
    /// Merges another stats snapshot into this one.
    pub fn merge(&mut self, other: &SolverStats) {
        self.queries += other.queries;
        self.query_cache_hits += other.query_cache_hits;
        self.model_cache_hits += other.model_cache_hits;
        self.searches += other.searches;
        self.unknowns += other.unknowns;
        self.unsat += other.unsat;
        self.sat += other.sat;
    }

    /// Fraction of queries answered by either cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        (self.query_cache_hits + self.model_cache_hits) as f64 / self.queries as f64
    }
}
