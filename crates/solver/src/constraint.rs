//! Constraint sets: ordered collections of 1-bit path constraints.

use c9_expr::{collect_symbols, Assignment, BinaryOp, Expr, ExprKind, ExprRef, SymbolId, Width};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An ordered set of path constraints.
///
/// Each constraint is a 1-bit expression that must be true along the current
/// execution path. The set keeps the union of referenced symbols cached so
/// that independence slicing does not repeatedly traverse expressions.
///
/// The set also tracks whether a trivially-false constraint (`false` constant)
/// was ever added, which makes the whole set unsatisfiable regardless of the
/// other constraints.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstraintSet {
    constraints: Vec<ExprRef>,
    symbols: BTreeSet<SymbolId>,
    trivially_false: bool,
}

impl ConstraintSet {
    /// Creates an empty (trivially satisfiable) constraint set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Adds a constraint to the set.
    ///
    /// Trivially-true constraints (the constant `1`) are dropped; a
    /// trivially-false constraint marks the whole set unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the constraint is not 1 bit wide.
    pub fn push(&mut self, constraint: ExprRef) {
        debug_assert_eq!(constraint.width(), Width::W1, "constraints must be boolean");
        if let Some(c) = constraint.as_const() {
            if c.is_true() {
                return;
            }
            self.trivially_false = true;
            return;
        }
        // A top-level conjunction is split into its conjuncts: the solver's
        // per-symbol pruning works best on small independent constraints.
        if let ExprKind::Binary(BinaryOp::And, lhs, rhs) = constraint.kind() {
            self.push(lhs.clone());
            self.push(rhs.clone());
            return;
        }
        for sym in collect_symbols(&constraint) {
            self.symbols.insert(sym);
        }
        self.constraints.push(constraint);
    }

    /// Returns a copy of this set extended with one more constraint.
    pub fn with(&self, constraint: ExprRef) -> ConstraintSet {
        let mut copy = self.clone();
        copy.push(constraint);
        copy
    }

    /// The constraints, in insertion order.
    pub fn constraints(&self) -> &[ExprRef] {
        &self.constraints
    }

    /// The set of symbols referenced by any constraint.
    pub fn symbols(&self) -> &BTreeSet<SymbolId> {
        &self.symbols
    }

    /// Number of (non-trivial) constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the set contains no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty() && !self.trivially_false
    }

    /// Whether a constant-false constraint was added.
    pub fn is_trivially_false(&self) -> bool {
        self.trivially_false
    }

    /// Evaluates all constraints under a total assignment.
    ///
    /// Returns `None` if some constraint references an unbound symbol and the
    /// result cannot be decided.
    pub fn eval(&self, assignment: &Assignment) -> Option<bool> {
        if self.trivially_false {
            return Some(false);
        }
        c9_expr::eval_constraints(&self.constraints, assignment)
    }

    /// Builds a single conjunction expression of all constraints (used mainly
    /// for diagnostics).
    pub fn as_conjunction(&self) -> ExprRef {
        if self.trivially_false {
            return Expr::false_();
        }
        let mut acc = Expr::true_();
        for c in &self.constraints {
            acc = Expr::logical_and(acc, c.clone());
        }
        acc
    }

    /// Iterates over the constraints.
    pub fn iter(&self) -> impl Iterator<Item = &ExprRef> {
        self.constraints.iter()
    }
}

impl FromIterator<ExprRef> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = ExprRef>>(iter: T) -> ConstraintSet {
        let mut set = ConstraintSet::new();
        for c in iter {
            set.push(c);
        }
        set
    }
}
