//! The solver facade used by the symbolic execution engine.

use crate::backend::{solve_feasibility, SolverBackendKind};
use crate::cache::{CacheSlice, ModelCache, ShardedQueryCache};
use crate::constraint::ConstraintSet;
use crate::independence::relevant_constraints;
use crate::search::{search, SearchBudget, SearchOutcome};
use crate::stats::{AtomicSolverStats, SolverStats};
use c9_expr::{collect_symbols, Assignment, Expr, ExprRef, SymbolId, SymbolManager, Width};
use c9_trace::{Histogram, HistogramSnapshot, Span, SpanKind};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::RwLock;
use std::time::Instant;

/// Configuration of a [`Solver`].
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// Budget for each backtracking search.
    pub budget: SearchBudget,
    /// Whether the query (satisfiability) cache is enabled.
    pub enable_query_cache: bool,
    /// Whether the model (counterexample) cache is enabled.
    pub enable_model_cache: bool,
    /// Maximum number of entries in the query cache.
    pub query_cache_capacity: usize,
    /// Maximum number of models kept in the model cache.
    pub model_cache_capacity: usize,
    /// Whether independence slicing is applied before searching.
    pub enable_independence: bool,
    /// When a query cannot be decided within budget, treat the branch as
    /// feasible (`true`, the conservative choice used by the engine) or
    /// infeasible (`false`).
    pub unknown_is_sat: bool,
    /// Which backend strategy feasibility searches use (the canonical
    /// backtracking search alone, bit-blasting with canonical fallback, or
    /// a sequential race). Model-returning queries always resolve through
    /// the canonical search regardless of this setting.
    pub backend: SolverBackendKind,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            budget: SearchBudget::default(),
            enable_query_cache: true,
            enable_model_cache: true,
            query_cache_capacity: 16_384,
            model_cache_capacity: 64,
            enable_independence: true,
            unknown_is_sat: true,
            backend: SolverBackendKind::Canonical,
        }
    }
}

/// Result of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness model.
    Sat(Assignment),
    /// Proved unsatisfiable.
    Unsat,
    /// Could not be decided within the search budget.
    Unknown,
}

impl SatResult {
    /// Whether this result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether this result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// Extracts the model if satisfiable.
    pub fn model(self) -> Option<Assignment> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Three-valued validity answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Validity {
    /// The expression is true under every model of the constraints.
    True,
    /// The expression is false under every model of the constraints.
    False,
    /// Neither (or undecided within budget).
    Unknown,
}

/// The constraint solver.
///
/// A `Solver` is `Send + Sync`: all interior mutability is synchronized
/// (lock-striped query cache, read-write-locked model cache, atomic
/// statistics), so every executor thread of a Cloud9 worker shares one
/// solver instance — and one warm cache — instead of rebuilding a private
/// cache per thread.
///
/// # Determinism
///
/// Model-*returning* queries ([`Solver::get_model`], [`Solver::get_value`],
/// and the public [`Solver::check_sat`] entry points) always produce the
/// *canonical* model: the deterministic backtracking-search result for the
/// exact (sliced) constraint set, memoized in the query cache. Feasibility
/// queries ([`Solver::may_be_true`] / [`Solver::must_be_true`]) only need
/// the satisfiability bit and may be answered by any cached witness model.
/// Since satisfiability bits and canonical models are pure functions of the
/// constraint set, every value that can influence the shape of the
/// execution tree is independent of thread interleaving — which is what
/// keeps exhaustive path sets identical across `--threads` settings.
#[derive(Debug)]
pub struct Solver {
    config: SolverConfig,
    query_cache: ShardedQueryCache,
    model_cache: RwLock<ModelCache>,
    stats: AtomicSolverStats,
    /// Wall-clock latency of every query (cache hits included), in
    /// microseconds. Write-only from the engine's point of view — feeds
    /// worker status reports and `run_report.json`, never decisions.
    latency: Histogram,
    /// Widths of symbols registered via [`Solver::register_symbols`]; used
    /// as a fallback for query symbols whose width cannot be learned from
    /// the query expressions themselves.
    registered_widths: RwLock<BTreeMap<SymbolId, Width>>,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            query_cache: ShardedQueryCache::new(config.query_cache_capacity),
            model_cache: RwLock::new(ModelCache::new(config.model_cache_capacity)),
            stats: AtomicSolverStats::default(),
            latency: Histogram::new(),
            registered_widths: RwLock::new(BTreeMap::new()),
            config,
        }
    }

    /// The configuration this solver was created with.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// A snapshot of the solver statistics. The warm-cache counters live in
    /// the query cache (they are bumped under the shard locks) and are
    /// overlaid on the atomic snapshot here.
    pub fn stats(&self) -> SolverStats {
        let mut stats = self.stats.snapshot();
        stats.imported_cache_entries = self.query_cache.imported_entries();
        stats.warm_hits = self.query_cache.warm_hits();
        stats
    }

    /// Exports the `max` hottest query-cache entries as a transferable
    /// [`CacheSlice`] (see [`ShardedQueryCache::export_slice`]).
    pub fn export_slice(&self, max: usize) -> CacheSlice {
        self.query_cache.export_slice(max)
    }

    /// A monotonic counter of locally solved cache insertions; unchanged
    /// generation means an export would ship nothing an earlier export did
    /// not already carry.
    pub fn cache_generation(&self) -> u64 {
        self.query_cache.own_insertions()
    }

    /// Exports the `max` hottest query-cache entries whose constraints
    /// mention any of the `footprint` symbols.
    pub fn export_slice_for(&self, footprint: &BTreeSet<SymbolId>, max: usize) -> CacheSlice {
        self.query_cache.export_slice_for(footprint, max)
    }

    /// Merges a slice exported by another worker's solver into the query
    /// cache; returns the number of entries newly added. Imports are
    /// answer-preserving (cached answers are pure functions of their
    /// constraint sets), so this can only save searches, never change
    /// results.
    pub fn import_slice(&self, slice: &CacheSlice) -> u64 {
        if !self.config.enable_query_cache {
            return 0;
        }
        self.query_cache.merge_slice(slice)
    }

    /// A snapshot of the per-query latency histogram (microseconds).
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }

    /// Registers the widths of symbols from a [`SymbolManager`]; queries
    /// mentioning unregistered symbols infer widths from the expressions that
    /// contain them.
    pub fn register_symbols(&self, manager: &SymbolManager) {
        let mut widths = self
            .registered_widths
            .write()
            .expect("width table poisoned");
        for info in manager.iter() {
            widths.insert(info.id, info.width);
        }
    }

    /// Clears both caches, modelling a job arriving at a fresh worker.
    pub fn clear_caches(&self) {
        self.query_cache.clear();
        self.model_cache
            .write()
            .expect("model cache poisoned")
            .clear();
    }

    /// Resolves the widths of `symbols` for a query over `working`: widths
    /// are learned from the query's own expressions (every symbol carries
    /// its width at each occurrence), falling back to registered widths.
    ///
    /// Widths are deliberately *not* cached across queries: symbol
    /// identifiers are allocated per execution state, so the same id can
    /// name symbols of different widths in different states — a shared
    /// learned-width table would cross-contaminate concurrent queries.
    fn widths_for(
        &self,
        working: &[ExprRef],
        symbols: &BTreeSet<SymbolId>,
    ) -> BTreeMap<SymbolId, Width> {
        let mut learned = BTreeMap::new();
        for e in working {
            learn_widths_rec(e, &mut learned);
        }
        let registered = self.registered_widths.read().expect("width table poisoned");
        symbols
            .iter()
            .map(|s| {
                let width = learned
                    .get(s)
                    .copied()
                    .or_else(|| registered.get(s).copied())
                    .unwrap_or(Width::W8);
                (*s, width)
            })
            .collect()
    }

    /// Checks whether the constraint set is satisfiable and returns a model
    /// if it is.
    pub fn check_sat(&self, constraints: &ConstraintSet) -> SatResult {
        self.query(constraints, None, true)
    }

    /// Checks whether `constraints ∧ extra` is satisfiable.
    pub fn check_sat_with(&self, constraints: &ConstraintSet, extra: Option<ExprRef>) -> SatResult {
        self.query(constraints, extra, true)
    }

    /// The query pipeline: trivial rejection → independence slicing →
    /// query cache → (witness) model cache → budgeted search.
    ///
    /// `needs_model` distinguishes model-returning callers (which must get
    /// the canonical model, see the type-level documentation) from
    /// feasibility callers (which only consume the satisfiability bit and
    /// may be answered by an arbitrary cached witness, or an empty
    /// placeholder model on a cached sat answer).
    fn query(
        &self,
        constraints: &ConstraintSet,
        extra: Option<ExprRef>,
        needs_model: bool,
    ) -> SatResult {
        let started = Instant::now();
        let mut span = Span::enter(SpanKind::SolverQuery);
        span.detail(constraints.len() as u64);
        let result = self.query_inner(constraints, extra, needs_model);
        self.latency.record(started.elapsed().as_micros() as u64);
        result
    }

    fn query_inner(
        &self,
        constraints: &ConstraintSet,
        extra: Option<ExprRef>,
        needs_model: bool,
    ) -> SatResult {
        self.stats.inc_queries();
        if constraints.is_trivially_false() {
            self.stats.inc_unsat();
            return SatResult::Unsat;
        }
        if let Some(e) = &extra {
            if let Some(c) = e.as_const() {
                if c.is_false() {
                    self.stats.inc_unsat();
                    return SatResult::Unsat;
                }
            }
        }

        // Build the working constraint list (slice to what is relevant to the
        // extra query when independence slicing is enabled). Slicing relies on
        // the engine invariant that the path-constraint set itself is always
        // satisfiable (every constraint was feasible when it was added), so
        // dropping independent groups cannot change the answer.
        //
        // A working set with a sliced-in extra expression can never be the
        // key of a model-returning query (those always pass `extra: None`),
        // so canonical models are only worth caching for extra-free keys.
        let canonical_key = !matches!(&extra, Some(e) if !e.is_concrete());
        let mut working: Vec<ExprRef>;
        match &extra {
            Some(e) if !e.is_concrete() => {
                if self.config.enable_independence {
                    let query_syms = collect_symbols(e);
                    working = relevant_constraints(constraints, &query_syms);
                    if working.len() < constraints.len() {
                        self.stats.inc_independence_slices();
                    }
                    working.push(e.clone());
                } else {
                    working = constraints.constraints().to_vec();
                    working.push(e.clone());
                }
            }
            _ => {
                working = constraints.constraints().to_vec();
            }
        }

        // Query cache. Feasibility callers only ask for the sat bit, so
        // the shard does not clone the stored canonical model for them.
        if self.config.enable_query_cache {
            if let Some((sat, model)) = self.query_cache.get(&working, None, needs_model) {
                self.stats.inc_query_cache_hits();
                if !sat {
                    self.stats.inc_unsat();
                    return SatResult::Unsat;
                }
                if !needs_model {
                    // Feasibility callers discard the model; an empty
                    // placeholder witness is enough.
                    self.stats.inc_sat();
                    return SatResult::Sat(Assignment::new());
                }
                if let Some(m) = model {
                    self.stats.inc_sat();
                    return SatResult::Sat(m);
                }
                // Sat is known but no canonical model was recorded yet (the
                // bit came from a witness-cache hit): fall through to the
                // search, which computes and backfills it.
            }
        }

        // Model (counterexample) cache — feasibility only: any witness
        // proves satisfiability, but model-returning callers need the
        // canonical model for cross-thread determinism.
        if !needs_model && self.config.enable_model_cache {
            let witness = self
                .model_cache
                .read()
                .expect("model cache poisoned")
                .find_satisfying(&working);
            if let Some(m) = witness {
                self.stats.inc_model_cache_hits();
                self.stats.inc_sat();
                if self.config.enable_query_cache {
                    self.query_cache.insert(&working, None, true, None);
                }
                return SatResult::Sat(m);
            }
        }

        // Full search over the sliced constraints. Model-returning callers
        // go straight to the canonical backtracking search (its model *is*
        // the canonical model); feasibility callers go through the backend
        // selection table, which may answer with a verified witness from
        // the bit-blasting backend before falling back to the canonical
        // search.
        self.stats.inc_searches();
        let symbols: BTreeSet<SymbolId> = working.iter().flat_map(collect_symbols).collect();
        let widths = self.widths_for(&working, &symbols);
        let (outcome, via_alt) = if needs_model {
            (search(&working, &widths, self.config.budget, None), false)
        } else {
            solve_feasibility(self.config.backend, &working, &widths, self.config.budget)
        };
        match outcome {
            SearchOutcome::Sat(model) => {
                // Note: when the query was sliced, the model only binds the
                // symbols of the relevant slice. Feasibility callers ignore
                // the model; model-generation callers (`get_model`,
                // `get_value`) never pass an extra query, so they always get
                // a model over the full constraint set.
                if self.config.enable_query_cache {
                    // A witness from an alternative backend proves the sat
                    // bit but is *not* the canonical model — caching it as
                    // such would make later `get_model` answers depend on
                    // the backend choice. Leave the model slot empty; a
                    // model-returning query backfills it canonically.
                    let canonical = (canonical_key && !via_alt).then(|| model.clone());
                    self.query_cache.insert(&working, None, true, canonical);
                }
                if self.config.enable_model_cache {
                    self.model_cache
                        .write()
                        .expect("model cache poisoned")
                        .insert(model.clone());
                }
                self.stats.inc_sat();
                SatResult::Sat(model)
            }
            SearchOutcome::Unsat => {
                if self.config.enable_query_cache {
                    self.query_cache.insert(&working, None, false, None);
                }
                self.stats.inc_unsat();
                SatResult::Unsat
            }
            SearchOutcome::Unknown => {
                self.stats.inc_unknowns();
                SatResult::Unknown
            }
        }
    }

    /// Whether `expr` *may* be true under the constraints (feasibility).
    ///
    /// `Unknown` results are resolved according to
    /// [`SolverConfig::unknown_is_sat`].
    pub fn may_be_true(&self, constraints: &ConstraintSet, expr: ExprRef) -> bool {
        match self.query(constraints, Some(expr), false) {
            SatResult::Sat(_) => true,
            SatResult::Unsat => false,
            SatResult::Unknown => self.config.unknown_is_sat,
        }
    }

    /// Whether `expr` *must* be true under the constraints (validity).
    pub fn must_be_true(&self, constraints: &ConstraintSet, expr: ExprRef) -> bool {
        !self.may_be_true(constraints, Expr::logical_not(expr))
    }

    /// Classifies `expr` as valid, unsatisfiable, or neither.
    pub fn validity(&self, constraints: &ConstraintSet, expr: ExprRef) -> Validity {
        let can_be_true = self.may_be_true(constraints, expr.clone());
        let can_be_false = self.may_be_true(constraints, Expr::logical_not(expr));
        match (can_be_true, can_be_false) {
            (true, false) => Validity::True,
            (false, true) => Validity::False,
            _ => Validity::Unknown,
        }
    }

    /// Produces a model of the constraint set (a concrete test case).
    pub fn get_model(&self, constraints: &ConstraintSet) -> Option<Assignment> {
        self.check_sat(constraints).model()
    }

    /// Produces one concrete value that `expr` can take under the constraints.
    pub fn get_value(&self, constraints: &ConstraintSet, expr: &ExprRef) -> Option<u64> {
        if let Some(c) = expr.as_const() {
            return Some(c.value());
        }
        let mut model = self.query(constraints, None, true).model()?;
        // Symbols of the query that the path constraints do not mention are
        // unconstrained; bind them to zero so the evaluation is total.
        for sym in collect_symbols(expr) {
            if model.get(sym).is_none() {
                model.set(sym, 0);
            }
        }
        expr.eval(&model).map(|v| v.value())
    }
}

fn learn_widths_rec(e: &ExprRef, widths: &mut BTreeMap<SymbolId, Width>) {
    use c9_expr::ExprKind;
    match e.kind() {
        ExprKind::Sym(id) => {
            widths.insert(*id, e.width());
        }
        ExprKind::Const(_) => {}
        ExprKind::Unary(_, a) | ExprKind::ZExt(a) | ExprKind::SExt(a) | ExprKind::Extract(a, _) => {
            learn_widths_rec(a, widths)
        }
        ExprKind::Binary(_, a, b) | ExprKind::Concat(a, b) => {
            learn_widths_rec(a, widths);
            learn_widths_rec(b, widths);
        }
        ExprKind::Ite(c, t, f) => {
            learn_widths_rec(c, widths);
            learn_widths_rec(t, widths);
            learn_widths_rec(f, widths);
        }
    }
}
