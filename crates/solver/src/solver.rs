//! The solver facade used by the symbolic execution engine.

use crate::cache::{ModelCache, QueryCache};
use crate::constraint::ConstraintSet;
use crate::independence::relevant_constraints;
use crate::search::{search, SearchBudget, SearchOutcome};
use crate::stats::SolverStats;
use c9_expr::{collect_symbols, Assignment, Expr, ExprRef, SymbolId, SymbolManager, Width};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of a [`Solver`].
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// Budget for each backtracking search.
    pub budget: SearchBudget,
    /// Whether the query (satisfiability) cache is enabled.
    pub enable_query_cache: bool,
    /// Whether the model (counterexample) cache is enabled.
    pub enable_model_cache: bool,
    /// Maximum number of entries in the query cache.
    pub query_cache_capacity: usize,
    /// Maximum number of models kept in the model cache.
    pub model_cache_capacity: usize,
    /// Whether independence slicing is applied before searching.
    pub enable_independence: bool,
    /// When a query cannot be decided within budget, treat the branch as
    /// feasible (`true`, the conservative choice used by the engine) or
    /// infeasible (`false`).
    pub unknown_is_sat: bool,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            budget: SearchBudget::default(),
            enable_query_cache: true,
            enable_model_cache: true,
            query_cache_capacity: 16_384,
            model_cache_capacity: 64,
            enable_independence: true,
            unknown_is_sat: true,
        }
    }
}

/// Result of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness model.
    Sat(Assignment),
    /// Proved unsatisfiable.
    Unsat,
    /// Could not be decided within the search budget.
    Unknown,
}

impl SatResult {
    /// Whether this result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether this result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// Extracts the model if satisfiable.
    pub fn model(self) -> Option<Assignment> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Three-valued validity answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Validity {
    /// The expression is true under every model of the constraints.
    True,
    /// The expression is false under every model of the constraints.
    False,
    /// Neither (or undecided within budget).
    Unknown,
}

/// The constraint solver.
///
/// A `Solver` owns its caches and statistics behind interior mutability so
/// that the engine can treat it as a shared read-only service. Each Cloud9
/// worker owns one solver instance.
#[derive(Debug)]
pub struct Solver {
    config: SolverConfig,
    query_cache: RefCell<QueryCache>,
    model_cache: RefCell<ModelCache>,
    stats: RefCell<SolverStats>,
    /// Widths of symbols seen in queries, learned lazily from expressions.
    widths: RefCell<BTreeMap<SymbolId, Width>>,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            query_cache: RefCell::new(QueryCache::new(config.query_cache_capacity)),
            model_cache: RefCell::new(ModelCache::new(config.model_cache_capacity)),
            stats: RefCell::new(SolverStats::default()),
            widths: RefCell::new(BTreeMap::new()),
            config,
        }
    }

    /// The configuration this solver was created with.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// A snapshot of the solver statistics.
    pub fn stats(&self) -> SolverStats {
        *self.stats.borrow()
    }

    /// Registers the widths of symbols from a [`SymbolManager`]; queries
    /// mentioning unregistered symbols infer widths from the expressions that
    /// contain them.
    pub fn register_symbols(&self, manager: &SymbolManager) {
        let mut widths = self.widths.borrow_mut();
        for info in manager.iter() {
            widths.insert(info.id, info.width);
        }
    }

    /// Clears both caches, modelling a job arriving at a fresh worker.
    pub fn clear_caches(&self) {
        self.query_cache.borrow_mut().clear();
        self.model_cache.borrow_mut().clear();
    }

    fn learn_widths(&self, exprs: &[ExprRef]) {
        let mut widths = self.widths.borrow_mut();
        for e in exprs {
            learn_widths_rec(e, &mut widths);
        }
    }

    fn widths_for(&self, symbols: &BTreeSet<SymbolId>) -> BTreeMap<SymbolId, Width> {
        let widths = self.widths.borrow();
        symbols
            .iter()
            .map(|s| (*s, widths.get(s).copied().unwrap_or(Width::W8)))
            .collect()
    }

    /// Checks whether the constraint set is satisfiable and returns a model
    /// if it is.
    pub fn check_sat(&self, constraints: &ConstraintSet) -> SatResult {
        self.check_sat_with(constraints, None)
    }

    /// Checks whether `constraints ∧ extra` is satisfiable.
    pub fn check_sat_with(&self, constraints: &ConstraintSet, extra: Option<ExprRef>) -> SatResult {
        self.stats.borrow_mut().queries += 1;
        if constraints.is_trivially_false() {
            self.stats.borrow_mut().unsat += 1;
            return SatResult::Unsat;
        }
        if let Some(e) = &extra {
            if let Some(c) = e.as_const() {
                if c.is_false() {
                    self.stats.borrow_mut().unsat += 1;
                    return SatResult::Unsat;
                }
            }
        }

        // Build the working constraint list (slice to what is relevant to the
        // extra query when independence slicing is enabled). Slicing relies on
        // the engine invariant that the path-constraint set itself is always
        // satisfiable (every constraint was feasible when it was added), so
        // dropping independent groups cannot change the answer.
        let mut working: Vec<ExprRef>;
        match &extra {
            Some(e) if !e.is_concrete() => {
                if self.config.enable_independence {
                    let query_syms = collect_symbols(e);
                    working = relevant_constraints(constraints, &query_syms);
                    working.push(e.clone());
                } else {
                    working = constraints.constraints().to_vec();
                    working.push(e.clone());
                }
            }
            _ => {
                working = constraints.constraints().to_vec();
            }
        }
        self.learn_widths(&working);

        // Query cache.
        if self.config.enable_query_cache {
            if let Some(sat) = self.query_cache.borrow_mut().get(&working, None) {
                self.stats.borrow_mut().query_cache_hits += 1;
                if sat {
                    // We still need a model; fall through to the model cache /
                    // search only if the caller needs one. Returning a model
                    // from the model cache if available, else do the search.
                    if let Some(m) = self.model_cache.borrow_mut().find_satisfying(&working) {
                        self.stats.borrow_mut().model_cache_hits += 1;
                        return SatResult::Sat(m);
                    }
                } else {
                    self.stats.borrow_mut().unsat += 1;
                    return SatResult::Unsat;
                }
            }
        }

        // Model (counterexample) cache.
        if self.config.enable_model_cache {
            if let Some(m) = self.model_cache.borrow_mut().find_satisfying(&working) {
                self.stats.borrow_mut().model_cache_hits += 1;
                self.stats.borrow_mut().sat += 1;
                if self.config.enable_query_cache {
                    self.query_cache.borrow_mut().insert(&working, None, true);
                }
                return SatResult::Sat(m);
            }
        }

        // Full search over the sliced constraints.
        self.stats.borrow_mut().searches += 1;
        let symbols: BTreeSet<SymbolId> = working.iter().flat_map(collect_symbols).collect();
        let widths = self.widths_for(&symbols);
        let outcome = search(&working, &widths, self.config.budget, None);
        match outcome {
            SearchOutcome::Sat(model) => {
                // Note: when the query was sliced, the model only binds the
                // symbols of the relevant slice. Feasibility callers ignore
                // the model; model-generation callers (`get_model`,
                // `get_value`) never pass an extra query, so they always get
                // a model over the full constraint set.
                if self.config.enable_query_cache {
                    self.query_cache.borrow_mut().insert(&working, None, true);
                }
                if self.config.enable_model_cache {
                    self.model_cache.borrow_mut().insert(model.clone());
                }
                self.stats.borrow_mut().sat += 1;
                SatResult::Sat(model)
            }
            SearchOutcome::Unsat => {
                if self.config.enable_query_cache {
                    self.query_cache.borrow_mut().insert(&working, None, false);
                }
                self.stats.borrow_mut().unsat += 1;
                SatResult::Unsat
            }
            SearchOutcome::Unknown => {
                self.stats.borrow_mut().unknowns += 1;
                SatResult::Unknown
            }
        }
    }

    /// Whether `expr` *may* be true under the constraints (feasibility).
    ///
    /// `Unknown` results are resolved according to
    /// [`SolverConfig::unknown_is_sat`].
    pub fn may_be_true(&self, constraints: &ConstraintSet, expr: ExprRef) -> bool {
        match self.check_sat_with(constraints, Some(expr)) {
            SatResult::Sat(_) => true,
            SatResult::Unsat => false,
            SatResult::Unknown => self.config.unknown_is_sat,
        }
    }

    /// Whether `expr` *must* be true under the constraints (validity).
    pub fn must_be_true(&self, constraints: &ConstraintSet, expr: ExprRef) -> bool {
        !self.may_be_true(constraints, Expr::logical_not(expr))
    }

    /// Classifies `expr` as valid, unsatisfiable, or neither.
    pub fn validity(&self, constraints: &ConstraintSet, expr: ExprRef) -> Validity {
        let can_be_true = self.may_be_true(constraints, expr.clone());
        let can_be_false = self.may_be_true(constraints, Expr::logical_not(expr));
        match (can_be_true, can_be_false) {
            (true, false) => Validity::True,
            (false, true) => Validity::False,
            _ => Validity::Unknown,
        }
    }

    /// Produces a model of the constraint set (a concrete test case).
    pub fn get_model(&self, constraints: &ConstraintSet) -> Option<Assignment> {
        self.check_sat(constraints).model()
    }

    /// Produces one concrete value that `expr` can take under the constraints.
    pub fn get_value(&self, constraints: &ConstraintSet, expr: &ExprRef) -> Option<u64> {
        if let Some(c) = expr.as_const() {
            return Some(c.value());
        }
        let mut model = self.check_sat_with(constraints, None).model()?;
        // Symbols of the query that the path constraints do not mention are
        // unconstrained; bind them to zero so the evaluation is total.
        for sym in collect_symbols(expr) {
            if model.get(sym).is_none() {
                model.set(sym, 0);
            }
        }
        expr.eval(&model).map(|v| v.value())
    }
}

fn learn_widths_rec(e: &ExprRef, widths: &mut BTreeMap<SymbolId, Width>) {
    use c9_expr::ExprKind;
    match e.kind() {
        ExprKind::Sym(id) => {
            widths.insert(*id, e.width());
        }
        ExprKind::Const(_) => {}
        ExprKind::Unary(_, a) | ExprKind::ZExt(a) | ExprKind::SExt(a) | ExprKind::Extract(a, _) => {
            learn_widths_rec(a, widths)
        }
        ExprKind::Binary(_, a, b) | ExprKind::Concat(a, b) => {
            learn_widths_rec(a, widths);
            learn_widths_rec(b, widths);
        }
        ExprKind::Ite(c, t, f) => {
            learn_widths_rec(c, widths);
            learn_widths_rec(t, widths);
            learn_widths_rec(f, widths);
        }
    }
}
