//! Bit-vector constraint solver for Cloud9-RS.
//!
//! The symbolic execution engine accumulates *path constraints* — 1-bit
//! expressions over the symbolic program inputs — and needs to answer three
//! kinds of questions about them:
//!
//! * **feasibility** — can this branch condition be true given the current
//!   path constraints? ([`Solver::may_be_true`])
//! * **validity** — is this condition true on *every* input admitted by the
//!   path constraints? ([`Solver::must_be_true`])
//! * **model generation** — produce one concrete input that satisfies the
//!   path constraints, i.e. a test case ([`Solver::get_model`]).
//!
//! The solver is purpose-built for the constraints produced by the Cloud9-RS
//! targets (byte-granular parser and protocol constraints): it combines
//! construction-time simplification (done in [`c9_expr`]), independence
//! slicing, per-symbol domain refinement, and a budgeted backtracking search
//! with partial-evaluation pruning. Query results and models are cached, and
//! the cache behaviour mirrors the "constraint caches" discussion in §6 of
//! the Cloud9 paper: a state migrated to another worker arrives without its
//! cache, which is then rebuilt as a side effect of path replay.
//!
//! # Examples
//!
//! ```
//! use c9_expr::{Expr, SymbolManager, Width};
//! use c9_solver::{ConstraintSet, SatResult, Solver};
//!
//! let mut syms = SymbolManager::new();
//! let x = syms.fresh("x", Width::W8);
//! let xe = Expr::sym(x, Width::W8);
//!
//! let mut pc = ConstraintSet::new();
//! pc.push(Expr::ult(xe.clone(), Expr::const_(10, Width::W8)));
//! pc.push(Expr::ne(xe.clone(), Expr::const_(0, Width::W8)));
//!
//! let solver = Solver::new();
//! match solver.check_sat(&pc) {
//!     SatResult::Sat(model) => {
//!         let v = model.get(x).unwrap();
//!         assert!(v > 0 && v < 10);
//!     }
//!     other => panic!("expected sat, got {other:?}"),
//! }
//! ```

mod backend;
mod cache;
mod constraint;
mod domain;
mod independence;
mod search;
mod solver;
mod stats;

pub use backend::{
    alt_budget, classify, solve_feasibility, BacktrackBackend, BitBlastBackend, QueryClass,
    SolverBackend, SolverBackendKind,
};
pub use cache::{
    CacheSlice, ModelCache, QueryCache, ShardedQueryCache, SliceEntry, QUERY_CACHE_SHARDS,
};
pub use constraint::ConstraintSet;
pub use domain::{refine_domains, Domain};
pub use independence::{independent_groups, relevant_constraints};
pub use search::{SearchBudget, SearchOutcome};
pub use solver::{SatResult, Solver, SolverConfig, Validity};
pub use stats::{AtomicSolverStats, SolverStats};

#[cfg(test)]
mod tests;
