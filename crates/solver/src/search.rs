//! Budgeted backtracking search for satisfying assignments.

use crate::domain::{refine_domains, Domain};
use c9_expr::{collect_symbols, Assignment, ExprRef, SymbolId, Width};
use std::collections::{BTreeMap, BTreeSet};

/// Resource limits on a single search.
#[derive(Clone, Copy, Debug)]
pub struct SearchBudget {
    /// Maximum number of (symbol, value) assignments tried before giving up.
    pub max_nodes: u64,
}

impl Default for SearchBudget {
    fn default() -> SearchBudget {
        SearchBudget { max_nodes: 500_000 }
    }
}

/// Outcome of a backtracking search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A satisfying assignment was found.
    Sat(Assignment),
    /// The constraints are unsatisfiable (proved by exhausting complete
    /// domains).
    Unsat,
    /// The search ran out of budget, or a domain could not be enumerated
    /// exhaustively; nothing was proved.
    Unknown,
}

/// Searches for an assignment satisfying all `constraints`.
///
/// `widths` maps every symbol mentioned by the constraints to its width;
/// `seed` optionally provides initial values to try first for each symbol
/// (used by the counterexample cache to bias the search towards a known
/// nearby model).
pub fn search(
    constraints: &[ExprRef],
    widths: &BTreeMap<SymbolId, Width>,
    budget: SearchBudget,
    seed: Option<&Assignment>,
) -> SearchOutcome {
    // Trivial case: no constraints at all.
    if constraints.is_empty() {
        return SearchOutcome::Sat(Assignment::new());
    }

    let mut domains = refine_domains(constraints, widths);
    if let Some(seed) = seed {
        for (sym, value) in seed.iter() {
            if let Some(dom) = domains.get_mut(&sym) {
                dom.suggest(value);
            }
        }
    }

    // Fast-path: any empty domain over an exhaustively-known interval proves
    // unsatisfiability outright.
    for dom in domains.values() {
        if dom.is_empty() {
            return SearchOutcome::Unsat;
        }
    }

    // Variable ordering: most constrained (smallest search size) first, then
    // by how many constraints mention the symbol.
    let constraint_syms: Vec<BTreeSet<SymbolId>> =
        constraints.iter().map(collect_symbols).collect();
    let mut mention_count: BTreeMap<SymbolId, usize> = BTreeMap::new();
    for syms in &constraint_syms {
        for s in syms {
            *mention_count.entry(*s).or_insert(0) += 1;
        }
    }
    let mut order: Vec<SymbolId> = widths.keys().copied().collect();
    order.sort_by_key(|s| {
        let size = domains.get(s).map(|d| d.search_size()).unwrap_or(u64::MAX);
        let mentions = mention_count.get(s).copied().unwrap_or(0);
        (size, usize::MAX - mentions, s.0)
    });

    // Pre-compute, for each depth, which constraints become fully bound once
    // the symbols up to that depth are assigned — those are the only ones
    // worth (re)checking at that depth for definite falseness.
    let assigned_prefix: Vec<BTreeSet<SymbolId>> = {
        let mut acc = BTreeSet::new();
        let mut prefixes = Vec::with_capacity(order.len() + 1);
        prefixes.push(acc.clone());
        for s in &order {
            acc.insert(*s);
            prefixes.push(acc.clone());
        }
        prefixes
    };
    let exhaustive_all = order
        .iter()
        .all(|s| domains.get(s).map(|d| d.exhaustive).unwrap_or(false));

    let mut nodes: u64 = 0;
    let mut assignment = Assignment::new();
    let outcome = dfs(
        0,
        &order,
        &domains,
        constraints,
        &constraint_syms,
        &assigned_prefix,
        &mut assignment,
        &mut nodes,
        budget.max_nodes,
    );
    match outcome {
        DfsResult::Found(asg) => SearchOutcome::Sat(asg),
        DfsResult::Exhausted => {
            if exhaustive_all {
                SearchOutcome::Unsat
            } else {
                SearchOutcome::Unknown
            }
        }
        DfsResult::BudgetExceeded => SearchOutcome::Unknown,
    }
}

enum DfsResult {
    Found(Assignment),
    Exhausted,
    BudgetExceeded,
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    depth: usize,
    order: &[SymbolId],
    domains: &BTreeMap<SymbolId, Domain>,
    constraints: &[ExprRef],
    constraint_syms: &[BTreeSet<SymbolId>],
    assigned_prefix: &[BTreeSet<SymbolId>],
    assignment: &mut Assignment,
    nodes: &mut u64,
    max_nodes: u64,
) -> DfsResult {
    if depth == order.len() {
        // All symbols assigned: the prefix checks guarantee every constraint
        // already evaluated to true.
        return DfsResult::Found(assignment.clone());
    }
    let sym = order[depth];
    let dom = &domains[&sym];
    for value in dom.iter_values() {
        *nodes += 1;
        if *nodes > max_nodes {
            return DfsResult::BudgetExceeded;
        }
        assignment.set(sym, value);
        // Check constraints that are now fully bound (or that can already be
        // proved false by partial evaluation).
        let prefix = &assigned_prefix[depth + 1];
        let mut contradicted = false;
        for (c, syms) in constraints.iter().zip(constraint_syms) {
            // Skip constraints not mentioning the just-assigned symbol: they
            // were checked at an earlier depth (if bound) or will be later.
            if !syms.contains(&sym) {
                continue;
            }
            if syms.is_subset(prefix) {
                if c.eval_bool(assignment) == Some(false) {
                    contradicted = true;
                    break;
                }
            } else if c.eval_bool(assignment) == Some(false) {
                // Partial evaluation may still prove definite falseness.
                contradicted = true;
                break;
            }
        }
        if !contradicted {
            match dfs(
                depth + 1,
                order,
                domains,
                constraints,
                constraint_syms,
                assigned_prefix,
                assignment,
                nodes,
                max_nodes,
            ) {
                DfsResult::Exhausted => {}
                other => return other,
            }
        }
        assignment.unset(sym);
    }
    DfsResult::Exhausted
}
