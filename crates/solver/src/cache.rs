//! Query and model caches.
//!
//! The Cloud9 paper (§6, "Constraint Caches") notes that states transferred
//! between workers arrive without the source worker's solver cache, and that
//! the relevant part of the cache is rebuilt during path replay. These caches
//! are therefore owned by the [`crate::Solver`] instance of each worker, not
//! by the execution states.

use c9_expr::{Assignment, ExprRef};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Computes a stable fingerprint for a query (constraints + optional query
/// expression). Colliding fingerprints are disambiguated by storing the full
/// key alongside the entry.
fn fingerprint(constraints: &[ExprRef], query: Option<&ExprRef>) -> u64 {
    let mut h = DefaultHasher::new();
    for c in constraints {
        c.hash(&mut h);
    }
    if let Some(q) = query {
        1u8.hash(&mut h);
        q.hash(&mut h);
    }
    h.finish()
}

/// One cached query: the constraint set, the optional extra query
/// expression, and the recorded answer.
type CacheEntry = (Vec<ExprRef>, Option<ExprRef>, bool);

/// Cache of satisfiability answers keyed by the exact constraint set.
#[derive(Debug, Default)]
pub struct QueryCache {
    entries: HashMap<u64, Vec<CacheEntry>>,
    hits: u64,
    misses: u64,
    capacity: usize,
    len: usize,
}

impl QueryCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity,
            ..QueryCache::default()
        }
    }

    /// Looks up a previously-computed satisfiability answer.
    pub fn get(&mut self, constraints: &[ExprRef], query: Option<&ExprRef>) -> Option<bool> {
        let fp = fingerprint(constraints, query);
        let found = self.entries.get(&fp).and_then(|bucket| {
            bucket
                .iter()
                .find(|(c, q, _)| c.as_slice() == constraints && q.as_ref() == query)
                .map(|(_, _, sat)| *sat)
        });
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Records a satisfiability answer.
    pub fn insert(&mut self, constraints: &[ExprRef], query: Option<&ExprRef>, sat: bool) {
        if self.len >= self.capacity {
            // Simple wholesale eviction: the cache is an optimization, and
            // path replay rebuilds it cheaply (paper §6).
            self.entries.clear();
            self.len = 0;
        }
        let fp = fingerprint(constraints, query);
        self.entries
            .entry(fp)
            .or_default()
            .push((constraints.to_vec(), query.cloned(), sat));
        self.len += 1;
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all entries (used to model a state arriving at a new worker).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.len = 0;
    }
}

/// Cache of recent satisfying assignments (counterexample cache).
///
/// Before running a full search, the solver tries each cached model against
/// the new constraint set; parser-style constraints along neighbouring paths
/// frequently share models, so this avoids many searches outright.
#[derive(Debug, Default)]
pub struct ModelCache {
    models: Vec<Assignment>,
    capacity: usize,
    next: usize,
    hits: u64,
}

impl ModelCache {
    /// Creates a cache that keeps up to `capacity` recent models.
    pub fn new(capacity: usize) -> ModelCache {
        ModelCache {
            models: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            hits: 0,
        }
    }

    /// Returns the first cached model satisfying all `constraints`, if any.
    pub fn find_satisfying(&mut self, constraints: &[ExprRef]) -> Option<Assignment> {
        let found = self
            .models
            .iter()
            .find(|m| c9_expr::eval_constraints(constraints, m) == Some(true))
            .cloned();
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Records a model, evicting the oldest when at capacity.
    pub fn insert(&mut self, model: Assignment) {
        if self.capacity == 0 {
            return;
        }
        if self.models.len() < self.capacity {
            self.models.push(model);
        } else {
            self.models[self.next] = model;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Number of times a cached model answered a query.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of models currently cached.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the cache holds no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Drops all cached models.
    pub fn clear(&mut self) {
        self.models.clear();
        self.next = 0;
    }
}
