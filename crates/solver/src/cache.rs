//! Query and model caches.
//!
//! The Cloud9 paper (§6, "Constraint Caches") notes that states transferred
//! between workers arrive without the source worker's solver cache, and that
//! the relevant part of the cache is rebuilt during path replay. These caches
//! are therefore owned by the [`crate::Solver`] instance of each worker, not
//! by the execution states.
//!
//! One solver is shared by every executor thread of a worker, so the query
//! cache is *lock-striped*: queries are routed to one of
//! [`QUERY_CACHE_SHARDS`] independently locked [`QueryCache`] shards by
//! their fingerprint, so concurrent threads rarely contend on the same
//! lock and all threads profit from each other's cached answers.

use c9_expr::{collect_symbols, Assignment, ExprRef, SymbolId};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards of a [`ShardedQueryCache`].
pub const QUERY_CACHE_SHARDS: usize = 16;

/// Computes a stable fingerprint for a query (constraints + optional query
/// expression). Colliding fingerprints are disambiguated by storing the full
/// key alongside the entry.
fn fingerprint(constraints: &[ExprRef], query: Option<&ExprRef>) -> u64 {
    let mut h = DefaultHasher::new();
    for c in constraints {
        c.hash(&mut h);
    }
    if let Some(q) = query {
        1u8.hash(&mut h);
        q.hash(&mut h);
    }
    h.finish()
}

/// One cached query: the full key, the recorded satisfiability answer, the
/// canonical model (backfilled lazily for sat entries when a caller needs
/// one), the second-chance reference bit, and whether the entry arrived via
/// a [`CacheSlice`] import rather than local solving.
#[derive(Debug)]
struct CacheEntry {
    constraints: Vec<ExprRef>,
    query: Option<ExprRef>,
    sat: bool,
    model: Option<Assignment>,
    referenced: bool,
    imported: bool,
}

impl CacheEntry {
    fn matches(&self, constraints: &[ExprRef], query: Option<&ExprRef>) -> bool {
        self.constraints.as_slice() == constraints && self.query.as_ref() == query
    }
}

/// One exported cache entry: the full query key, the satisfiability bit,
/// and — for sat entries that have one — the canonical model. The `hot`
/// flag carries the source cache's clock reference bit, so receivers and
/// the coordinator's cluster hot set can rank entries by observed reuse.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceEntry {
    /// The constraint set the answer is keyed on (exact match required).
    pub constraints: Vec<ExprRef>,
    /// The optional extra query expression of the key.
    pub query: Option<ExprRef>,
    /// The recorded satisfiability answer.
    pub sat: bool,
    /// The canonical model, when one was computed for this exact key.
    /// Authoritative on import *because* the key match is exact: a
    /// canonical model is a pure function of the sliced constraint set.
    pub model: Option<Assignment>,
    /// Whether the source cache's reference bit was set (a recent hit).
    pub hot: bool,
}

impl SliceEntry {
    /// The fingerprint routing this entry to its cache shard. Fingerprints
    /// use a fixed-key hasher, so they agree across workers and processes.
    pub fn fingerprint(&self) -> u64 {
        fingerprint(&self.constraints, self.query.as_ref())
    }

    /// Whether any of the entry's symbols appears in `footprint`.
    fn touches(&self, footprint: &BTreeSet<SymbolId>) -> bool {
        self.constraints
            .iter()
            .chain(self.query.iter())
            .any(|e| collect_symbols(e).iter().any(|s| footprint.contains(s)))
    }
}

/// A bounded, transferable slice of a query cache.
///
/// Slices ride on `JobBatch` (the entries relevant to the exported jobs),
/// on `StatusReport` (each worker's hottest entries, gossiped to the
/// coordinator), and on the coordinator's rebroadcast cluster hot set.
/// Since cached answers and canonical models are pure functions of their
/// constraint sets, merging a slice into a live cache can never change what
/// any query returns — only whether it is answered from cache.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSlice {
    /// The exported entries.
    pub entries: Vec<SliceEntry>,
}

impl CacheSlice {
    /// Number of entries in the slice.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the slice carries no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another slice into this one: a key-join union where the `hot`
    /// bits are OR-ed and a present canonical model wins over an absent
    /// one. Because answers and canonical models are pure functions of the
    /// key, identical keys always agree, which makes this merge associative
    /// and commutative (the entry order is normalized by fingerprint).
    /// Returns how many of `other`'s entries were new keys — callers use
    /// this to rebroadcast a merged hot set only when it actually grew.
    pub fn merge(&mut self, other: &CacheSlice) -> u64 {
        let mut buckets: BTreeMap<u64, Vec<SliceEntry>> = BTreeMap::new();
        let mut added = 0u64;
        let own: Vec<(SliceEntry, bool)> = self.entries.drain(..).map(|e| (e, false)).collect();
        for (entry, foreign) in own
            .into_iter()
            .chain(other.entries.iter().cloned().map(|e| (e, true)))
        {
            let bucket = buckets.entry(entry.fingerprint()).or_default();
            match bucket
                .iter_mut()
                .find(|e| e.constraints == entry.constraints && e.query == entry.query)
            {
                Some(existing) => {
                    existing.hot |= entry.hot;
                    if existing.model.is_none() {
                        existing.model = entry.model;
                    }
                }
                None => {
                    if foreign {
                        added += 1;
                    }
                    bucket.push(entry);
                }
            }
        }
        // Colliding fingerprints (distinct keys, same hash) get a total
        // order via their debug rendering so the result is independent of
        // which slice contributed an entry first.
        for bucket in buckets.values_mut() {
            if bucket.len() > 1 {
                bucket.sort_by_cached_key(|e| format!("{:?}{:?}", e.constraints, e.query));
            }
        }
        self.entries = buckets.into_values().flatten().collect();
        added
    }

    /// Bounds the slice to its `max` hottest entries, deterministically:
    /// hot entries first, then by fingerprint. The rank key is cached per
    /// entry — the fingerprint hashes whole constraint trees, far too
    /// expensive to recompute at every comparison.
    pub fn truncate_ranked(&mut self, max: usize) {
        self.entries
            .sort_by_cached_key(|e| (!e.hot, e.fingerprint()));
        self.entries.truncate(max);
    }

    /// Drops entries none of whose symbols appear in `footprint`.
    pub fn retain_footprint(&mut self, footprint: &BTreeSet<SymbolId>) {
        self.entries.retain(|e| e.touches(footprint));
    }
}

/// Cache of satisfiability answers keyed by the exact constraint set, with
/// segmented second-chance (clock) eviction.
///
/// Hitting capacity evicts one *segment* (an eighth of the capacity) of
/// cold entries instead of dropping the whole cache: entries whose
/// reference bit was set by a hit since the clock hand last passed them get
/// a second chance and survive, so the hot part of the cache is preserved
/// across overflows.
#[derive(Debug, Default)]
pub struct QueryCache {
    entries: HashMap<u64, Vec<CacheEntry>>,
    /// Clock order of fingerprint buckets; each bucket appears once.
    clock: VecDeque<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Hits served by an entry that arrived via a slice import.
    warm_hits: u64,
    /// Entries added (not merely updated) by slice imports.
    imported_entries: u64,
    /// Entries added by local solving (monotonic — evictions do not
    /// decrement it), so exporters can tell whether there is anything new
    /// to gossip since their last export.
    own_insertions: u64,
    capacity: usize,
    len: usize,
}

impl QueryCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity,
            ..QueryCache::default()
        }
    }

    /// Looks up a previously-computed answer: the satisfiability bit plus
    /// (when `want_model`) the canonical model recorded for a sat entry.
    /// Feasibility lookups pass `want_model: false` to skip the model
    /// clone on the hot path.
    pub fn get(
        &mut self,
        constraints: &[ExprRef],
        query: Option<&ExprRef>,
        want_model: bool,
    ) -> Option<(bool, Option<Assignment>)> {
        self.get_with_fp(
            fingerprint(constraints, query),
            constraints,
            query,
            want_model,
        )
    }

    /// [`QueryCache::get`] with the fingerprint already computed (the
    /// sharded wrapper hashes once for routing and passes it down).
    fn get_with_fp(
        &mut self,
        fp: u64,
        constraints: &[ExprRef],
        query: Option<&ExprRef>,
        want_model: bool,
    ) -> Option<(bool, Option<Assignment>)> {
        let found = self.entries.get_mut(&fp).and_then(|bucket| {
            bucket
                .iter_mut()
                .find(|e| e.matches(constraints, query))
                .map(|e| {
                    e.referenced = true;
                    (
                        e.sat,
                        if want_model { e.model.clone() } else { None },
                        e.imported,
                    )
                })
        });
        match found {
            Some((sat, model, imported)) => {
                self.hits += 1;
                if imported {
                    self.warm_hits += 1;
                }
                Some((sat, model))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records an answer (updating the entry in place if the key is already
    /// cached; an existing canonical model is never discarded).
    pub fn insert(
        &mut self,
        constraints: &[ExprRef],
        query: Option<&ExprRef>,
        sat: bool,
        model: Option<Assignment>,
    ) {
        self.insert_with_fp(
            fingerprint(constraints, query),
            constraints,
            query,
            sat,
            model,
        )
    }

    /// [`QueryCache::insert`] with the fingerprint already computed.
    fn insert_with_fp(
        &mut self,
        fp: u64,
        constraints: &[ExprRef],
        query: Option<&ExprRef>,
        sat: bool,
        model: Option<Assignment>,
    ) {
        if let Some(bucket) = self.entries.get_mut(&fp) {
            if let Some(entry) = bucket.iter_mut().find(|e| e.matches(constraints, query)) {
                entry.sat = sat;
                if model.is_some() {
                    entry.model = model;
                }
                entry.referenced = true;
                return;
            }
        }
        if self.len >= self.capacity {
            self.evict_segment();
        }
        let bucket = self.entries.entry(fp).or_default();
        if bucket.is_empty() {
            self.clock.push_back(fp);
        }
        bucket.push(CacheEntry {
            constraints: constraints.to_vec(),
            query: query.cloned(),
            sat,
            model,
            referenced: false,
            imported: false,
        });
        self.len += 1;
        self.own_insertions += 1;
    }

    /// Absorbs one imported slice entry. Existing entries are updated in
    /// place — the canonical model is backfilled if absent, and the clock
    /// reference bit is left exactly as it was. New entries are admitted
    /// only while there is spare capacity: an import never evicts resident
    /// entries (it is opportunistic warmth, not a replacement policy), so a
    /// large slice cannot flush a busy shard. Returns whether a new entry
    /// was added.
    fn import_entry(&mut self, fp: u64, entry: &SliceEntry) -> bool {
        if let Some(bucket) = self.entries.get_mut(&fp) {
            if let Some(existing) = bucket
                .iter_mut()
                .find(|e| e.matches(&entry.constraints, entry.query.as_ref()))
            {
                // The sat bit necessarily agrees (answers are pure functions
                // of the key); only the canonical model can be news.
                if existing.model.is_none() && entry.model.is_some() {
                    existing.model = entry.model.clone();
                }
                return false;
            }
        }
        if self.len >= self.capacity {
            return false;
        }
        let bucket = self.entries.entry(fp).or_default();
        if bucket.is_empty() {
            self.clock.push_back(fp);
        }
        bucket.push(CacheEntry {
            constraints: entry.constraints.clone(),
            query: entry.query.clone(),
            sat: entry.sat,
            model: entry.model.clone(),
            // Imported entries start cold: they earn their second chance
            // through local hits, like any freshly inserted entry.
            referenced: false,
            imported: true,
        });
        self.len += 1;
        self.imported_entries += 1;
        true
    }

    /// Appends every *locally solved* entry to `out` as a [`SliceEntry`],
    /// carrying the clock reference bit as the `hot` flag. Entries that
    /// arrived via a slice import are skipped: gossip ships only what this
    /// cache learned itself, otherwise every worker would echo the cluster
    /// hot set back at the coordinator and slices would never converge.
    fn export_entries(&self, out: &mut Vec<SliceEntry>) {
        for bucket in self.entries.values() {
            for e in bucket {
                if e.imported {
                    continue;
                }
                out.push(SliceEntry {
                    constraints: e.constraints.clone(),
                    query: e.query.clone(),
                    sat: e.sat,
                    model: e.model.clone(),
                    hot: e.referenced,
                });
            }
        }
    }

    /// Evicts cold entries until a segment (an eighth of the capacity, at
    /// least one entry) is free. Buckets whose reference bit is set get the
    /// bit cleared and are put back at the clock tail — the second chance.
    fn evict_segment(&mut self) {
        let segment = (self.capacity / 8).max(1);
        let target = self.capacity.saturating_sub(segment);
        while self.len > target {
            let Some(fp) = self.clock.pop_front() else {
                break;
            };
            let Some(bucket) = self.entries.get_mut(&fp) else {
                continue; // stale hand position (bucket already gone)
            };
            if bucket.iter().any(|e| e.referenced) {
                for e in bucket.iter_mut() {
                    e.referenced = false;
                }
                self.clock.push_back(fp);
            } else {
                let removed = self.entries.remove(&fp).map(|b| b.len()).unwrap_or(0);
                self.len -= removed;
                self.evictions += removed as u64;
            }
        }
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of hits served by imported entries so far.
    pub fn warm_hits(&self) -> u64 {
        self.warm_hits
    }

    /// Number of entries added by slice imports so far.
    pub fn imported_entries(&self) -> u64 {
        self.imported_entries
    }

    /// Entries this cache added from local solving so far (monotonic).
    pub fn own_insertions(&self) -> u64 {
        self.own_insertions
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all entries (used to model a state arriving at a new worker).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.clock.clear();
        self.len = 0;
    }
}

/// A query cache striped over [`QUERY_CACHE_SHARDS`] independently locked
/// shards, routed by query fingerprint. This is what makes the solver
/// [`Sync`]: every executor thread of a worker shares one logical cache
/// instead of rebuilding a private one.
#[derive(Debug)]
pub struct ShardedQueryCache {
    shards: Vec<Mutex<QueryCache>>,
}

impl ShardedQueryCache {
    /// Creates a sharded cache bounded to roughly `capacity` entries in
    /// total (each shard holds its even share).
    pub fn new(capacity: usize) -> ShardedQueryCache {
        let per_shard = capacity.div_ceil(QUERY_CACHE_SHARDS);
        ShardedQueryCache {
            shards: (0..QUERY_CACHE_SHARDS)
                .map(|_| Mutex::new(QueryCache::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, fp: u64) -> &Mutex<QueryCache> {
        &self.shards[(fp % self.shards.len() as u64) as usize]
    }

    /// Looks up a previously-computed answer in the owning shard; the
    /// canonical model is only cloned when `want_model` is set.
    pub fn get(
        &self,
        constraints: &[ExprRef],
        query: Option<&ExprRef>,
        want_model: bool,
    ) -> Option<(bool, Option<Assignment>)> {
        let fp = fingerprint(constraints, query);
        self.shard(fp)
            .lock()
            .expect("query cache shard poisoned")
            .get_with_fp(fp, constraints, query, want_model)
    }

    /// Records an answer in the owning shard.
    pub fn insert(
        &self,
        constraints: &[ExprRef],
        query: Option<&ExprRef>,
        sat: bool,
        model: Option<Assignment>,
    ) {
        let fp = fingerprint(constraints, query);
        self.shard(fp)
            .lock()
            .expect("query cache shard poisoned")
            .insert_with_fp(fp, constraints, query, sat, model);
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("query cache shard poisoned").len())
            .sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total hits across all shards.
    pub fn hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("query cache shard poisoned").hits())
            .sum()
    }

    /// Total hits served by imported entries, across all shards.
    pub fn warm_hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("query cache shard poisoned").warm_hits())
            .sum()
    }

    /// Total entries added by slice imports, across all shards.
    pub fn imported_entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("query cache shard poisoned")
                    .imported_entries()
            })
            .sum()
    }

    /// Total entries added by local solving across all shards (monotonic):
    /// a cheap generation counter for "anything new to gossip since the
    /// last export?" checks.
    pub fn own_insertions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("query cache shard poisoned")
                    .own_insertions()
            })
            .sum()
    }

    /// Exports the `max` hottest entries (clock reference bit first, then
    /// fingerprint) across all shards as a transferable [`CacheSlice`].
    pub fn export_slice(&self, max: usize) -> CacheSlice {
        let mut slice = CacheSlice::default();
        for shard in &self.shards {
            shard
                .lock()
                .expect("query cache shard poisoned")
                .export_entries(&mut slice.entries);
        }
        slice.truncate_ranked(max);
        slice
    }

    /// Exports the `max` hottest entries whose constraint footprint touches
    /// any of the given symbols — the slice relevant to a path prefix whose
    /// constraints mention exactly those symbols.
    pub fn export_slice_for(&self, footprint: &BTreeSet<SymbolId>, max: usize) -> CacheSlice {
        let mut slice = CacheSlice::default();
        for shard in &self.shards {
            shard
                .lock()
                .expect("query cache shard poisoned")
                .export_entries(&mut slice.entries);
        }
        slice.retain_footprint(footprint);
        slice.truncate_ranked(max);
        slice
    }

    /// Merges a slice into the live cache (see `QueryCache::import_entry`
    /// for the exact rules: in-place model backfill, no eviction of
    /// residents, reference bits untouched). Returns the number of entries
    /// newly added.
    pub fn merge_slice(&self, slice: &CacheSlice) -> u64 {
        let mut added = 0;
        for entry in &slice.entries {
            let fp = entry.fingerprint();
            if self
                .shard(fp)
                .lock()
                .expect("query cache shard poisoned")
                .import_entry(fp, entry)
            {
                added += 1;
            }
        }
        added
    }

    /// Drops all entries from every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("query cache shard poisoned").clear();
        }
    }
}

/// Cache of recent satisfying assignments (counterexample cache).
///
/// Before running a full search, the solver tries each cached model against
/// the new constraint set; parser-style constraints along neighbouring paths
/// frequently share models, so this avoids many searches outright. Lookups
/// take `&self` (the hit counter is atomic) so concurrent readers can scan
/// under a read lock.
#[derive(Debug, Default)]
pub struct ModelCache {
    models: Vec<Assignment>,
    capacity: usize,
    next: usize,
    hits: AtomicU64,
}

impl ModelCache {
    /// Creates a cache that keeps up to `capacity` recent models.
    pub fn new(capacity: usize) -> ModelCache {
        ModelCache {
            models: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            hits: AtomicU64::new(0),
        }
    }

    /// Returns the first cached model satisfying all `constraints`, if any.
    pub fn find_satisfying(&self, constraints: &[ExprRef]) -> Option<Assignment> {
        let found = self
            .models
            .iter()
            .find(|m| c9_expr::eval_constraints(constraints, m) == Some(true))
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records a model, evicting the oldest when at capacity.
    pub fn insert(&mut self, model: Assignment) {
        if self.capacity == 0 {
            return;
        }
        if self.models.len() < self.capacity {
            self.models.push(model);
        } else {
            self.models[self.next] = model;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Number of times a cached model answered a query.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of models currently cached.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the cache holds no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Drops all cached models.
    pub fn clear(&mut self) {
        self.models.clear();
        self.next = 0;
    }
}
