//! Query and model caches.
//!
//! The Cloud9 paper (§6, "Constraint Caches") notes that states transferred
//! between workers arrive without the source worker's solver cache, and that
//! the relevant part of the cache is rebuilt during path replay. These caches
//! are therefore owned by the [`crate::Solver`] instance of each worker, not
//! by the execution states.
//!
//! One solver is shared by every executor thread of a worker, so the query
//! cache is *lock-striped*: queries are routed to one of
//! [`QUERY_CACHE_SHARDS`] independently locked [`QueryCache`] shards by
//! their fingerprint, so concurrent threads rarely contend on the same
//! lock and all threads profit from each other's cached answers.

use c9_expr::{Assignment, ExprRef};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards of a [`ShardedQueryCache`].
pub const QUERY_CACHE_SHARDS: usize = 16;

/// Computes a stable fingerprint for a query (constraints + optional query
/// expression). Colliding fingerprints are disambiguated by storing the full
/// key alongside the entry.
fn fingerprint(constraints: &[ExprRef], query: Option<&ExprRef>) -> u64 {
    let mut h = DefaultHasher::new();
    for c in constraints {
        c.hash(&mut h);
    }
    if let Some(q) = query {
        1u8.hash(&mut h);
        q.hash(&mut h);
    }
    h.finish()
}

/// One cached query: the full key, the recorded satisfiability answer, the
/// canonical model (backfilled lazily for sat entries when a caller needs
/// one), and the second-chance reference bit.
#[derive(Debug)]
struct CacheEntry {
    constraints: Vec<ExprRef>,
    query: Option<ExprRef>,
    sat: bool,
    model: Option<Assignment>,
    referenced: bool,
}

impl CacheEntry {
    fn matches(&self, constraints: &[ExprRef], query: Option<&ExprRef>) -> bool {
        self.constraints.as_slice() == constraints && self.query.as_ref() == query
    }
}

/// Cache of satisfiability answers keyed by the exact constraint set, with
/// segmented second-chance (clock) eviction.
///
/// Hitting capacity evicts one *segment* (an eighth of the capacity) of
/// cold entries instead of dropping the whole cache: entries whose
/// reference bit was set by a hit since the clock hand last passed them get
/// a second chance and survive, so the hot part of the cache is preserved
/// across overflows.
#[derive(Debug, Default)]
pub struct QueryCache {
    entries: HashMap<u64, Vec<CacheEntry>>,
    /// Clock order of fingerprint buckets; each bucket appears once.
    clock: VecDeque<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
    capacity: usize,
    len: usize,
}

impl QueryCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity,
            ..QueryCache::default()
        }
    }

    /// Looks up a previously-computed answer: the satisfiability bit plus
    /// (when `want_model`) the canonical model recorded for a sat entry.
    /// Feasibility lookups pass `want_model: false` to skip the model
    /// clone on the hot path.
    pub fn get(
        &mut self,
        constraints: &[ExprRef],
        query: Option<&ExprRef>,
        want_model: bool,
    ) -> Option<(bool, Option<Assignment>)> {
        self.get_with_fp(
            fingerprint(constraints, query),
            constraints,
            query,
            want_model,
        )
    }

    /// [`QueryCache::get`] with the fingerprint already computed (the
    /// sharded wrapper hashes once for routing and passes it down).
    fn get_with_fp(
        &mut self,
        fp: u64,
        constraints: &[ExprRef],
        query: Option<&ExprRef>,
        want_model: bool,
    ) -> Option<(bool, Option<Assignment>)> {
        let found = self.entries.get_mut(&fp).and_then(|bucket| {
            bucket
                .iter_mut()
                .find(|e| e.matches(constraints, query))
                .map(|e| {
                    e.referenced = true;
                    (e.sat, if want_model { e.model.clone() } else { None })
                })
        });
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Records an answer (updating the entry in place if the key is already
    /// cached; an existing canonical model is never discarded).
    pub fn insert(
        &mut self,
        constraints: &[ExprRef],
        query: Option<&ExprRef>,
        sat: bool,
        model: Option<Assignment>,
    ) {
        self.insert_with_fp(
            fingerprint(constraints, query),
            constraints,
            query,
            sat,
            model,
        )
    }

    /// [`QueryCache::insert`] with the fingerprint already computed.
    fn insert_with_fp(
        &mut self,
        fp: u64,
        constraints: &[ExprRef],
        query: Option<&ExprRef>,
        sat: bool,
        model: Option<Assignment>,
    ) {
        if let Some(bucket) = self.entries.get_mut(&fp) {
            if let Some(entry) = bucket.iter_mut().find(|e| e.matches(constraints, query)) {
                entry.sat = sat;
                if model.is_some() {
                    entry.model = model;
                }
                entry.referenced = true;
                return;
            }
        }
        if self.len >= self.capacity {
            self.evict_segment();
        }
        let bucket = self.entries.entry(fp).or_default();
        if bucket.is_empty() {
            self.clock.push_back(fp);
        }
        bucket.push(CacheEntry {
            constraints: constraints.to_vec(),
            query: query.cloned(),
            sat,
            model,
            referenced: false,
        });
        self.len += 1;
    }

    /// Evicts cold entries until a segment (an eighth of the capacity, at
    /// least one entry) is free. Buckets whose reference bit is set get the
    /// bit cleared and are put back at the clock tail — the second chance.
    fn evict_segment(&mut self) {
        let segment = (self.capacity / 8).max(1);
        let target = self.capacity.saturating_sub(segment);
        while self.len > target {
            let Some(fp) = self.clock.pop_front() else {
                break;
            };
            let Some(bucket) = self.entries.get_mut(&fp) else {
                continue; // stale hand position (bucket already gone)
            };
            if bucket.iter().any(|e| e.referenced) {
                for e in bucket.iter_mut() {
                    e.referenced = false;
                }
                self.clock.push_back(fp);
            } else {
                let removed = self.entries.remove(&fp).map(|b| b.len()).unwrap_or(0);
                self.len -= removed;
                self.evictions += removed as u64;
            }
        }
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all entries (used to model a state arriving at a new worker).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.clock.clear();
        self.len = 0;
    }
}

/// A query cache striped over [`QUERY_CACHE_SHARDS`] independently locked
/// shards, routed by query fingerprint. This is what makes the solver
/// [`Sync`]: every executor thread of a worker shares one logical cache
/// instead of rebuilding a private one.
#[derive(Debug)]
pub struct ShardedQueryCache {
    shards: Vec<Mutex<QueryCache>>,
}

impl ShardedQueryCache {
    /// Creates a sharded cache bounded to roughly `capacity` entries in
    /// total (each shard holds its even share).
    pub fn new(capacity: usize) -> ShardedQueryCache {
        let per_shard = capacity.div_ceil(QUERY_CACHE_SHARDS);
        ShardedQueryCache {
            shards: (0..QUERY_CACHE_SHARDS)
                .map(|_| Mutex::new(QueryCache::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, fp: u64) -> &Mutex<QueryCache> {
        &self.shards[(fp % self.shards.len() as u64) as usize]
    }

    /// Looks up a previously-computed answer in the owning shard; the
    /// canonical model is only cloned when `want_model` is set.
    pub fn get(
        &self,
        constraints: &[ExprRef],
        query: Option<&ExprRef>,
        want_model: bool,
    ) -> Option<(bool, Option<Assignment>)> {
        let fp = fingerprint(constraints, query);
        self.shard(fp)
            .lock()
            .expect("query cache shard poisoned")
            .get_with_fp(fp, constraints, query, want_model)
    }

    /// Records an answer in the owning shard.
    pub fn insert(
        &self,
        constraints: &[ExprRef],
        query: Option<&ExprRef>,
        sat: bool,
        model: Option<Assignment>,
    ) {
        let fp = fingerprint(constraints, query);
        self.shard(fp)
            .lock()
            .expect("query cache shard poisoned")
            .insert_with_fp(fp, constraints, query, sat, model);
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("query cache shard poisoned").len())
            .sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total hits across all shards.
    pub fn hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("query cache shard poisoned").hits())
            .sum()
    }

    /// Drops all entries from every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("query cache shard poisoned").clear();
        }
    }
}

/// Cache of recent satisfying assignments (counterexample cache).
///
/// Before running a full search, the solver tries each cached model against
/// the new constraint set; parser-style constraints along neighbouring paths
/// frequently share models, so this avoids many searches outright. Lookups
/// take `&self` (the hit counter is atomic) so concurrent readers can scan
/// under a read lock.
#[derive(Debug, Default)]
pub struct ModelCache {
    models: Vec<Assignment>,
    capacity: usize,
    next: usize,
    hits: AtomicU64,
}

impl ModelCache {
    /// Creates a cache that keeps up to `capacity` recent models.
    pub fn new(capacity: usize) -> ModelCache {
        ModelCache {
            models: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            hits: AtomicU64::new(0),
        }
    }

    /// Returns the first cached model satisfying all `constraints`, if any.
    pub fn find_satisfying(&self, constraints: &[ExprRef]) -> Option<Assignment> {
        let found = self
            .models
            .iter()
            .find(|m| c9_expr::eval_constraints(constraints, m) == Some(true))
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records a model, evicting the oldest when at capacity.
    pub fn insert(&mut self, model: Assignment) {
        if self.capacity == 0 {
            return;
        }
        if self.models.len() < self.capacity {
            self.models.push(model);
        } else {
            self.models[self.next] = model;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Number of times a cached model answered a query.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of models currently cached.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the cache holds no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Drops all cached models.
    pub fn clear(&mut self) {
        self.models.clear();
        self.next = 0;
    }
}
