//! Structural validation of programs.

use crate::program::{BlockId, FuncId, Instr, Operand, Program, RegId, Rvalue, Terminator};
use std::fmt;

/// A structural problem detected in a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// The entry function id is out of range.
    BadEntry(FuncId),
    /// A block terminator targets a block that does not exist.
    BadBlockTarget {
        /// Function containing the bad terminator.
        func: FuncId,
        /// The referenced, non-existent block.
        target: BlockId,
    },
    /// A block has no terminator.
    MissingTerminator {
        /// Function containing the unterminated block.
        func: FuncId,
        /// The unterminated block.
        block: BlockId,
    },
    /// An instruction references a register outside the function's register
    /// file.
    BadRegister {
        /// Function containing the reference.
        func: FuncId,
        /// The out-of-range register.
        reg: RegId,
    },
    /// A call references a function that does not exist.
    BadCallee {
        /// Function containing the call.
        func: FuncId,
        /// The non-existent callee.
        callee: FuncId,
    },
    /// A call passes the wrong number of arguments.
    BadArity {
        /// Function containing the call.
        func: FuncId,
        /// The callee.
        callee: FuncId,
        /// Number of arguments at the call site.
        got: usize,
        /// Number of parameters the callee declares.
        expected: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::BadEntry(id) => write!(f, "entry function {id:?} does not exist"),
            ValidationError::BadBlockTarget { func, target } => {
                write!(f, "{func:?} branches to non-existent block {target:?}")
            }
            ValidationError::MissingTerminator { func, block } => {
                write!(f, "{func:?} block {block:?} has no terminator")
            }
            ValidationError::BadRegister { func, reg } => {
                write!(f, "{func:?} references out-of-range register {reg:?}")
            }
            ValidationError::BadCallee { func, callee } => {
                write!(f, "{func:?} calls non-existent function {callee:?}")
            }
            ValidationError::BadArity {
                func,
                callee,
                got,
                expected,
            } => write!(
                f,
                "{func:?} calls {callee:?} with {got} arguments, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

impl Program {
    /// Checks structural invariants: entry exists, all branch targets and
    /// callees exist, call arities match, and register references are within
    /// each function's register file.
    pub fn validate(&self) -> Result<(), ValidationError> {
        if self.entry.0 as usize >= self.functions.len() {
            return Err(ValidationError::BadEntry(self.entry));
        }
        for (fi, function) in self.functions.iter().enumerate() {
            let func = FuncId(fi as u32);
            let check_reg = |reg: RegId| -> Result<(), ValidationError> {
                if (reg.0 as usize) < function.num_regs {
                    Ok(())
                } else {
                    Err(ValidationError::BadRegister { func, reg })
                }
            };
            let check_operand = |op: &Operand| -> Result<(), ValidationError> {
                match op {
                    Operand::Reg(r) => check_reg(*r),
                    Operand::Const(..) => Ok(()),
                }
            };
            let check_block = |b: BlockId| -> Result<(), ValidationError> {
                if (b.0 as usize) < function.blocks.len() {
                    Ok(())
                } else {
                    Err(ValidationError::BadBlockTarget { func, target: b })
                }
            };
            check_block(function.entry)?;
            for (bi, block) in function.blocks.iter().enumerate() {
                for instr in &block.instrs {
                    match instr {
                        Instr::Assign { dst, rvalue, .. } => {
                            check_reg(*dst)?;
                            match rvalue {
                                Rvalue::Use(a)
                                | Rvalue::Unary(_, a)
                                | Rvalue::ZExt(a, _)
                                | Rvalue::SExt(a, _)
                                | Rvalue::Trunc(a, _) => check_operand(a)?,
                                Rvalue::Binary(_, a, b) => {
                                    check_operand(a)?;
                                    check_operand(b)?;
                                }
                                Rvalue::Select(c, a, b) => {
                                    check_operand(c)?;
                                    check_operand(a)?;
                                    check_operand(b)?;
                                }
                            }
                        }
                        Instr::Load { dst, addr, .. } => {
                            check_reg(*dst)?;
                            check_operand(addr)?;
                        }
                        Instr::Store { addr, value, .. } => {
                            check_operand(addr)?;
                            check_operand(value)?;
                        }
                        Instr::Alloc { dst, size, .. } => {
                            check_reg(*dst)?;
                            check_operand(size)?;
                        }
                        Instr::Free { addr, .. } => check_operand(addr)?,
                        Instr::Call {
                            dst,
                            func: callee,
                            args,
                            ..
                        } => {
                            if let Some(d) = dst {
                                check_reg(*d)?;
                            }
                            let callee_fn = self.functions.get(callee.0 as usize).ok_or(
                                ValidationError::BadCallee {
                                    func,
                                    callee: *callee,
                                },
                            )?;
                            if callee_fn.num_params != args.len() {
                                return Err(ValidationError::BadArity {
                                    func,
                                    callee: *callee,
                                    got: args.len(),
                                    expected: callee_fn.num_params,
                                });
                            }
                            for a in args {
                                check_operand(a)?;
                            }
                        }
                        Instr::Syscall { dst, args, .. } => {
                            check_reg(*dst)?;
                            for a in args {
                                check_operand(a)?;
                            }
                        }
                        Instr::Assert { cond, .. } => check_operand(cond)?,
                    }
                }
                match &block.terminator {
                    None => {
                        return Err(ValidationError::MissingTerminator {
                            func,
                            block: BlockId(bi as u32),
                        })
                    }
                    Some(Terminator::Jump { target, .. }) => check_block(*target)?,
                    Some(Terminator::Branch {
                        cond,
                        then_block,
                        else_block,
                        ..
                    }) => {
                        check_operand(cond)?;
                        check_block(*then_block)?;
                        check_block(*else_block)?;
                    }
                    Some(Terminator::Return { value, .. }) => {
                        if let Some(v) = value {
                            check_operand(v)?;
                        }
                    }
                    Some(Terminator::Abort { .. }) => {}
                }
            }
        }
        Ok(())
    }
}
