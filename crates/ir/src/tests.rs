//! Tests for the IR builder and validator.

use crate::{
    AbortKind, BinaryOp, BlockId, FuncId, Operand, ProgramBuilder, RegId, Rvalue, Terminator,
    ValidationError, Width,
};

fn simple_program() -> crate::Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("simple");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let x = f.copy(Operand::word(1));
    let y = f.binary(BinaryOp::Add, Operand::Reg(x), Operand::word(2));
    f.ret(Some(Operand::Reg(y)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

#[test]
fn build_and_validate_simple_program() {
    let p = simple_program();
    assert!(p.validate().is_ok());
    assert_eq!(p.name, "simple");
    assert_eq!(p.functions.len(), 1);
    assert!(p.loc() >= 3);
    assert_eq!(p.find_function("main"), Some(FuncId(0)));
    assert_eq!(p.find_function("missing"), None);
}

#[test]
fn lines_are_unique_and_dense() {
    let p = simple_program();
    let mut seen = vec![false; p.loc()];
    for f in &p.functions {
        for b in &f.blocks {
            for i in &b.instrs {
                let l = i.line().index();
                assert!(!seen[l], "line {l} assigned twice");
                seen[l] = true;
            }
            let l = b.terminator.as_ref().unwrap().line().index();
            assert!(!seen[l], "line {l} assigned twice");
            seen[l] = true;
        }
    }
    assert!(seen.iter().all(|s| *s), "line numbering has gaps");
}

#[test]
fn branching_function_with_multiple_blocks() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("max", 2, Some(Width::W8));
    let a = f.param(0);
    let b = f.param(1);
    let then_bb = f.create_block();
    let else_bb = f.create_block();
    let cond = f.binary(BinaryOp::Ult, Operand::Reg(a), Operand::Reg(b));
    f.branch(Operand::Reg(cond), then_bb, else_bb);
    f.switch_to(then_bb);
    f.ret(Some(Operand::Reg(b)));
    f.switch_to(else_bb);
    f.ret(Some(Operand::Reg(a)));
    let max = f.finish();
    pb.set_entry(max);
    let p = pb.finish();
    assert!(p.validate().is_ok());
    assert_eq!(p.function(max).blocks.len(), 3);
}

#[test]
fn forward_declared_functions_can_be_called() {
    let mut pb = ProgramBuilder::new();
    let helper = pb.declare("helper", 1, Some(Width::W8));
    let mut main = pb.function("main", 0, None);
    let v = main.call(helper, vec![Operand::byte(7)]);
    let _ = v;
    main.ret(None);
    let main_id = main.finish();

    let mut h = pb.build_declared(helper);
    let p0 = h.param(0);
    let doubled = h.binary(BinaryOp::Add, Operand::Reg(p0), Operand::Reg(p0));
    h.ret(Some(Operand::Reg(doubled)));
    h.finish();

    pb.set_entry(main_id);
    let p = pb.finish();
    assert!(p.validate().is_ok());
}

#[test]
#[should_panic(expected = "declared twice")]
fn duplicate_function_names_rejected() {
    let mut pb = ProgramBuilder::new();
    pb.declare("f", 0, None);
    pb.declare("f", 0, None);
}

#[test]
#[should_panic(expected = "has no terminator")]
fn unterminated_block_rejected_at_finish() {
    let mut pb = ProgramBuilder::new();
    let f = pb.function("broken", 0, None);
    f.finish();
}

#[test]
#[should_panic(expected = "terminated twice")]
fn double_termination_rejected() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("broken", 0, None);
    f.ret(None);
    f.ret(None);
}

#[test]
#[should_panic(expected = "void function")]
fn call_on_void_function_panics() {
    let mut pb = ProgramBuilder::new();
    let void_fn = pb.declare("v", 0, None);
    let mut f = pb.function("main", 0, None);
    let _ = f.call(void_fn, vec![]);
}

#[test]
fn validation_detects_bad_register() {
    let mut p = simple_program();
    // Corrupt: reference a register beyond the register file.
    if let Some(Terminator::Return { value, .. }) = &mut p.functions[0].blocks[0].terminator {
        *value = Some(Operand::Reg(RegId(999)));
    }
    assert!(matches!(
        p.validate(),
        Err(ValidationError::BadRegister { .. })
    ));
}

#[test]
fn validation_detects_bad_block_target() {
    let mut p = simple_program();
    p.functions[0].blocks[0].terminator = Some(Terminator::Jump {
        target: BlockId(42),
        line: crate::LineId(0),
    });
    assert!(matches!(
        p.validate(),
        Err(ValidationError::BadBlockTarget { .. })
    ));
}

#[test]
fn validation_detects_bad_arity() {
    let mut pb = ProgramBuilder::new();
    let callee = pb.declare("callee", 2, Some(Width::W8));
    let mut main = pb.function("main", 0, None);
    let _ = main.call(callee, vec![Operand::byte(1), Operand::byte(2)]);
    main.ret(None);
    let main_id = main.finish();
    let mut c = pb.build_declared(callee);
    c.ret(Some(Operand::byte(0)));
    c.finish();
    pb.set_entry(main_id);
    let mut p = pb.finish();
    // Corrupt the call to pass one argument instead of two.
    if let crate::Instr::Call { args, .. } =
        &mut p.functions[main_id.0 as usize].blocks[0].instrs[0]
    {
        args.pop();
    }
    assert!(matches!(
        p.validate(),
        Err(ValidationError::BadArity { .. })
    ));
}

#[test]
fn validation_detects_missing_terminator() {
    let mut p = simple_program();
    p.functions[0].blocks[0].terminator = None;
    assert!(matches!(
        p.validate(),
        Err(ValidationError::MissingTerminator { .. })
    ));
}

#[test]
fn aborts_and_asserts_are_representable() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, None);
    f.assert_(Operand::const_(1, Width::W1), "always true");
    f.abort(AbortKind::Crash, "boom");
    let id = f.finish();
    pb.set_entry(id);
    let p = pb.finish();
    assert!(p.validate().is_ok());
}

#[test]
fn printer_lists_all_functions() {
    let p = simple_program();
    let listing = crate::print_program(&p);
    assert!(listing.contains("main"));
    assert!(listing.contains("return"));
    assert!(listing.contains("Add"));
}

#[test]
fn all_rvalue_forms_validate() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, None);
    let a = f.copy(Operand::byte(3));
    let _ = f.assign(Rvalue::Unary(crate::UnaryOp::Not, Operand::Reg(a)));
    let _ = f.zext(Operand::Reg(a), Width::W32);
    let _ = f.sext(Operand::Reg(a), Width::W32);
    let _ = f.trunc(Operand::word(0x1234), Width::W8);
    let _ = f.select(
        Operand::const_(1, Width::W1),
        Operand::Reg(a),
        Operand::byte(9),
    );
    let buf = f.alloc(Operand::word(16));
    f.store(Operand::Reg(buf), Operand::byte(0xaa), Width::W8);
    let _ = f.load(Operand::Reg(buf), Width::W8);
    f.free(Operand::Reg(buf));
    f.ret(None);
    let id = f.finish();
    pb.set_entry(id);
    assert!(pb.finish().validate().is_ok());
}
