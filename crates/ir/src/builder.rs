//! Builder API for constructing IR programs.

use crate::program::{
    AbortKind, BasicBlock, BlockId, FuncId, Function, Instr, LineId, Operand, Program, RegId,
    Rvalue, Terminator,
};
use c9_expr::{BinaryOp, UnaryOp, Width};
use std::collections::HashMap;

/// Signature of a declared function.
#[derive(Clone, Debug)]
struct Signature {
    name: String,
    num_params: usize,
    ret: Option<Width>,
}

/// Builds a [`Program`] function by function.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    signatures: Vec<Signature>,
    bodies: Vec<Option<Function>>,
    by_name: HashMap<String, FuncId>,
    next_line: u32,
    entry: Option<FuncId>,
    name: String,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            name: "program".to_string(),
            ..ProgramBuilder::default()
        }
    }

    /// Sets the human-readable program name.
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    /// Declares a function signature without a body, so other functions can
    /// call it before it is defined (mutual recursion, forward references).
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name was already declared.
    pub fn declare(&mut self, name: &str, num_params: usize, ret: Option<Width>) -> FuncId {
        assert!(
            !self.by_name.contains_key(name),
            "function {name:?} declared twice"
        );
        let id = FuncId(self.signatures.len() as u32);
        self.signatures.push(Signature {
            name: name.to_string(),
            num_params,
            ret,
        });
        self.bodies.push(None);
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Declares a function and returns a builder for its body.
    pub fn function(
        &mut self,
        name: &str,
        num_params: usize,
        ret: Option<Width>,
    ) -> FunctionBuilder<'_> {
        let id = self.declare(name, num_params, ret);
        self.build_declared(id)
    }

    /// Returns a builder for the body of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if the function already has a body.
    pub fn build_declared(&mut self, id: FuncId) -> FunctionBuilder<'_> {
        assert!(
            self.bodies[id.0 as usize].is_none(),
            "function {id:?} already has a body"
        );
        let sig = self.signatures[id.0 as usize].clone();
        FunctionBuilder {
            id,
            name: sig.name,
            num_params: sig.num_params,
            ret: sig.ret,
            num_regs: sig.num_params,
            blocks: vec![BasicBlock::new()],
            entry: BlockId(0),
            current: BlockId(0),
            pb: self,
        }
    }

    /// Looks up the return width of a declared function.
    pub fn return_width(&self, id: FuncId) -> Option<Width> {
        self.signatures[id.0 as usize].ret
    }

    /// Looks up a declared function by name.
    pub fn find(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Sets the program entry point.
    pub fn set_entry(&mut self, id: FuncId) {
        self.entry = Some(id);
    }

    fn alloc_line(&mut self) -> LineId {
        let line = LineId(self.next_line);
        self.next_line += 1;
        line
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if the entry point was not set or a declared function has no
    /// body.
    pub fn finish(self) -> Program {
        let entry = self.entry.expect("program entry point not set");
        let functions: Vec<Function> = self
            .bodies
            .into_iter()
            .enumerate()
            .map(|(i, body)| body.unwrap_or_else(|| panic!("function fn{i} has no body")))
            .collect();
        Program {
            functions,
            entry,
            by_name: self.by_name,
            num_lines: self.next_line as usize,
            name: self.name,
        }
    }
}

/// Builds the body of one function.
///
/// The builder starts positioned in the (empty) entry block. Instructions are
/// appended to the *current* block; [`FunctionBuilder::switch_to`] changes
/// which block receives subsequent instructions.
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    id: FuncId,
    name: String,
    num_params: usize,
    ret: Option<Width>,
    num_regs: usize,
    blocks: Vec<BasicBlock>,
    entry: BlockId,
    current: BlockId,
}

impl<'a> FunctionBuilder<'a> {
    /// The id of the function being built.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The register holding the `index`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn param(&self, index: usize) -> RegId {
        assert!(index < self.num_params, "parameter index out of range");
        RegId(index as u32)
    }

    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self) -> RegId {
        let r = RegId(self.num_regs as u32);
        self.num_regs += 1;
        r
    }

    /// Creates a new, empty basic block and returns its id.
    pub fn create_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::new());
        id
    }

    /// Makes `block` the current block for subsequently appended
    /// instructions.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// The block currently receiving instructions.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// The entry block of the function.
    pub fn entry_block(&self) -> BlockId {
        self.entry
    }

    fn push(&mut self, instr: Instr) {
        let block = &mut self.blocks[self.current.0 as usize];
        assert!(
            block.terminator.is_none(),
            "appending to already-terminated block {:?} in {}",
            self.current,
            self.name
        );
        block.instrs.push(instr);
    }

    fn terminate(&mut self, terminator: Terminator) {
        let block = &mut self.blocks[self.current.0 as usize];
        assert!(
            block.terminator.is_none(),
            "block {:?} in {} terminated twice",
            self.current,
            self.name
        );
        block.terminator = Some(terminator);
    }

    fn line(&mut self) -> LineId {
        self.pb.alloc_line()
    }

    // -- Instructions -------------------------------------------------------

    /// Appends `dst = rvalue` and returns `dst`.
    pub fn assign(&mut self, rvalue: Rvalue) -> RegId {
        let dst = self.new_reg();
        let line = self.line();
        self.push(Instr::Assign { dst, rvalue, line });
        dst
    }

    /// Appends `dst = rvalue` into an existing register.
    pub fn assign_to(&mut self, dst: RegId, rvalue: Rvalue) {
        let line = self.line();
        self.push(Instr::Assign { dst, rvalue, line });
    }

    /// Copies an operand into a fresh register.
    pub fn copy(&mut self, value: Operand) -> RegId {
        self.assign(Rvalue::Use(value))
    }

    /// Appends a binary operation and returns the destination register.
    pub fn binary(&mut self, op: BinaryOp, a: Operand, b: Operand) -> RegId {
        self.assign(Rvalue::Binary(op, a, b))
    }

    /// Appends a unary operation.
    pub fn unary(&mut self, op: UnaryOp, a: Operand) -> RegId {
        self.assign(Rvalue::Unary(op, a))
    }

    /// Appends a zero extension.
    pub fn zext(&mut self, a: Operand, width: Width) -> RegId {
        self.assign(Rvalue::ZExt(a, width))
    }

    /// Appends a sign extension.
    pub fn sext(&mut self, a: Operand, width: Width) -> RegId {
        self.assign(Rvalue::SExt(a, width))
    }

    /// Appends a truncation.
    pub fn trunc(&mut self, a: Operand, width: Width) -> RegId {
        self.assign(Rvalue::Trunc(a, width))
    }

    /// Appends a non-forking select (`cond ? a : b`).
    pub fn select(&mut self, cond: Operand, a: Operand, b: Operand) -> RegId {
        self.assign(Rvalue::Select(cond, a, b))
    }

    /// Appends a load of `width` bits from `addr`.
    pub fn load(&mut self, addr: Operand, width: Width) -> RegId {
        let dst = self.new_reg();
        let line = self.line();
        self.push(Instr::Load {
            dst,
            addr,
            width,
            line,
        });
        dst
    }

    /// Appends a store of `value` (of `width` bits) to `addr`.
    pub fn store(&mut self, addr: Operand, value: Operand, width: Width) {
        let line = self.line();
        self.push(Instr::Store {
            addr,
            value,
            width,
            line,
        });
    }

    /// Appends a heap allocation of `size` bytes.
    pub fn alloc(&mut self, size: Operand) -> RegId {
        let dst = self.new_reg();
        let line = self.line();
        self.push(Instr::Alloc { dst, size, line });
        dst
    }

    /// Appends a heap deallocation.
    pub fn free(&mut self, addr: Operand) {
        let line = self.line();
        self.push(Instr::Free { addr, line });
    }

    /// Appends a call to a function returning a value.
    ///
    /// # Panics
    ///
    /// Panics if the callee is declared void.
    pub fn call(&mut self, func: FuncId, args: Vec<Operand>) -> RegId {
        assert!(
            self.pb.return_width(func).is_some(),
            "call() used on a void function; use call_void()"
        );
        let dst = self.new_reg();
        let line = self.line();
        self.push(Instr::Call {
            dst: Some(dst),
            func,
            args,
            line,
        });
        dst
    }

    /// Appends a call to a void function.
    pub fn call_void(&mut self, func: FuncId, args: Vec<Operand>) {
        let line = self.line();
        self.push(Instr::Call {
            dst: None,
            func,
            args,
            line,
        });
    }

    /// Appends a syscall (engine primitive or environment call).
    pub fn syscall(&mut self, nr: u32, args: Vec<Operand>) -> RegId {
        let dst = self.new_reg();
        let line = self.line();
        self.push(Instr::Syscall {
            dst,
            nr,
            args,
            line,
        });
        dst
    }

    /// Appends an assertion on a 1-bit condition.
    pub fn assert_(&mut self, cond: Operand, message: &str) {
        let line = self.line();
        self.push(Instr::Assert {
            cond,
            message: message.to_string(),
            line,
        });
    }

    // -- Terminators --------------------------------------------------------

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        let line = self.line();
        self.terminate(Terminator::Jump { target, line });
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: Operand, then_block: BlockId, else_block: BlockId) {
        let line = self.line();
        self.terminate(Terminator::Branch {
            cond,
            then_block,
            else_block,
            line,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        let line = self.line();
        self.terminate(Terminator::Return { value, line });
    }

    /// Terminates the current block with an abort (bug site).
    pub fn abort(&mut self, kind: AbortKind, message: &str) {
        let line = self.line();
        self.terminate(Terminator::Abort {
            kind,
            message: message.to_string(),
            line,
        });
    }

    /// Finalizes the function body and registers it with the program builder.
    ///
    /// # Panics
    ///
    /// Panics if any created block lacks a terminator.
    pub fn finish(self) -> FuncId {
        for (i, block) in self.blocks.iter().enumerate() {
            assert!(
                block.terminator.is_some(),
                "block bb{i} of function {} has no terminator",
                self.name
            );
        }
        let function = Function {
            name: self.name,
            num_params: self.num_params,
            ret: self.ret,
            num_regs: self.num_regs,
            blocks: self.blocks,
            entry: self.entry,
        };
        self.pb.bodies[self.id.0 as usize] = Some(function);
        self.id
    }
}
