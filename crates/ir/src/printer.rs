//! Human-readable listing of programs, for debugging targets.

use crate::program::{Instr, Operand, Program, Rvalue, Terminator};
use std::fmt::Write;

fn fmt_operand(op: &Operand) -> String {
    match op {
        Operand::Reg(r) => format!("{r:?}"),
        Operand::Const(v, w) => format!("{v}:{w}"),
    }
}

fn fmt_rvalue(rv: &Rvalue) -> String {
    match rv {
        Rvalue::Use(a) => fmt_operand(a),
        Rvalue::Binary(op, a, b) => format!("{op:?} {} {}", fmt_operand(a), fmt_operand(b)),
        Rvalue::Unary(op, a) => format!("{op:?} {}", fmt_operand(a)),
        Rvalue::ZExt(a, w) => format!("zext {} to {w}", fmt_operand(a)),
        Rvalue::SExt(a, w) => format!("sext {} to {w}", fmt_operand(a)),
        Rvalue::Trunc(a, w) => format!("trunc {} to {w}", fmt_operand(a)),
        Rvalue::Select(c, a, b) => format!(
            "select {} ? {} : {}",
            fmt_operand(c),
            fmt_operand(a),
            fmt_operand(b)
        ),
    }
}

/// Renders the whole program as a textual listing.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; program {} ({} lines)", program.name, program.loc());
    for (fi, f) in program.functions.iter().enumerate() {
        let _ = writeln!(
            out,
            "fn{fi} {}({} params) -> {:?} {{",
            f.name, f.num_params, f.ret
        );
        for (bi, block) in f.blocks.iter().enumerate() {
            let _ = writeln!(out, "  bb{bi}:");
            for instr in &block.instrs {
                let line = instr.line();
                let text = match instr {
                    Instr::Assign { dst, rvalue, .. } => {
                        format!("{dst:?} = {}", fmt_rvalue(rvalue))
                    }
                    Instr::Load {
                        dst, addr, width, ..
                    } => format!("{dst:?} = load.{width} [{}]", fmt_operand(addr)),
                    Instr::Store {
                        addr, value, width, ..
                    } => format!(
                        "store.{width} [{}] <- {}",
                        fmt_operand(addr),
                        fmt_operand(value)
                    ),
                    Instr::Alloc { dst, size, .. } => {
                        format!("{dst:?} = alloc {}", fmt_operand(size))
                    }
                    Instr::Free { addr, .. } => format!("free {}", fmt_operand(addr)),
                    Instr::Call {
                        dst, func, args, ..
                    } => {
                        let args: Vec<String> = args.iter().map(fmt_operand).collect();
                        match dst {
                            Some(d) => format!("{d:?} = call {func:?}({})", args.join(", ")),
                            None => format!("call {func:?}({})", args.join(", ")),
                        }
                    }
                    Instr::Syscall { dst, nr, args, .. } => {
                        let args: Vec<String> = args.iter().map(fmt_operand).collect();
                        format!("{d:?} = syscall {nr}({a})", d = dst, a = args.join(", "))
                    }
                    Instr::Assert { cond, message, .. } => {
                        format!("assert {} \"{}\"", fmt_operand(cond), message)
                    }
                };
                let _ = writeln!(out, "    {line:?}: {text}");
            }
            if let Some(term) = &block.terminator {
                let line = term.line();
                let text = match term {
                    Terminator::Jump { target, .. } => format!("jump {target:?}"),
                    Terminator::Branch {
                        cond,
                        then_block,
                        else_block,
                        ..
                    } => format!(
                        "branch {} ? {then_block:?} : {else_block:?}",
                        fmt_operand(cond)
                    ),
                    Terminator::Return { value, .. } => match value {
                        Some(v) => format!("return {}", fmt_operand(v)),
                        None => "return".to_string(),
                    },
                    Terminator::Abort { kind, message, .. } => {
                        format!("abort {kind:?} \"{message}\"")
                    }
                };
                let _ = writeln!(out, "    {line:?}: {text}");
            }
        }
        let _ = writeln!(out, "}}");
    }
    out
}
