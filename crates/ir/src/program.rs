//! IR data structures.

use c9_expr::{BinaryOp, UnaryOp, Width};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a function within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Identifier of a basic block within a [`Function`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// Identifier of a virtual register within a [`Function`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegId(pub u32);

/// Global line identifier used for coverage accounting.
///
/// The [`crate::ProgramBuilder`] assigns a unique line to every instruction
/// and terminator; the number of lines of a program is its "LOC" for the
/// purposes of the coverage experiments.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LineId(pub u32);

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}
impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}
impl fmt::Debug for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl fmt::Debug for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl LineId {
    /// Raw index of the line.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An operand: either a virtual register or an immediate constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// The value currently held in a register.
    Reg(RegId),
    /// An immediate constant of the given width.
    Const(u64, Width),
}

impl Operand {
    /// Convenience constructor for a constant operand.
    pub fn const_(value: u64, width: Width) -> Operand {
        Operand::Const(value, width)
    }

    /// Convenience constructor for a byte constant.
    pub fn byte(value: u8) -> Operand {
        Operand::Const(u64::from(value), Width::W8)
    }

    /// Convenience constructor for a 32-bit constant.
    pub fn word(value: u32) -> Operand {
        Operand::Const(u64::from(value), Width::W32)
    }
}

/// Right-hand side of an assignment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rvalue {
    /// Copies the operand.
    Use(Operand),
    /// Binary operation; comparisons produce a 1-bit value.
    Binary(BinaryOp, Operand, Operand),
    /// Unary operation.
    Unary(UnaryOp, Operand),
    /// Zero extension to the given width.
    ZExt(Operand, Width),
    /// Sign extension to the given width.
    SExt(Operand, Width),
    /// Truncation to the given width.
    Trunc(Operand, Width),
    /// `cond ? a : b` without forking execution.
    Select(Operand, Operand, Operand),
}

/// Reasons a program aborts at an [`Terminator::Abort`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortKind {
    /// A deliberate crash site in a target program (models a segfault or
    /// similar fatal error in the real target).
    Crash,
    /// An assertion written in the program failed.
    AssertFailure,
    /// The program reached code that was believed unreachable.
    Unreachable,
}

/// A single (non-terminator) instruction.
///
/// Every instruction carries the [`LineId`] assigned by the builder for
/// coverage accounting.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = rvalue`.
    Assign {
        /// Destination register.
        dst: RegId,
        /// Computed value.
        rvalue: Rvalue,
        /// Coverage line.
        line: LineId,
    },
    /// Loads `width` bits from memory at `addr` into `dst`.
    Load {
        /// Destination register.
        dst: RegId,
        /// Byte address to read from.
        addr: Operand,
        /// Width of the load.
        width: Width,
        /// Coverage line.
        line: LineId,
    },
    /// Stores the low `width` bits of `value` to memory at `addr`.
    Store {
        /// Byte address to write to.
        addr: Operand,
        /// Value to store.
        value: Operand,
        /// Width of the store.
        width: Width,
        /// Coverage line.
        line: LineId,
    },
    /// Allocates `size` bytes on the state's heap and puts the address in
    /// `dst`.
    Alloc {
        /// Destination register receiving the address.
        dst: RegId,
        /// Allocation size in bytes.
        size: Operand,
        /// Coverage line.
        line: LineId,
    },
    /// Frees an allocation previously returned by `Alloc`.
    Free {
        /// Address of the allocation.
        addr: Operand,
        /// Coverage line.
        line: LineId,
    },
    /// Calls another function in the program.
    Call {
        /// Register receiving the return value, if the callee returns one.
        dst: Option<RegId>,
        /// Callee.
        func: FuncId,
        /// Argument operands.
        args: Vec<Operand>,
        /// Coverage line.
        line: LineId,
    },
    /// Invokes an engine primitive or environment-model call.
    ///
    /// Numbers below [`crate::Program::ENV_SYSCALL_BASE`] are engine
    /// primitives (Table 1 of the paper); numbers at or above it are routed
    /// to the registered environment model (the POSIX model).
    Syscall {
        /// Register receiving the syscall return value.
        dst: RegId,
        /// Syscall number.
        nr: u32,
        /// Argument operands (at most 6, like the POSIX ABI).
        args: Vec<Operand>,
        /// Coverage line.
        line: LineId,
    },
    /// Checks a 1-bit condition and aborts the path with
    /// [`AbortKind::AssertFailure`] when it does not hold.
    Assert {
        /// Condition that must be true.
        cond: Operand,
        /// Message reported when the assertion fails.
        message: String,
        /// Coverage line.
        line: LineId,
    },
}

impl Instr {
    /// The coverage line of this instruction.
    pub fn line(&self) -> LineId {
        match self {
            Instr::Assign { line, .. }
            | Instr::Load { line, .. }
            | Instr::Store { line, .. }
            | Instr::Alloc { line, .. }
            | Instr::Free { line, .. }
            | Instr::Call { line, .. }
            | Instr::Syscall { line, .. }
            | Instr::Assert { line, .. } => *line,
        }
    }
}

/// Block terminators.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump {
        /// Target block.
        target: BlockId,
        /// Coverage line.
        line: LineId,
    },
    /// Two-way conditional branch on a 1-bit condition. This is the only
    /// place where symbolic execution forks.
    Branch {
        /// 1-bit condition.
        cond: Operand,
        /// Target when the condition is true.
        then_block: BlockId,
        /// Target when the condition is false.
        else_block: BlockId,
        /// Coverage line.
        line: LineId,
    },
    /// Returns from the current function.
    Return {
        /// Returned value, if the function returns one.
        value: Option<Operand>,
        /// Coverage line.
        line: LineId,
    },
    /// Aborts the current path with a bug report.
    Abort {
        /// The kind of abort.
        kind: AbortKind,
        /// Message reported with the bug.
        message: String,
        /// Coverage line.
        line: LineId,
    },
}

impl Terminator {
    /// The coverage line of this terminator.
    pub fn line(&self) -> LineId {
        match self {
            Terminator::Jump { line, .. }
            | Terminator::Branch { line, .. }
            | Terminator::Return { line, .. }
            | Terminator::Abort { line, .. } => *line,
        }
    }
}

/// A basic block: straight-line instructions ended by a terminator.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// The instructions of the block, executed in order.
    pub instrs: Vec<Instr>,
    /// The terminator; `None` only while the block is still being built.
    pub terminator: Option<Terminator>,
}

impl BasicBlock {
    /// Creates an empty block.
    pub fn new() -> BasicBlock {
        BasicBlock {
            instrs: Vec::new(),
            terminator: None,
        }
    }
}

impl Default for BasicBlock {
    fn default() -> Self {
        BasicBlock::new()
    }
}

/// A function: parameters, registers, and a CFG of basic blocks.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (for diagnostics and coverage reports).
    pub name: String,
    /// Number of parameters; parameters occupy registers `0..num_params`.
    pub num_params: usize,
    /// Width of the return value, or `None` for void functions.
    pub ret: Option<Width>,
    /// Total number of virtual registers (including parameters).
    pub num_regs: usize,
    /// The basic blocks.
    pub blocks: Vec<BasicBlock>,
    /// The entry block.
    pub entry: BlockId,
}

impl Function {
    /// Looks up a block.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }
}

/// A complete program: functions plus an entry point.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// All functions, indexed by [`FuncId`].
    pub functions: Vec<Function>,
    /// The entry function. It is invoked with no arguments.
    pub entry: FuncId,
    /// Map from function name to id.
    pub by_name: HashMap<String, FuncId>,
    /// Total number of coverage lines assigned by the builder.
    pub num_lines: usize,
    /// Human-readable program name.
    pub name: String,
}

impl Program {
    /// Syscall numbers below this value are engine primitives handled by the
    /// VM itself (Table 1 of the paper); numbers at or above it are routed to
    /// the environment model.
    pub const ENV_SYSCALL_BASE: u32 = 100;

    /// Looks up a function by id.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Looks up a function id by name.
    pub fn find_function(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Number of lines (instructions + terminators), the program's "LOC".
    pub fn loc(&self) -> usize {
        self.num_lines
    }
}
