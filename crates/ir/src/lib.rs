//! Program intermediate representation for Cloud9-RS.
//!
//! The Cloud9 paper executes LLVM bitcode produced from real C programs.
//! Cloud9-RS instead defines a small register-based IR with the same
//! execution-relevant structure — basic blocks, conditional branches, loads
//! and stores against a byte-addressed memory, calls, and *syscalls* into the
//! environment model — and the target programs (`c9-targets`) are written
//! directly in this IR through the [`ProgramBuilder`] API.
//!
//! Every instruction carries a *line identifier* assigned sequentially by the
//! builder; line coverage in the evaluation harness is defined as the set of
//! executed line identifiers, matching the per-line coverage bit vector the
//! paper describes in §3.3.
//!
//! # Examples
//!
//! Build a function that returns the maximum of two bytes:
//!
//! ```
//! use c9_expr::Width;
//! use c9_ir::{BinaryOp, Operand, ProgramBuilder};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("max", 2, Some(Width::W8));
//! let a = f.param(0);
//! let b = f.param(1);
//! let then_bb = f.create_block();
//! let else_bb = f.create_block();
//! let cond = f.binary(BinaryOp::Ult, Operand::Reg(a), Operand::Reg(b));
//! f.branch(Operand::Reg(cond), then_bb, else_bb);
//! f.switch_to(then_bb);
//! f.ret(Some(Operand::Reg(b)));
//! f.switch_to(else_bb);
//! f.ret(Some(Operand::Reg(a)));
//! let max = f.finish();
//! pb.set_entry(max);
//! let program = pb.finish();
//! assert!(program.validate().is_ok());
//! ```

mod builder;
mod printer;
mod program;
mod validate;

pub use builder::{FunctionBuilder, ProgramBuilder};
pub use printer::print_program;
pub use program::{
    AbortKind, BasicBlock, BlockId, FuncId, Function, Instr, LineId, Operand, Program, RegId,
    Rvalue, Terminator,
};
pub use validate::ValidationError;

// Re-export the operator enums shared with the expression language, so that
// IR users do not need to depend on `c9-expr` directly for building programs.
pub use c9_expr::{BinaryOp, UnaryOp, Width};

#[cfg(test)]
mod tests;
