//! Shared IR-emission helpers for the target programs.

use c9_ir::{BinaryOp, FunctionBuilder, Operand, RegId, Width};
use c9_posix::nr;
use c9_vm::sysno;

/// Emits a NUL-terminated string into a fresh allocation; returns the
/// register holding its address.
pub fn emit_cstring(f: &mut FunctionBuilder<'_>, s: &str) -> RegId {
    let bytes = s.as_bytes();
    let buf = f.alloc(Operand::word(bytes.len() as u32 + 1));
    for (i, b) in bytes.iter().enumerate() {
        let addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(i as u32));
        f.store(Operand::Reg(addr), Operand::byte(*b), Width::W8);
    }
    buf
}

/// Emits `base + offset` (offset known at build time).
pub fn addr_of(f: &mut FunctionBuilder<'_>, base: RegId, offset: u32) -> RegId {
    f.binary(BinaryOp::Add, Operand::Reg(base), Operand::word(offset))
}

/// Emits a load of the byte at `base + offset_reg`.
pub fn load_byte_at(f: &mut FunctionBuilder<'_>, base: RegId, offset: Operand) -> RegId {
    let addr = f.binary(BinaryOp::Add, Operand::Reg(base), offset);
    f.load(Operand::Reg(addr), Width::W8)
}

/// Emits the creation of a stream socket turned into a symbolic input source
/// with `budget` symbolic bytes; optionally enables packet fragmentation.
/// Returns the register holding the socket fd.
pub fn emit_symbolic_socket(f: &mut FunctionBuilder<'_>, budget: u32, fragment: bool) -> RegId {
    let sock = f.syscall(
        nr::SOCKET,
        vec![Operand::Const(nr::SOCK_STREAM, Width::W64)],
    );
    f.syscall(
        nr::IOCTL,
        vec![
            Operand::Reg(sock),
            Operand::Const(nr::SIO_SYMBOLIC, Width::W64),
            Operand::word(budget),
        ],
    );
    if fragment {
        f.syscall(
            nr::IOCTL,
            vec![
                Operand::Reg(sock),
                Operand::Const(nr::SIO_PKT_FRAGMENT, Width::W64),
                Operand::word(1),
            ],
        );
    }
    sock
}

/// Emits a UDP socket marked as a symbolic datagram source.
pub fn emit_symbolic_udp_socket(f: &mut FunctionBuilder<'_>, budget: u32, fragment: bool) -> RegId {
    let sock = f.syscall(nr::SOCKET, vec![Operand::Const(nr::SOCK_DGRAM, Width::W64)]);
    f.syscall(
        nr::IOCTL,
        vec![
            Operand::Reg(sock),
            Operand::Const(nr::SIO_SYMBOLIC, Width::W64),
            Operand::word(budget),
        ],
    );
    if fragment {
        f.syscall(
            nr::IOCTL,
            vec![
                Operand::Reg(sock),
                Operand::Const(nr::SIO_PKT_FRAGMENT, Width::W64),
                Operand::word(1),
            ],
        );
    }
    sock
}

/// Emits an allocation of `len` bytes filled with fresh symbolic input
/// (the `cloud9_make_symbolic` test-API pattern); returns the buffer address
/// register.
pub fn emit_symbolic_buffer(f: &mut FunctionBuilder<'_>, len: u32) -> RegId {
    let buf = f.alloc(Operand::word(len));
    f.syscall(
        sysno::MAKE_SYMBOLIC,
        vec![Operand::Reg(buf), Operand::word(len)],
    );
    buf
}

/// Emits `if (byte at base+idx) == ch` as a 1-bit register.
pub fn emit_byte_eq(f: &mut FunctionBuilder<'_>, base: RegId, idx: u32, ch: u8) -> RegId {
    let addr = addr_of(f, base, idx);
    let b = f.load(Operand::Reg(addr), Width::W8);
    f.binary(BinaryOp::Eq, Operand::Reg(b), Operand::byte(ch))
}
