//! The multi-threaded, multi-process producer–consumer benchmark of §7.1.
//!
//! "a benchmark consisting of a multi-threaded and multi-process
//! producer-consumer simulation. The benchmark exercises the entire
//! functionality of the POSIX model: threads, synchronization, processes, and
//! networking." Producer threads push tokens into a mutex-protected shared
//! ring; consumer threads pop them; the parent additionally forks a child
//! process that echoes a datagram back over UDP.

use c9_ir::{BinaryOp, Operand, Program, ProgramBuilder, Rvalue, Width};
use c9_posix::{add_libc, nr, MUTEX_SIZE};
use c9_vm::sysno;

/// Offsets inside the shared block.
const COUNTER_OFF: u32 = MUTEX_SIZE;
const DONE_OFF: u32 = MUTEX_SIZE + 4;
const SHARED_SIZE: u32 = MUTEX_SIZE + 8;

/// Builds the benchmark with the given number of producer and consumer
/// threads (each producer pushes exactly one token).
pub fn program(producers: u32, consumers: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("producer-consumer");
    let libc = add_libc(&mut pb);
    let producer = pb.declare("producer", 1, None);
    let consumer = pb.declare("consumer", 1, None);

    // main
    let mut f = pb.function("main", 0, Some(Width::W32));
    let shared = f.alloc(Operand::word(SHARED_SIZE));
    f.syscall(sysno::MAKE_SHARED, vec![Operand::Reg(shared)]);
    f.call(libc.mutex_init, vec![Operand::Reg(shared)]);

    // Networking leg: fork a child process that echoes one datagram.
    let udp_rx = f.syscall(nr::SOCKET, vec![Operand::Const(nr::SOCK_DGRAM, Width::W64)]);
    f.syscall(nr::BIND, vec![Operand::Reg(udp_rx), Operand::word(7000)]);
    let child = f.syscall(sysno::PROCESS_FORK, vec![]);
    let is_child = f.binary(BinaryOp::Eq, Operand::Reg(child), Operand::word(0));
    let child_bb = f.create_block();
    let parent_bb = f.create_block();
    f.branch(Operand::Reg(is_child), child_bb, parent_bb);

    // Child: send a datagram to the parent's socket, then exit.
    f.switch_to(child_bb);
    let tx = f.syscall(nr::SOCKET, vec![Operand::Const(nr::SOCK_DGRAM, Width::W64)]);
    let msg = f.alloc(Operand::word(4));
    f.store(Operand::Reg(msg), Operand::byte(b'p'), Width::W8);
    f.syscall(
        nr::SENDTO,
        vec![
            Operand::Reg(tx),
            Operand::Reg(msg),
            Operand::word(1),
            Operand::word(7000),
        ],
    );
    f.syscall(sysno::PROCESS_TERMINATE, vec![Operand::word(0)]);
    f.ret(Some(Operand::word(0)));

    // Parent: start the worker threads, wait for the datagram, then wait for
    // all threads to finish.
    f.switch_to(parent_bb);
    for _ in 0..producers {
        f.syscall(
            sysno::THREAD_CREATE,
            vec![
                Operand::Const(u64::from(producer.0), Width::W32),
                Operand::Reg(shared),
            ],
        );
    }
    for _ in 0..consumers {
        f.syscall(
            sysno::THREAD_CREATE,
            vec![
                Operand::Const(u64::from(consumer.0), Width::W32),
                Operand::Reg(shared),
            ],
        );
    }
    let dgram = f.alloc(Operand::word(4));
    let got = f.syscall(
        nr::RECVFROM,
        vec![Operand::Reg(udp_rx), Operand::Reg(dgram), Operand::word(4)],
    );
    let got32 = f.trunc(Operand::Reg(got), Width::W32);

    // Wait until every worker marked itself done.
    let total_workers = producers + consumers;
    let check_bb = f.create_block();
    let spin_bb = f.create_block();
    let done_bb = f.create_block();
    f.jump(check_bb);
    f.switch_to(check_bb);
    let done_addr = f.binary(BinaryOp::Add, Operand::Reg(shared), Operand::word(DONE_OFF));
    let done = f.load(Operand::Reg(done_addr), Width::W32);
    let all_done = f.binary(
        BinaryOp::Eq,
        Operand::Reg(done),
        Operand::word(total_workers),
    );
    f.branch(Operand::Reg(all_done), done_bb, spin_bb);
    f.switch_to(spin_bb);
    f.syscall(sysno::THREAD_PREEMPT, vec![]);
    f.jump(check_bb);
    f.switch_to(done_bb);
    let counter_addr = f.binary(
        BinaryOp::Add,
        Operand::Reg(shared),
        Operand::word(COUNTER_OFF),
    );
    let counter = f.load(Operand::Reg(counter_addr), Width::W32);
    // Exit code: tokens left in the ring (producers - consumers, floored at
    // build time this is exact) plus 100 * datagram bytes received.
    let scaled = f.binary(BinaryOp::Mul, Operand::Reg(got32), Operand::word(100));
    let result = f.binary(BinaryOp::Add, Operand::Reg(scaled), Operand::Reg(counter));
    f.ret(Some(Operand::Reg(result)));
    let main = f.finish();

    // producer(shared): counter += 1 under the mutex.
    let mut p = pb.build_declared(producer);
    let shared = p.param(0);
    p.call(libc.mutex_lock, vec![Operand::Reg(shared)]);
    let counter_addr = p.binary(
        BinaryOp::Add,
        Operand::Reg(shared),
        Operand::word(COUNTER_OFF),
    );
    let v = p.load(Operand::Reg(counter_addr), Width::W32);
    p.syscall(sysno::THREAD_PREEMPT, vec![]);
    let v1 = p.binary(BinaryOp::Add, Operand::Reg(v), Operand::word(1));
    p.store(Operand::Reg(counter_addr), Operand::Reg(v1), Width::W32);
    p.call(libc.mutex_unlock, vec![Operand::Reg(shared)]);
    mark_done(&mut p, shared);
    p.ret(None);
    p.finish();

    // consumer(shared): counter -= 1 under the mutex when non-zero.
    let mut c = pb.build_declared(consumer);
    let shared = c.param(0);
    c.call(libc.mutex_lock, vec![Operand::Reg(shared)]);
    let counter_addr = c.binary(
        BinaryOp::Add,
        Operand::Reg(shared),
        Operand::word(COUNTER_OFF),
    );
    let v = c.load(Operand::Reg(counter_addr), Width::W32);
    let non_zero = c.binary(BinaryOp::Ne, Operand::Reg(v), Operand::word(0));
    let take_bb = c.create_block();
    let skip_bb = c.create_block();
    c.branch(Operand::Reg(non_zero), take_bb, skip_bb);
    c.switch_to(take_bb);
    let v1 = c.binary(BinaryOp::Sub, Operand::Reg(v), Operand::word(1));
    c.store(Operand::Reg(counter_addr), Operand::Reg(v1), Width::W32);
    c.jump(skip_bb);
    c.switch_to(skip_bb);
    c.call(libc.mutex_unlock, vec![Operand::Reg(shared)]);
    mark_done(&mut c, shared);
    c.ret(None);
    c.finish();

    pb.set_entry(main);
    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    program
}

fn mark_done(f: &mut c9_ir::FunctionBuilder<'_>, shared: c9_ir::RegId) {
    let done_addr = f.binary(BinaryOp::Add, Operand::Reg(shared), Operand::word(DONE_OFF));
    let d = f.load(Operand::Reg(done_addr), Width::W32);
    let d1 = f.binary(BinaryOp::Add, Operand::Reg(d), Operand::word(1));
    f.store(Operand::Reg(done_addr), Operand::Reg(d1), Width::W32);
    let _ = Rvalue::Use(Operand::word(0));
}
