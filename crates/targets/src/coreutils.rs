//! A Coreutils-style suite of small command-line utilities (Fig. 11 and
//! Table 4 workload).
//!
//! The paper runs KLEE and Cloud9 over the 96 GNU Coreutils. This module
//! provides a suite of small utilities with the same character: each parses a
//! symbolic argument/input buffer and branches heavily on its content. The
//! suite is intentionally smaller than 96 programs; the Fig. 11 harness runs
//! whatever [`suite`] returns and reports per-utility coverage improvements.

use crate::helpers::emit_symbolic_buffer;
use c9_ir::{BinaryOp, FunctionBuilder, Operand, Program, ProgramBuilder, RegId, Rvalue, Width};

/// Builds the whole utility suite over `arg_len` symbolic input bytes each.
pub fn suite(arg_len: u32) -> Vec<(&'static str, Program)> {
    vec![
        ("echo", echo(arg_len)),
        ("wc", wc(arg_len)),
        ("basename", basename(arg_len)),
        ("tr", tr(arg_len)),
        ("head", head(arg_len)),
        ("uniq", uniq(arg_len)),
        ("expr", expr(arg_len)),
        ("cksum", cksum(arg_len)),
        ("cut", cut(arg_len)),
        ("seq", seq(arg_len)),
    ]
}

/// Emits the standard prologue: a symbolic input buffer plus an index and an
/// accumulator register.
fn prologue(f: &mut FunctionBuilder<'_>, arg_len: u32) -> (RegId, RegId, RegId) {
    let buf = emit_symbolic_buffer(f, arg_len);
    let i = f.copy(Operand::word(0));
    let acc = f.copy(Operand::word(0));
    (buf, i, acc)
}

/// Emits `byte = buf[i]` (with `i` a 32-bit register).
fn load_indexed(f: &mut FunctionBuilder<'_>, buf: RegId, i: RegId) -> RegId {
    let i64v = f.zext(Operand::Reg(i), Width::W64);
    let addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::Reg(i64v));
    f.load(Operand::Reg(addr), Width::W8)
}

/// Emits `i += 1`.
fn bump(f: &mut FunctionBuilder<'_>, i: RegId) {
    let next = f.binary(BinaryOp::Add, Operand::Reg(i), Operand::word(1));
    f.assign_to(i, Rvalue::Use(Operand::Reg(next)));
}

/// `echo`: recognizes the `-n` and `-e` flags, then scans the message for
/// escape sequences when `-e` is in effect.
fn echo(arg_len: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("echo");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let (buf, i, acc) = prologue(&mut f, arg_len);

    // Flag parsing: "-n" or "-e" as the first two bytes.
    let c0 = load_indexed(&mut f, buf, i);
    let is_dash = f.binary(BinaryOp::Eq, Operand::Reg(c0), Operand::byte(b'-'));
    let flag_bb = f.create_block();
    let scan_bb = f.create_block();
    let escapes_on = f.copy(Operand::word(0));
    f.branch(Operand::Reg(is_dash), flag_bb, scan_bb);
    f.switch_to(flag_bb);
    bump(&mut f, i);
    let c1 = load_indexed(&mut f, buf, i);
    let is_e = f.binary(BinaryOp::Eq, Operand::Reg(c1), Operand::byte(b'e'));
    let e_bb = f.create_block();
    let after_flag_bb = f.create_block();
    f.branch(Operand::Reg(is_e), e_bb, after_flag_bb);
    f.switch_to(e_bb);
    f.assign_to(escapes_on, Rvalue::Use(Operand::word(1)));
    f.jump(after_flag_bb);
    f.switch_to(after_flag_bb);
    bump(&mut f, i);
    f.jump(scan_bb);

    // Scan loop: count emitted characters; '\\' followed by 'n' or 't' counts
    // as one character when escapes are enabled.
    let loop_bb = scan_bb;
    let body_bb = f.create_block();
    let done_bb = f.create_block();
    f.switch_to(loop_bb);
    let in_range = f.binary(BinaryOp::Ult, Operand::Reg(i), Operand::word(arg_len));
    f.branch(Operand::Reg(in_range), body_bb, done_bb);
    f.switch_to(body_bb);
    let c = load_indexed(&mut f, buf, i);
    let is_bs = f.binary(BinaryOp::Eq, Operand::Reg(c), Operand::byte(b'\\'));
    let esc_wanted = f.binary(BinaryOp::Ne, Operand::Reg(escapes_on), Operand::word(0));
    let esc = f.binary(BinaryOp::And, Operand::Reg(is_bs), Operand::Reg(esc_wanted));
    let esc_bb = f.create_block();
    let plain_bb = f.create_block();
    let cont_bb = f.create_block();
    f.branch(Operand::Reg(esc), esc_bb, plain_bb);
    f.switch_to(esc_bb);
    bump(&mut f, i);
    f.jump(cont_bb);
    f.switch_to(plain_bb);
    let acc1 = f.binary(BinaryOp::Add, Operand::Reg(acc), Operand::word(1));
    f.assign_to(acc, Rvalue::Use(Operand::Reg(acc1)));
    f.jump(cont_bb);
    f.switch_to(cont_bb);
    bump(&mut f, i);
    f.jump(loop_bb);

    f.switch_to(done_bb);
    f.ret(Some(Operand::Reg(acc)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

/// `wc`: counts lines, words, and bytes over the input.
fn wc(arg_len: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("wc");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let (buf, i, lines) = prologue(&mut f, arg_len);
    let words = f.copy(Operand::word(0));
    let in_word = f.copy(Operand::word(0));

    let loop_bb = f.create_block();
    let body_bb = f.create_block();
    let done_bb = f.create_block();
    f.jump(loop_bb);
    f.switch_to(loop_bb);
    let in_range = f.binary(BinaryOp::Ult, Operand::Reg(i), Operand::word(arg_len));
    f.branch(Operand::Reg(in_range), body_bb, done_bb);
    f.switch_to(body_bb);
    let c = load_indexed(&mut f, buf, i);
    let is_nl = f.binary(BinaryOp::Eq, Operand::Reg(c), Operand::byte(b'\n'));
    let nl_bb = f.create_block();
    let not_nl_bb = f.create_block();
    let cont_bb = f.create_block();
    f.branch(Operand::Reg(is_nl), nl_bb, not_nl_bb);
    f.switch_to(nl_bb);
    let l1 = f.binary(BinaryOp::Add, Operand::Reg(lines), Operand::word(1));
    f.assign_to(lines, Rvalue::Use(Operand::Reg(l1)));
    f.assign_to(in_word, Rvalue::Use(Operand::word(0)));
    f.jump(cont_bb);
    f.switch_to(not_nl_bb);
    let is_sp = f.binary(BinaryOp::Eq, Operand::Reg(c), Operand::byte(b' '));
    let sp_bb = f.create_block();
    let ch_bb = f.create_block();
    f.branch(Operand::Reg(is_sp), sp_bb, ch_bb);
    f.switch_to(sp_bb);
    f.assign_to(in_word, Rvalue::Use(Operand::word(0)));
    f.jump(cont_bb);
    f.switch_to(ch_bb);
    let was_out = f.binary(BinaryOp::Eq, Operand::Reg(in_word), Operand::word(0));
    let new_word_bb = f.create_block();
    f.branch(Operand::Reg(was_out), new_word_bb, cont_bb);
    f.switch_to(new_word_bb);
    let w1 = f.binary(BinaryOp::Add, Operand::Reg(words), Operand::word(1));
    f.assign_to(words, Rvalue::Use(Operand::Reg(w1)));
    f.assign_to(in_word, Rvalue::Use(Operand::word(1)));
    f.jump(cont_bb);
    f.switch_to(cont_bb);
    bump(&mut f, i);
    f.jump(loop_bb);
    f.switch_to(done_bb);
    let score = f.binary(BinaryOp::Mul, Operand::Reg(lines), Operand::word(100));
    let total = f.binary(BinaryOp::Add, Operand::Reg(score), Operand::Reg(words));
    f.ret(Some(Operand::Reg(total)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

/// `basename`: finds the byte position after the last `/`.
fn basename(arg_len: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("basename");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let (buf, i, last_slash) = prologue(&mut f, arg_len);
    let loop_bb = f.create_block();
    let body_bb = f.create_block();
    let done_bb = f.create_block();
    f.jump(loop_bb);
    f.switch_to(loop_bb);
    let in_range = f.binary(BinaryOp::Ult, Operand::Reg(i), Operand::word(arg_len));
    f.branch(Operand::Reg(in_range), body_bb, done_bb);
    f.switch_to(body_bb);
    let c = load_indexed(&mut f, buf, i);
    let is_slash = f.binary(BinaryOp::Eq, Operand::Reg(c), Operand::byte(b'/'));
    let slash_bb = f.create_block();
    let cont_bb = f.create_block();
    f.branch(Operand::Reg(is_slash), slash_bb, cont_bb);
    f.switch_to(slash_bb);
    let pos = f.binary(BinaryOp::Add, Operand::Reg(i), Operand::word(1));
    f.assign_to(last_slash, Rvalue::Use(Operand::Reg(pos)));
    f.jump(cont_bb);
    f.switch_to(cont_bb);
    bump(&mut f, i);
    f.jump(loop_bb);
    f.switch_to(done_bb);
    // An all-slash path is reported specially, like GNU basename does.
    let all_slashes = f.binary(
        BinaryOp::Eq,
        Operand::Reg(last_slash),
        Operand::word(arg_len),
    );
    let root_bb = f.create_block();
    let normal_bb = f.create_block();
    f.branch(Operand::Reg(all_slashes), root_bb, normal_bb);
    f.switch_to(root_bb);
    f.ret(Some(Operand::word(1000)));
    f.switch_to(normal_bb);
    f.ret(Some(Operand::Reg(last_slash)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

/// `tr`: upper-cases ASCII letters and optionally deletes digits (`-d` mode
/// selected by the first byte).
fn tr(arg_len: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("tr");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let (buf, i, acc) = prologue(&mut f, arg_len);
    let delete_mode = {
        let c0 = load_indexed(&mut f, buf, i);
        let is_d = f.binary(BinaryOp::Eq, Operand::Reg(c0), Operand::byte(b'd'));
        f.zext(Operand::Reg(is_d), Width::W32)
    };
    bump(&mut f, i);
    let loop_bb = f.create_block();
    let body_bb = f.create_block();
    let done_bb = f.create_block();
    f.jump(loop_bb);
    f.switch_to(loop_bb);
    let in_range = f.binary(BinaryOp::Ult, Operand::Reg(i), Operand::word(arg_len));
    f.branch(Operand::Reg(in_range), body_bb, done_bb);
    f.switch_to(body_bb);
    let c = load_indexed(&mut f, buf, i);
    let ge_a = f.binary(BinaryOp::Ule, Operand::byte(b'a'), Operand::Reg(c));
    let le_z = f.binary(BinaryOp::Ule, Operand::Reg(c), Operand::byte(b'z'));
    let lower = f.binary(BinaryOp::And, Operand::Reg(ge_a), Operand::Reg(le_z));
    let lower_bb = f.create_block();
    let not_lower_bb = f.create_block();
    let cont_bb = f.create_block();
    f.branch(Operand::Reg(lower), lower_bb, not_lower_bb);
    f.switch_to(lower_bb);
    let a1 = f.binary(BinaryOp::Add, Operand::Reg(acc), Operand::word(1));
    f.assign_to(acc, Rvalue::Use(Operand::Reg(a1)));
    f.jump(cont_bb);
    f.switch_to(not_lower_bb);
    let ge_0 = f.binary(BinaryOp::Ule, Operand::byte(b'0'), Operand::Reg(c));
    let le_9 = f.binary(BinaryOp::Ule, Operand::Reg(c), Operand::byte(b'9'));
    let digit = f.binary(BinaryOp::And, Operand::Reg(ge_0), Operand::Reg(le_9));
    let deleting = f.binary(BinaryOp::Ne, Operand::Reg(delete_mode), Operand::word(0));
    let drop = f.binary(BinaryOp::And, Operand::Reg(digit), Operand::Reg(deleting));
    let drop_bb = f.create_block();
    let keep_bb = f.create_block();
    f.branch(Operand::Reg(drop), drop_bb, keep_bb);
    f.switch_to(drop_bb);
    f.jump(cont_bb);
    f.switch_to(keep_bb);
    let a2 = f.binary(BinaryOp::Add, Operand::Reg(acc), Operand::word(2));
    f.assign_to(acc, Rvalue::Use(Operand::Reg(a2)));
    f.jump(cont_bb);
    f.switch_to(cont_bb);
    bump(&mut f, i);
    f.jump(loop_bb);
    f.switch_to(done_bb);
    f.ret(Some(Operand::Reg(acc)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

/// `head`: parses a single-digit `-n N` option, then counts newlines until N
/// lines have been emitted.
fn head(arg_len: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("head");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let (buf, i, emitted) = prologue(&mut f, arg_len);
    // Default line budget: 2; "-N" with a digit overrides it.
    let budget = f.copy(Operand::word(2));
    let c0 = load_indexed(&mut f, buf, i);
    let is_dash = f.binary(BinaryOp::Eq, Operand::Reg(c0), Operand::byte(b'-'));
    let opt_bb = f.create_block();
    let scan_bb = f.create_block();
    f.branch(Operand::Reg(is_dash), opt_bb, scan_bb);
    f.switch_to(opt_bb);
    bump(&mut f, i);
    let d = load_indexed(&mut f, buf, i);
    let ge_0 = f.binary(BinaryOp::Ule, Operand::byte(b'0'), Operand::Reg(d));
    let le_9 = f.binary(BinaryOp::Ule, Operand::Reg(d), Operand::byte(b'9'));
    let digit = f.binary(BinaryOp::And, Operand::Reg(ge_0), Operand::Reg(le_9));
    let dig_bb = f.create_block();
    let bad_bb = f.create_block();
    f.branch(Operand::Reg(digit), dig_bb, bad_bb);
    f.switch_to(bad_bb);
    f.ret(Some(Operand::word(2)));
    f.switch_to(dig_bb);
    let val = f.binary(BinaryOp::Sub, Operand::Reg(d), Operand::byte(b'0'));
    let val32 = f.zext(Operand::Reg(val), Width::W32);
    f.assign_to(budget, Rvalue::Use(Operand::Reg(val32)));
    bump(&mut f, i);
    f.jump(scan_bb);

    let loop_bb = scan_bb;
    let body_bb = f.create_block();
    let done_bb = f.create_block();
    f.switch_to(loop_bb);
    let in_range = f.binary(BinaryOp::Ult, Operand::Reg(i), Operand::word(arg_len));
    let under_budget = f.binary(BinaryOp::Ult, Operand::Reg(emitted), Operand::Reg(budget));
    let keep_going = f.binary(
        BinaryOp::And,
        Operand::Reg(in_range),
        Operand::Reg(under_budget),
    );
    f.branch(Operand::Reg(keep_going), body_bb, done_bb);
    f.switch_to(body_bb);
    let c = load_indexed(&mut f, buf, i);
    let is_nl = f.binary(BinaryOp::Eq, Operand::Reg(c), Operand::byte(b'\n'));
    let nl_bb = f.create_block();
    let cont_bb = f.create_block();
    f.branch(Operand::Reg(is_nl), nl_bb, cont_bb);
    f.switch_to(nl_bb);
    let e1 = f.binary(BinaryOp::Add, Operand::Reg(emitted), Operand::word(1));
    f.assign_to(emitted, Rvalue::Use(Operand::Reg(e1)));
    f.jump(cont_bb);
    f.switch_to(cont_bb);
    bump(&mut f, i);
    f.jump(loop_bb);
    f.switch_to(done_bb);
    f.ret(Some(Operand::Reg(emitted)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

/// `uniq`: counts runs of identical adjacent bytes.
fn uniq(arg_len: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("uniq");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let (buf, i, runs) = prologue(&mut f, arg_len);
    let prev = f.copy(Operand::word(256)); // sentinel outside the byte range
    let loop_bb = f.create_block();
    let body_bb = f.create_block();
    let done_bb = f.create_block();
    f.jump(loop_bb);
    f.switch_to(loop_bb);
    let in_range = f.binary(BinaryOp::Ult, Operand::Reg(i), Operand::word(arg_len));
    f.branch(Operand::Reg(in_range), body_bb, done_bb);
    f.switch_to(body_bb);
    let c = load_indexed(&mut f, buf, i);
    let c32 = f.zext(Operand::Reg(c), Width::W32);
    let same = f.binary(BinaryOp::Eq, Operand::Reg(c32), Operand::Reg(prev));
    let new_bb = f.create_block();
    let cont_bb = f.create_block();
    f.branch(Operand::Reg(same), cont_bb, new_bb);
    f.switch_to(new_bb);
    let r1 = f.binary(BinaryOp::Add, Operand::Reg(runs), Operand::word(1));
    f.assign_to(runs, Rvalue::Use(Operand::Reg(r1)));
    f.assign_to(prev, Rvalue::Use(Operand::Reg(c32)));
    f.jump(cont_bb);
    f.switch_to(cont_bb);
    bump(&mut f, i);
    f.jump(loop_bb);
    f.switch_to(done_bb);
    f.ret(Some(Operand::Reg(runs)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

/// `expr`: evaluates `D op D` where D is a single digit and op is one of
/// `+ - * / %`; division by zero is left to the engine to flag.
fn expr(arg_len: u32) -> Program {
    assert!(arg_len >= 3);
    let mut pb = ProgramBuilder::new();
    pb.set_name("expr");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = emit_symbolic_buffer(&mut f, arg_len);
    let a = f.load(Operand::Reg(buf), Width::W8);
    let op_addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(1));
    let op = f.load(Operand::Reg(op_addr), Width::W8);
    let b_addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(2));
    let b = f.load(Operand::Reg(b_addr), Width::W8);

    // Both operands must be digits.
    let a_ge = f.binary(BinaryOp::Ule, Operand::byte(b'0'), Operand::Reg(a));
    let a_le = f.binary(BinaryOp::Ule, Operand::Reg(a), Operand::byte(b'9'));
    let b_ge = f.binary(BinaryOp::Ule, Operand::byte(b'0'), Operand::Reg(b));
    let b_le = f.binary(BinaryOp::Ule, Operand::Reg(b), Operand::byte(b'9'));
    let a_dig = f.binary(BinaryOp::And, Operand::Reg(a_ge), Operand::Reg(a_le));
    let b_dig = f.binary(BinaryOp::And, Operand::Reg(b_ge), Operand::Reg(b_le));
    let digits = f.binary(BinaryOp::And, Operand::Reg(a_dig), Operand::Reg(b_dig));
    let ok_bb = f.create_block();
    let usage_bb = f.create_block();
    f.branch(Operand::Reg(digits), ok_bb, usage_bb);
    f.switch_to(usage_bb);
    f.ret(Some(Operand::word(2)));

    f.switch_to(ok_bb);
    let av = f.binary(BinaryOp::Sub, Operand::Reg(a), Operand::byte(b'0'));
    let bv = f.binary(BinaryOp::Sub, Operand::Reg(b), Operand::byte(b'0'));
    let av32 = f.zext(Operand::Reg(av), Width::W32);
    let bv32 = f.zext(Operand::Reg(bv), Width::W32);
    let mut arms = Vec::new();
    for (ch, binop) in [
        (b'+', BinaryOp::Add),
        (b'-', BinaryOp::Sub),
        (b'*', BinaryOp::Mul),
        (b'/', BinaryOp::UDiv),
        (b'%', BinaryOp::URem),
    ] {
        let arm_bb = f.create_block();
        let next_bb = f.create_block();
        let is_op = f.binary(BinaryOp::Eq, Operand::Reg(op), Operand::byte(ch));
        f.branch(Operand::Reg(is_op), arm_bb, next_bb);
        arms.push((arm_bb, binop));
        f.switch_to(next_bb);
    }
    // Unknown operator.
    f.ret(Some(Operand::word(2)));
    for (arm_bb, binop) in arms {
        f.switch_to(arm_bb);
        let r = f.binary(binop, Operand::Reg(av32), Operand::Reg(bv32));
        f.ret(Some(Operand::Reg(r)));
    }
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

/// `cksum`: a rolling xor/rotate checksum with a branch on the top bit.
fn cksum(arg_len: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("cksum");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let (buf, i, sum) = prologue(&mut f, arg_len);
    let loop_bb = f.create_block();
    let body_bb = f.create_block();
    let done_bb = f.create_block();
    f.jump(loop_bb);
    f.switch_to(loop_bb);
    let in_range = f.binary(BinaryOp::Ult, Operand::Reg(i), Operand::word(arg_len));
    f.branch(Operand::Reg(in_range), body_bb, done_bb);
    f.switch_to(body_bb);
    let c = load_indexed(&mut f, buf, i);
    let c32 = f.zext(Operand::Reg(c), Width::W32);
    let shifted = f.binary(BinaryOp::Shl, Operand::Reg(sum), Operand::word(1));
    let top = f.binary(BinaryOp::And, Operand::Reg(c32), Operand::word(0x80));
    let top_set = f.binary(BinaryOp::Ne, Operand::Reg(top), Operand::word(0));
    let fold_bb = f.create_block();
    let plain_bb = f.create_block();
    let cont_bb = f.create_block();
    f.branch(Operand::Reg(top_set), fold_bb, plain_bb);
    f.switch_to(fold_bb);
    let folded = f.binary(
        BinaryOp::Xor,
        Operand::Reg(shifted),
        Operand::word(0x04C1_1DB7),
    );
    let mixed = f.binary(BinaryOp::Xor, Operand::Reg(folded), Operand::Reg(c32));
    f.assign_to(sum, Rvalue::Use(Operand::Reg(mixed)));
    f.jump(cont_bb);
    f.switch_to(plain_bb);
    let mixed2 = f.binary(BinaryOp::Xor, Operand::Reg(shifted), Operand::Reg(c32));
    f.assign_to(sum, Rvalue::Use(Operand::Reg(mixed2)));
    f.jump(cont_bb);
    f.switch_to(cont_bb);
    bump(&mut f, i);
    f.jump(loop_bb);
    f.switch_to(done_bb);
    f.ret(Some(Operand::Reg(sum)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

/// `cut`: selects the N-th `:`-separated field (N given by the first byte).
fn cut(arg_len: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("cut");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let (buf, i, current_field) = prologue(&mut f, arg_len);
    let wanted = {
        let c0 = load_indexed(&mut f, buf, i);
        let raw = f.binary(BinaryOp::Sub, Operand::Reg(c0), Operand::byte(b'0'));
        let raw32 = f.zext(Operand::Reg(raw), Width::W32);
        f.binary(BinaryOp::And, Operand::Reg(raw32), Operand::word(0x3))
    };
    bump(&mut f, i);
    let picked = f.copy(Operand::word(0));
    let loop_bb = f.create_block();
    let body_bb = f.create_block();
    let done_bb = f.create_block();
    f.jump(loop_bb);
    f.switch_to(loop_bb);
    let in_range = f.binary(BinaryOp::Ult, Operand::Reg(i), Operand::word(arg_len));
    f.branch(Operand::Reg(in_range), body_bb, done_bb);
    f.switch_to(body_bb);
    let c = load_indexed(&mut f, buf, i);
    let is_sep = f.binary(BinaryOp::Eq, Operand::Reg(c), Operand::byte(b':'));
    let sep_bb = f.create_block();
    let data_bb = f.create_block();
    let cont_bb = f.create_block();
    f.branch(Operand::Reg(is_sep), sep_bb, data_bb);
    f.switch_to(sep_bb);
    let nf = f.binary(BinaryOp::Add, Operand::Reg(current_field), Operand::word(1));
    f.assign_to(current_field, Rvalue::Use(Operand::Reg(nf)));
    f.jump(cont_bb);
    f.switch_to(data_bb);
    let in_wanted = f.binary(
        BinaryOp::Eq,
        Operand::Reg(current_field),
        Operand::Reg(wanted),
    );
    let pick_bb = f.create_block();
    f.branch(Operand::Reg(in_wanted), pick_bb, cont_bb);
    f.switch_to(pick_bb);
    let p1 = f.binary(BinaryOp::Add, Operand::Reg(picked), Operand::word(1));
    f.assign_to(picked, Rvalue::Use(Operand::Reg(p1)));
    f.jump(cont_bb);
    f.switch_to(cont_bb);
    bump(&mut f, i);
    f.jump(loop_bb);
    f.switch_to(done_bb);
    f.ret(Some(Operand::Reg(picked)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

/// `seq`: parses two single-digit bounds and reports how many numbers would
/// be printed (zero when the range is empty or the input is malformed).
fn seq(arg_len: u32) -> Program {
    assert!(arg_len >= 3);
    let mut pb = ProgramBuilder::new();
    pb.set_name("seq");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = emit_symbolic_buffer(&mut f, arg_len);
    let lo = f.load(Operand::Reg(buf), Width::W8);
    let hi_addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(2));
    let hi = f.load(Operand::Reg(hi_addr), Width::W8);
    let lo_ok_a = f.binary(BinaryOp::Ule, Operand::byte(b'0'), Operand::Reg(lo));
    let lo_ok_b = f.binary(BinaryOp::Ule, Operand::Reg(lo), Operand::byte(b'9'));
    let hi_ok_a = f.binary(BinaryOp::Ule, Operand::byte(b'0'), Operand::Reg(hi));
    let hi_ok_b = f.binary(BinaryOp::Ule, Operand::Reg(hi), Operand::byte(b'9'));
    let lo_ok = f.binary(BinaryOp::And, Operand::Reg(lo_ok_a), Operand::Reg(lo_ok_b));
    let hi_ok = f.binary(BinaryOp::And, Operand::Reg(hi_ok_a), Operand::Reg(hi_ok_b));
    let ok = f.binary(BinaryOp::And, Operand::Reg(lo_ok), Operand::Reg(hi_ok));
    let ok_bb = f.create_block();
    let bad_bb = f.create_block();
    f.branch(Operand::Reg(ok), ok_bb, bad_bb);
    f.switch_to(bad_bb);
    f.ret(Some(Operand::word(2)));
    f.switch_to(ok_bb);
    let empty = f.binary(BinaryOp::Ult, Operand::Reg(hi), Operand::Reg(lo));
    let empty_bb = f.create_block();
    let count_bb = f.create_block();
    f.branch(Operand::Reg(empty), empty_bb, count_bb);
    f.switch_to(empty_bb);
    f.ret(Some(Operand::word(0)));
    f.switch_to(count_bb);
    let span = f.binary(BinaryOp::Sub, Operand::Reg(hi), Operand::Reg(lo));
    let span32 = f.zext(Operand::Reg(span), Width::W32);
    let count = f.binary(BinaryOp::Add, Operand::Reg(span32), Operand::word(1));
    f.ret(Some(Operand::Reg(count)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}
