//! Smoke and behaviour tests of the target programs under the engine.

use crate::{
    all_targets, bandicoot, coreutils, curl, lighttpd, memcached, printf_util, producer_consumer,
    test_util, LighttpdVersion,
};
use c9_posix::{PosixConfig, PosixEnvironment};
use c9_vm::{
    BugKind, DfsSearcher, Engine, EngineConfig, ExecutorConfig, RunSummary, TerminationReason,
};
use std::sync::Arc;
use std::time::Duration;

fn run(program: c9_ir::Program, config: EngineConfig) -> RunSummary {
    let mut engine = Engine::new(
        Arc::new(program),
        Arc::new(PosixEnvironment::new()),
        Box::new(DfsSearcher::new()),
        config,
    );
    engine.run()
}

fn bounded(max_paths: usize) -> EngineConfig {
    EngineConfig {
        max_paths,
        max_time: Some(Duration::from_secs(20)),
        generate_test_cases: false,
        executor: ExecutorConfig {
            max_instructions_per_path: 200_000,
            ..ExecutorConfig::default()
        },
        ..EngineConfig::default()
    }
}

#[test]
fn every_target_validates_and_runs_at_least_one_path() {
    for target in all_targets() {
        assert!(
            target.program.validate().is_ok(),
            "{} fails validation",
            target.name
        );
        let summary = run(target.program.clone(), bounded(3));
        assert!(
            summary.paths_completed >= 1,
            "{} completed no paths",
            target.name
        );
    }
}

#[test]
fn memcached_exhaustive_single_packet() {
    let config = memcached::MemcachedConfig {
        packets: 1,
        packet_size: 5,
        ..memcached::MemcachedConfig::default()
    };
    let summary = run(memcached::program(&config), bounded(0));
    assert!(summary.exhausted, "single-packet test should be exhaustive");
    // All protocol outcomes reachable with an empty table.
    assert!(
        summary.paths_completed >= 8,
        "too few protocol outcomes: {}",
        summary.paths_completed
    );
    assert_eq!(summary.bugs.len(), 0);
}

#[test]
fn memcached_two_packets_explode_combinatorially() {
    let one = run(
        memcached::program(&memcached::MemcachedConfig {
            packets: 1,
            packet_size: 5,
            ..memcached::MemcachedConfig::default()
        }),
        bounded(0),
    );
    let two = run(
        memcached::program(&memcached::MemcachedConfig {
            packets: 2,
            packet_size: 5,
            ..memcached::MemcachedConfig::default()
        }),
        bounded(0),
    );
    assert!(two.exhausted);
    // The second packet multiplies the number of paths (the Table 5 effect).
    assert!(
        two.paths_completed > 3 * one.paths_completed,
        "1 packet: {} paths, 2 packets: {} paths",
        one.paths_completed,
        two.paths_completed
    );
}

#[test]
fn memcached_udp_hang_is_detected() {
    let config = memcached::MemcachedConfig {
        packets: 1,
        packet_size: 4,
        udp_mode: true,
        ..memcached::MemcachedConfig::default()
    };
    let mut engine_config = bounded(0);
    engine_config.executor.max_instructions_per_path = 20_000;
    let summary = run(memcached::program(&config), engine_config);
    let hangs = summary
        .test_cases
        .iter()
        .chain(summary.bugs.iter())
        .filter(|tc| tc.termination == TerminationReason::MaxInstructions)
        .count();
    assert!(
        hangs >= 1
            || summary
                .bugs
                .iter()
                .any(|b| b.termination == TerminationReason::MaxInstructions),
        "the UDP hang was not detected"
    );
}

#[test]
fn lighttpd_pre_patch_crashes_post_patch_still_crashes_fixed_does_not() {
    let env_config = PosixConfig {
        max_symbolic_chunk: 28,
        max_fragment_alternatives: 3,
        ..PosixConfig::default()
    };
    let mut crash_counts = Vec::new();
    for version in [
        LighttpdVersion::V1_4_12,
        LighttpdVersion::V1_4_13,
        LighttpdVersion::Fixed,
    ] {
        let mut engine = Engine::new(
            Arc::new(lighttpd::program(version)),
            Arc::new(PosixEnvironment::with_config(env_config)),
            Box::new(DfsSearcher::new()),
            EngineConfig {
                max_paths: 400,
                max_time: Some(Duration::from_secs(30)),
                generate_test_cases: false,
                ..EngineConfig::default()
            },
        );
        let summary = engine.run();
        let crashes = summary
            .bugs
            .iter()
            .filter(|b| matches!(b.termination, TerminationReason::Bug(BugKind::Abort { .. })))
            .count();
        crash_counts.push(crashes);
    }
    assert!(crash_counts[0] > 0, "pre-patch version must crash");
    assert!(
        crash_counts[1] > 0,
        "post-patch version must still crash for some fragmentations (incomplete fix)"
    );
    assert_eq!(crash_counts[2], 0, "fixed version must never crash");
}

#[test]
fn curl_unmatched_brace_is_found_and_reproduced() {
    let mut config = bounded(0);
    config.generate_test_cases = false;
    let summary = run(curl::program(5), config);
    assert!(summary.exhausted);
    assert!(!summary.bugs.is_empty(), "the glob bug was not found");
    let bug = &summary.bugs[0];
    // The crashing URL must contain an unmatched '{'.
    let url = bug.bytes_with_prefix("sym");
    let opens = url.iter().filter(|b| **b == b'{').count();
    let closes = url.iter().filter(|b| **b == b'}').count();
    assert!(opens > closes, "crashing input {url:?} has balanced braces");
}

#[test]
fn bandicoot_out_of_bounds_read_is_found() {
    let summary = run(bandicoot::program(), bounded(0));
    assert!(summary.exhausted);
    let oob = summary.bugs.iter().any(|b| {
        matches!(
            b.termination,
            TerminationReason::Bug(BugKind::OutOfBounds { .. })
        )
    });
    assert!(oob, "the out-of-bounds read was not detected");
}

#[test]
fn printf_explores_many_format_paths() {
    let mut config = bounded(200);
    config.generate_test_cases = false;
    let summary = run(printf_util::program(4), config);
    assert!(
        summary.paths_completed >= 20,
        "printf produced only {} paths",
        summary.paths_completed
    );
    assert!(summary.coverage.count() > 0);
}

#[test]
fn test_util_covers_true_false_and_usage_error() {
    let mut config = bounded(0);
    config.generate_test_cases = true;
    let summary = run(test_util::program(6), config);
    assert!(summary.exhausted);
    let mut exits: Vec<i64> = summary
        .test_cases
        .iter()
        .filter_map(|tc| match tc.termination {
            TerminationReason::Exit(c) => Some(c),
            _ => None,
        })
        .collect();
    exits.sort_unstable();
    exits.dedup();
    assert!(exits.contains(&0), "no true outcome");
    assert!(exits.contains(&1), "no false outcome");
    assert!(exits.contains(&2), "no usage-error outcome");
}

#[test]
fn coreutils_suite_programs_all_run_and_branch() {
    for (name, program) in coreutils::suite(3) {
        let mut config = bounded(100);
        config.generate_test_cases = false;
        let summary = run(program, config);
        assert!(
            summary.paths_completed >= 2,
            "{name} explored only {} paths",
            summary.paths_completed
        );
    }
}

#[test]
fn producer_consumer_runs_without_bugs_and_balances_tokens() {
    let summary = run(producer_consumer::program(2, 2), bounded(5));
    assert_eq!(summary.bugs.len(), 0, "bugs: {:?}", summary.bugs);
    assert!(summary.paths_completed >= 1);
    // Exit code: 100 * (1 datagram byte) + tokens left (0 when every consumer
    // finds a token, up to 2 when consumers run before producers).
    let ok = summary.test_cases.iter().all(|tc| match tc.termination {
        TerminationReason::Exit(code) => (100..=102).contains(&code),
        _ => false,
    });
    assert!(ok || summary.test_cases.is_empty());
}
