//! A `test(1)`-style expression evaluator (Fig. 10 workload).
//!
//! Parses a symbolic argument string of the form `[!] -<unary> X` or
//! `X <op> Y` where `<op>` is one of `=`, `<`, `>`, and the unary operators
//! are `-z` (empty) and `-n` (non-empty).

use crate::helpers::emit_symbolic_buffer;
use c9_ir::{BinaryOp, Operand, Program, ProgramBuilder, Rvalue, Width};

/// Builds the test-like program over `arg_len` symbolic argument bytes.
pub fn program(arg_len: u32) -> Program {
    assert!(arg_len >= 6, "test expressions need at least 6 bytes");
    let mut pb = ProgramBuilder::new();
    pb.set_name("test");

    let mut f = pb.function("main", 0, Some(Width::W32));
    let arg = emit_symbolic_buffer(&mut f, arg_len);
    let negate = f.copy(Operand::word(0));
    let pos = f.copy(Operand::word(0));

    // Optional leading "! " negation.
    let c0 = f.load(Operand::Reg(arg), Width::W8);
    let is_bang = f.binary(BinaryOp::Eq, Operand::Reg(c0), Operand::byte(b'!'));
    let bang_bb = f.create_block();
    let parse_bb = f.create_block();
    f.branch(Operand::Reg(is_bang), bang_bb, parse_bb);
    f.switch_to(bang_bb);
    f.assign_to(negate, Rvalue::Use(Operand::word(1)));
    f.assign_to(pos, Rvalue::Use(Operand::word(2)));
    f.jump(parse_bb);

    // Dispatch on the first expression byte.
    f.switch_to(parse_bb);
    let p64 = f.zext(Operand::Reg(pos), Width::W64);
    let head_addr = f.binary(BinaryOp::Add, Operand::Reg(arg), Operand::Reg(p64));
    let head = f.load(Operand::Reg(head_addr), Width::W8);
    let result = f.copy(Operand::word(0));
    let is_dash = f.binary(BinaryOp::Eq, Operand::Reg(head), Operand::byte(b'-'));
    let unary_bb = f.create_block();
    let binary_bb = f.create_block();
    let finish_bb = f.create_block();
    f.branch(Operand::Reg(is_dash), unary_bb, binary_bb);

    // Unary: -z STR (true when next byte is NUL) / -n STR (the opposite).
    f.switch_to(unary_bb);
    let op_addr = f.binary(BinaryOp::Add, Operand::Reg(head_addr), Operand::word(1));
    let op = f.load(Operand::Reg(op_addr), Width::W8);
    let str_addr = f.binary(BinaryOp::Add, Operand::Reg(head_addr), Operand::word(3));
    let first_str = f.load(Operand::Reg(str_addr), Width::W8);
    let str_empty = f.binary(BinaryOp::Eq, Operand::Reg(first_str), Operand::byte(0));
    let is_z = f.binary(BinaryOp::Eq, Operand::Reg(op), Operand::byte(b'z'));
    let z_bb = f.create_block();
    let not_z_bb = f.create_block();
    let n_bb = f.create_block();
    let bad_unary_bb = f.create_block();
    f.branch(Operand::Reg(is_z), z_bb, not_z_bb);
    f.switch_to(z_bb);
    let z_result = f.zext(Operand::Reg(str_empty), Width::W32);
    f.assign_to(result, Rvalue::Use(Operand::Reg(z_result)));
    f.jump(finish_bb);
    f.switch_to(not_z_bb);
    let is_n = f.binary(BinaryOp::Eq, Operand::Reg(op), Operand::byte(b'n'));
    f.branch(Operand::Reg(is_n), n_bb, bad_unary_bb);
    f.switch_to(n_bb);
    let not_empty = f.binary(
        BinaryOp::Eq,
        Operand::Reg(str_empty),
        Operand::const_(0, Width::W1),
    );
    let n_result = f.zext(Operand::Reg(not_empty), Width::W32);
    f.assign_to(result, Rvalue::Use(Operand::Reg(n_result)));
    f.jump(finish_bb);
    f.switch_to(bad_unary_bb);
    // Unknown unary operator: usage error (exit code 2, like test(1)).
    f.ret(Some(Operand::word(2)));

    // Binary: X op Y over single bytes with op in {'=', '<', '>'}.
    f.switch_to(binary_bb);
    let x = head;
    let op2_addr = f.binary(BinaryOp::Add, Operand::Reg(head_addr), Operand::word(1));
    let op2 = f.load(Operand::Reg(op2_addr), Width::W8);
    let y_addr = f.binary(BinaryOp::Add, Operand::Reg(head_addr), Operand::word(2));
    let y = f.load(Operand::Reg(y_addr), Width::W8);
    let eq_bb = f.create_block();
    let not_eq_bb = f.create_block();
    let lt_bb = f.create_block();
    let not_lt_bb = f.create_block();
    let gt_bb = f.create_block();
    let bad_op_bb = f.create_block();
    let is_eq = f.binary(BinaryOp::Eq, Operand::Reg(op2), Operand::byte(b'='));
    f.branch(Operand::Reg(is_eq), eq_bb, not_eq_bb);
    f.switch_to(eq_bb);
    let cmp_eq = f.binary(BinaryOp::Eq, Operand::Reg(x), Operand::Reg(y));
    let r_eq = f.zext(Operand::Reg(cmp_eq), Width::W32);
    f.assign_to(result, Rvalue::Use(Operand::Reg(r_eq)));
    f.jump(finish_bb);
    f.switch_to(not_eq_bb);
    let is_lt = f.binary(BinaryOp::Eq, Operand::Reg(op2), Operand::byte(b'<'));
    f.branch(Operand::Reg(is_lt), lt_bb, not_lt_bb);
    f.switch_to(lt_bb);
    let cmp_lt = f.binary(BinaryOp::Ult, Operand::Reg(x), Operand::Reg(y));
    let r_lt = f.zext(Operand::Reg(cmp_lt), Width::W32);
    f.assign_to(result, Rvalue::Use(Operand::Reg(r_lt)));
    f.jump(finish_bb);
    f.switch_to(not_lt_bb);
    let is_gt = f.binary(BinaryOp::Eq, Operand::Reg(op2), Operand::byte(b'>'));
    f.branch(Operand::Reg(is_gt), gt_bb, bad_op_bb);
    f.switch_to(gt_bb);
    let cmp_gt = f.binary(BinaryOp::Ult, Operand::Reg(y), Operand::Reg(x));
    let r_gt = f.zext(Operand::Reg(cmp_gt), Width::W32);
    f.assign_to(result, Rvalue::Use(Operand::Reg(r_gt)));
    f.jump(finish_bb);
    f.switch_to(bad_op_bb);
    f.ret(Some(Operand::word(2)));

    // Apply negation and map to exit codes 0 (true) / 1 (false).
    f.switch_to(finish_bb);
    let negated = f.binary(BinaryOp::Xor, Operand::Reg(result), Operand::Reg(negate));
    let truthy = f.binary(BinaryOp::Ne, Operand::Reg(negated), Operand::word(0));
    let true_bb = f.create_block();
    let false_bb = f.create_block();
    f.branch(Operand::Reg(truthy), true_bb, false_bb);
    f.switch_to(true_bb);
    f.ret(Some(Operand::word(0)));
    f.switch_to(false_bb);
    f.ret(Some(Operand::word(1)));

    let main = f.finish();
    pb.set_entry(main);
    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    program
}
