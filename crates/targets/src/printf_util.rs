//! A `printf(1)`-style format-string parser (Fig. 8 and Fig. 10 workload).
//!
//! The paper uses `printf` because "it performs a lot of parsing of its input
//! (format specifiers), which produces complex constraints when executed
//! symbolically". This target is a faithful reduction: a state machine over a
//! symbolic format string handling `%` conversions, flags, field widths and
//! escape sequences.

use crate::helpers::emit_symbolic_buffer;
use c9_ir::{BinaryOp, Operand, Program, ProgramBuilder, Rvalue, Width};

/// Builds the printf-like program over a symbolic format string of
/// `fmt_len` bytes.
pub fn program(fmt_len: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("printf");

    let mut f = pb.function("main", 0, Some(Width::W32));
    let fmt = emit_symbolic_buffer(&mut f, fmt_len);
    let i = f.copy(Operand::word(0));
    let out_count = f.copy(Operand::word(0));
    let error = f.copy(Operand::word(0));

    let loop_bb = f.create_block();
    let body_bb = f.create_block();
    let percent_bb = f.create_block();
    let literal_bb = f.create_block();
    let escape_bb = f.create_block();
    let next_bb = f.create_block();
    let done_bb = f.create_block();
    f.jump(loop_bb);

    // while i < fmt_len
    f.switch_to(loop_bb);
    let in_range = f.binary(BinaryOp::Ult, Operand::Reg(i), Operand::word(fmt_len));
    f.branch(Operand::Reg(in_range), body_bb, done_bb);

    f.switch_to(body_bb);
    let i64v = f.zext(Operand::Reg(i), Width::W64);
    let addr = f.binary(BinaryOp::Add, Operand::Reg(fmt), Operand::Reg(i64v));
    let c = f.load(Operand::Reg(addr), Width::W8);
    // NUL terminates the format string.
    let is_nul = f.binary(BinaryOp::Eq, Operand::Reg(c), Operand::byte(0));
    let not_nul_bb = f.create_block();
    f.branch(Operand::Reg(is_nul), done_bb, not_nul_bb);
    f.switch_to(not_nul_bb);
    let is_pct = f.binary(BinaryOp::Eq, Operand::Reg(c), Operand::byte(b'%'));
    let not_pct_bb = f.create_block();
    f.branch(Operand::Reg(is_pct), percent_bb, not_pct_bb);
    f.switch_to(not_pct_bb);
    let is_esc = f.binary(BinaryOp::Eq, Operand::Reg(c), Operand::byte(b'\\'));
    f.branch(Operand::Reg(is_esc), escape_bb, literal_bb);

    // A literal character is simply emitted.
    f.switch_to(literal_bb);
    let bumped = f.binary(BinaryOp::Add, Operand::Reg(out_count), Operand::word(1));
    f.assign_to(out_count, Rvalue::Use(Operand::Reg(bumped)));
    f.jump(next_bb);

    // Escape sequences: \n, \t, \\ are understood, anything else is an error.
    f.switch_to(escape_bb);
    let esc_i = f.binary(BinaryOp::Add, Operand::Reg(i), Operand::word(1));
    let esc_i64 = f.zext(Operand::Reg(esc_i), Width::W64);
    let esc_addr = f.binary(BinaryOp::Add, Operand::Reg(fmt), Operand::Reg(esc_i64));
    let esc_in_range = f.binary(BinaryOp::Ult, Operand::Reg(esc_i), Operand::word(fmt_len));
    let esc_ok_bb = f.create_block();
    let esc_bad_bb = f.create_block();
    let esc_known_bb = f.create_block();
    let esc_unknown_bb = f.create_block();
    f.branch(Operand::Reg(esc_in_range), esc_ok_bb, esc_bad_bb);
    f.switch_to(esc_bad_bb);
    f.ret(Some(Operand::word(2)));
    f.switch_to(esc_ok_bb);
    let e = f.load(Operand::Reg(esc_addr), Width::W8);
    let is_n = f.binary(BinaryOp::Eq, Operand::Reg(e), Operand::byte(b'n'));
    let is_t = f.binary(BinaryOp::Eq, Operand::Reg(e), Operand::byte(b't'));
    let is_bs = f.binary(BinaryOp::Eq, Operand::Reg(e), Operand::byte(b'\\'));
    let nt = f.binary(BinaryOp::Or, Operand::Reg(is_n), Operand::Reg(is_t));
    let known = f.binary(BinaryOp::Or, Operand::Reg(nt), Operand::Reg(is_bs));
    f.branch(Operand::Reg(known), esc_known_bb, esc_unknown_bb);
    f.switch_to(esc_unknown_bb);
    let err1 = f.binary(BinaryOp::Add, Operand::Reg(error), Operand::word(1));
    f.assign_to(error, Rvalue::Use(Operand::Reg(err1)));
    f.jump(esc_known_bb);
    f.switch_to(esc_known_bb);
    f.assign_to(i, Rvalue::Use(Operand::Reg(esc_i)));
    f.jump(next_bb);

    // Conversion specifications: %[-0][1-9]?[dsxc%]
    f.switch_to(percent_bb);
    let spec_i = f.copy(Operand::Reg(esc_i)); // i + 1, recomputed below
    let si = f.binary(BinaryOp::Add, Operand::Reg(i), Operand::word(1));
    f.assign_to(spec_i, Rvalue::Use(Operand::Reg(si)));
    let spec_in_range = f.binary(BinaryOp::Ult, Operand::Reg(spec_i), Operand::word(fmt_len));
    let spec_ok_bb = f.create_block();
    let dangling_bb = f.create_block();
    f.branch(Operand::Reg(spec_in_range), spec_ok_bb, dangling_bb);
    f.switch_to(dangling_bb);
    // A bare trailing '%' is an error exit, like printf(1) complaining.
    f.ret(Some(Operand::word(3)));

    f.switch_to(spec_ok_bb);
    let si64 = f.zext(Operand::Reg(spec_i), Width::W64);
    let saddr = f.binary(BinaryOp::Add, Operand::Reg(fmt), Operand::Reg(si64));
    let s = f.load(Operand::Reg(saddr), Width::W8);

    // Optional flag characters '-' or '0'.
    let is_minus = f.binary(BinaryOp::Eq, Operand::Reg(s), Operand::byte(b'-'));
    let is_zero = f.binary(BinaryOp::Eq, Operand::Reg(s), Operand::byte(b'0'));
    let has_flag = f.binary(BinaryOp::Or, Operand::Reg(is_minus), Operand::Reg(is_zero));
    let flag_bb = f.create_block();
    let width_check_bb = f.create_block();
    f.branch(Operand::Reg(has_flag), flag_bb, width_check_bb);
    f.switch_to(flag_bb);
    let si2 = f.binary(BinaryOp::Add, Operand::Reg(spec_i), Operand::word(1));
    f.assign_to(spec_i, Rvalue::Use(Operand::Reg(si2)));
    f.jump(width_check_bb);

    // Optional single-digit field width.
    f.switch_to(width_check_bb);
    let wi64 = f.zext(Operand::Reg(spec_i), Width::W64);
    let waddr = f.binary(BinaryOp::Add, Operand::Reg(fmt), Operand::Reg(wi64));
    let w_in_range = f.binary(BinaryOp::Ult, Operand::Reg(spec_i), Operand::word(fmt_len));
    let w_ok_bb = f.create_block();
    let conv_bb = f.create_block();
    f.branch(Operand::Reg(w_in_range), w_ok_bb, dangling_bb);
    f.switch_to(w_ok_bb);
    let wc = f.load(Operand::Reg(waddr), Width::W8);
    let ge_1 = f.binary(BinaryOp::Ule, Operand::byte(b'1'), Operand::Reg(wc));
    let le_9 = f.binary(BinaryOp::Ule, Operand::Reg(wc), Operand::byte(b'9'));
    let is_digit = f.binary(BinaryOp::And, Operand::Reg(ge_1), Operand::Reg(le_9));
    let digit_bb = f.create_block();
    f.branch(Operand::Reg(is_digit), digit_bb, conv_bb);
    f.switch_to(digit_bb);
    let si3 = f.binary(BinaryOp::Add, Operand::Reg(spec_i), Operand::word(1));
    f.assign_to(spec_i, Rvalue::Use(Operand::Reg(si3)));
    f.jump(conv_bb);

    // Conversion character.
    f.switch_to(conv_bb);
    let ci64 = f.zext(Operand::Reg(spec_i), Width::W64);
    let caddr = f.binary(BinaryOp::Add, Operand::Reg(fmt), Operand::Reg(ci64));
    let c_in_range = f.binary(BinaryOp::Ult, Operand::Reg(spec_i), Operand::word(fmt_len));
    let c_ok_bb = f.create_block();
    f.branch(Operand::Reg(c_in_range), c_ok_bb, dangling_bb);
    f.switch_to(c_ok_bb);
    let cc = f.load(Operand::Reg(caddr), Width::W8);
    let is_d = f.binary(BinaryOp::Eq, Operand::Reg(cc), Operand::byte(b'd'));
    let is_s = f.binary(BinaryOp::Eq, Operand::Reg(cc), Operand::byte(b's'));
    let is_x = f.binary(BinaryOp::Eq, Operand::Reg(cc), Operand::byte(b'x'));
    let is_c = f.binary(BinaryOp::Eq, Operand::Reg(cc), Operand::byte(b'c'));
    let is_p = f.binary(BinaryOp::Eq, Operand::Reg(cc), Operand::byte(b'%'));
    let ds = f.binary(BinaryOp::Or, Operand::Reg(is_d), Operand::Reg(is_s));
    let dsx = f.binary(BinaryOp::Or, Operand::Reg(ds), Operand::Reg(is_x));
    let dsxc = f.binary(BinaryOp::Or, Operand::Reg(dsx), Operand::Reg(is_c));
    let valid = f.binary(BinaryOp::Or, Operand::Reg(dsxc), Operand::Reg(is_p));
    let valid_bb = f.create_block();
    let invalid_bb = f.create_block();
    f.branch(Operand::Reg(valid), valid_bb, invalid_bb);
    f.switch_to(invalid_bb);
    let err2 = f.binary(BinaryOp::Add, Operand::Reg(error), Operand::word(1));
    f.assign_to(error, Rvalue::Use(Operand::Reg(err2)));
    f.jump(valid_bb);
    f.switch_to(valid_bb);
    let out2 = f.binary(BinaryOp::Add, Operand::Reg(out_count), Operand::word(1));
    f.assign_to(out_count, Rvalue::Use(Operand::Reg(out2)));
    f.assign_to(i, Rvalue::Use(Operand::Reg(spec_i)));
    f.jump(next_bb);

    // i += 1 and loop.
    f.switch_to(next_bb);
    let inext = f.binary(BinaryOp::Add, Operand::Reg(i), Operand::word(1));
    f.assign_to(i, Rvalue::Use(Operand::Reg(inext)));
    f.jump(loop_bb);

    // Exit code encodes "errors seen" so both outcomes are distinguishable.
    f.switch_to(done_bb);
    let had_errors = f.binary(BinaryOp::Ne, Operand::Reg(error), Operand::word(0));
    let err_exit_bb = f.create_block();
    let ok_exit_bb = f.create_block();
    f.branch(Operand::Reg(had_errors), err_exit_bb, ok_exit_bb);
    f.switch_to(err_exit_bb);
    f.ret(Some(Operand::word(1)));
    f.switch_to(ok_exit_bb);
    f.ret(Some(Operand::word(0)));

    let main = f.finish();
    pb.set_entry(main);
    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    program
}
