//! Named workloads for command-line tools.
//!
//! The `c9-coordinator` and `c9-worker` binaries select a program under test
//! by short name; this registry maps those names to a built program plus the
//! environment model it needs. Sizes are chosen so the exhaustive workloads
//! finish in seconds — the same shapes the integration tests use.

use crate::LighttpdVersion;
use crate::{bandicoot, curl, lighttpd, memcached, printf_util, producer_consumer, test_util};
use c9_ir::Program;

/// Which environment model a workload needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadEnv {
    /// `c9_vm::NullEnvironment`.
    Null,
    /// The symbolic POSIX model with its default configuration.
    Posix,
}

/// A workload selectable by name on the command line.
pub struct NamedWorkload {
    /// The CLI name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The program under test.
    pub program: Program,
    /// The environment model it needs.
    pub env: WorkloadEnv,
}

/// The names accepted by [`named_workload`].
pub fn workload_names() -> Vec<&'static str> {
    vec![
        "memcached",
        "memcached-2x5",
        "memcached-3x5",
        "printf",
        "test",
        "lighttpd-pre",
        "lighttpd-post",
        "curl",
        "bandicoot",
        "producer-consumer",
    ]
}

/// Builds the workload registered under `name`, or `None` for an unknown
/// name.
pub fn named_workload(name: &str) -> Option<NamedWorkload> {
    let (name, description, program, env) = match name {
        "memcached" => (
            "memcached",
            "memcached binary protocol, 1 symbolic packet of 5 bytes (exhaustive in seconds)",
            memcached::program(&memcached::MemcachedConfig {
                packets: 1,
                packet_size: 5,
                ..memcached::MemcachedConfig::default()
            }),
            WorkloadEnv::Posix,
        ),
        "memcached-2x5" => (
            "memcached-2x5",
            "memcached binary protocol, 2 symbolic packets of 5 bytes (the Fig. 7 shape)",
            memcached::program(&memcached::MemcachedConfig {
                packets: 2,
                packet_size: 5,
                ..memcached::MemcachedConfig::default()
            }),
            WorkloadEnv::Posix,
        ),
        "memcached-3x5" => (
            "memcached-3x5",
            "memcached binary protocol, 3 symbolic packets of 5 bytes (chaos/elastic test shape)",
            memcached::program(&memcached::MemcachedConfig {
                packets: 3,
                packet_size: 5,
                ..memcached::MemcachedConfig::default()
            }),
            WorkloadEnv::Posix,
        ),
        "printf" => (
            "printf",
            "the printf UNIX utility with a symbolic 4-byte format string",
            printf_util::program(4),
            WorkloadEnv::Posix,
        ),
        "test" => (
            "test",
            "the test UNIX utility with a symbolic 6-byte expression",
            test_util::program(6),
            WorkloadEnv::Posix,
        ),
        "lighttpd-pre" => (
            "lighttpd-pre",
            "lighttpd 1.4.12 request parsing (pre-patch, fragmentation-sensitive)",
            lighttpd::program(LighttpdVersion::V1_4_12),
            WorkloadEnv::Posix,
        ),
        "lighttpd-post" => (
            "lighttpd-post",
            "lighttpd 1.4.13 request parsing (post-patch)",
            lighttpd::program(LighttpdVersion::V1_4_13),
            WorkloadEnv::Posix,
        ),
        "curl" => (
            "curl",
            "curl URL globbing with an 8-byte symbolic URL (unmatched-brace crash)",
            curl::program(8),
            WorkloadEnv::Posix,
        ),
        "bandicoot" => (
            "bandicoot",
            "Bandicoot DBMS GET handler (out-of-bounds read)",
            bandicoot::program(),
            WorkloadEnv::Posix,
        ),
        "producer-consumer" => (
            "producer-consumer",
            "multi-threaded producer/consumer benchmark (2×2)",
            producer_consumer::program(2, 2),
            WorkloadEnv::Posix,
        ),
        _ => return None,
    };
    Some(NamedWorkload {
        name,
        description,
        program,
        env,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_builds() {
        for name in workload_names() {
            let w = named_workload(name).expect("listed workload must build");
            assert!(w.program.loc() > 0, "{name} has no lines");
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(named_workload("no-such-target").is_none());
    }
}
