//! A curl-style URL globbing parser containing the unmatched-brace crash of
//! §7.3.2.
//!
//! The real bug: `curl "http://site.{one,two,three}.com{"` crashed because
//! the globbing code did not handle braces that are opened but never closed.
//! This target parses a symbolic URL and, when a `{` group is still open at
//! the end of the string, walks past the end of the pattern buffer — an
//! out-of-bounds read the engine flags, and the generated test case is the
//! crashing URL.

use crate::helpers::emit_symbolic_buffer;
use c9_ir::{BinaryOp, Operand, Program, ProgramBuilder, Rvalue, Width};

/// Builds the curl-glob program over a symbolic URL of `url_len` bytes.
pub fn program(url_len: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("curl-glob");

    let mut f = pb.function("main", 0, Some(Width::W32));
    let url = emit_symbolic_buffer(&mut f, url_len);
    let depth = f.copy(Operand::word(0));
    let alternatives = f.copy(Operand::word(0));
    let i = f.copy(Operand::word(0));

    let loop_bb = f.create_block();
    let body_bb = f.create_block();
    let open_bb = f.create_block();
    let not_open_bb = f.create_block();
    let close_bb = f.create_block();
    let not_close_bb = f.create_block();
    let comma_bb = f.create_block();
    let next_bb = f.create_block();
    let end_bb = f.create_block();
    f.jump(loop_bb);

    f.switch_to(loop_bb);
    let in_range = f.binary(BinaryOp::Ult, Operand::Reg(i), Operand::word(url_len));
    f.branch(Operand::Reg(in_range), body_bb, end_bb);

    f.switch_to(body_bb);
    let i64v = f.zext(Operand::Reg(i), Width::W64);
    let addr = f.binary(BinaryOp::Add, Operand::Reg(url), Operand::Reg(i64v));
    let c = f.load(Operand::Reg(addr), Width::W8);
    let is_nul = f.binary(BinaryOp::Eq, Operand::Reg(c), Operand::byte(0));
    let not_nul_bb = f.create_block();
    f.branch(Operand::Reg(is_nul), end_bb, not_nul_bb);
    f.switch_to(not_nul_bb);
    let is_open = f.binary(BinaryOp::Eq, Operand::Reg(c), Operand::byte(b'{'));
    f.branch(Operand::Reg(is_open), open_bb, not_open_bb);

    f.switch_to(open_bb);
    let d1 = f.binary(BinaryOp::Add, Operand::Reg(depth), Operand::word(1));
    f.assign_to(depth, Rvalue::Use(Operand::Reg(d1)));
    f.jump(next_bb);

    f.switch_to(not_open_bb);
    let is_close = f.binary(BinaryOp::Eq, Operand::Reg(c), Operand::byte(b'}'));
    f.branch(Operand::Reg(is_close), close_bb, not_close_bb);

    // '}' without a matching '{' is a clean usage error in curl.
    f.switch_to(close_bb);
    let unbalanced = f.binary(BinaryOp::Eq, Operand::Reg(depth), Operand::word(0));
    let err_bb = f.create_block();
    let dec_bb = f.create_block();
    f.branch(Operand::Reg(unbalanced), err_bb, dec_bb);
    f.switch_to(err_bb);
    f.ret(Some(Operand::word(3)));
    f.switch_to(dec_bb);
    let d2 = f.binary(BinaryOp::Sub, Operand::Reg(depth), Operand::word(1));
    f.assign_to(depth, Rvalue::Use(Operand::Reg(d2)));
    f.jump(next_bb);

    f.switch_to(not_close_bb);
    let is_comma = f.binary(BinaryOp::Eq, Operand::Reg(c), Operand::byte(b','));
    f.branch(Operand::Reg(is_comma), comma_bb, next_bb);
    f.switch_to(comma_bb);
    // Commas only count inside a brace group.
    let inside = f.binary(BinaryOp::Ult, Operand::word(0), Operand::Reg(depth));
    let count_bb = f.create_block();
    f.branch(Operand::Reg(inside), count_bb, next_bb);
    f.switch_to(count_bb);
    let a1 = f.binary(BinaryOp::Add, Operand::Reg(alternatives), Operand::word(1));
    f.assign_to(alternatives, Rvalue::Use(Operand::Reg(a1)));
    f.jump(next_bb);

    f.switch_to(next_bb);
    let inext = f.binary(BinaryOp::Add, Operand::Reg(i), Operand::word(1));
    f.assign_to(i, Rvalue::Use(Operand::Reg(inext)));
    f.jump(loop_bb);

    // End of the URL: if a brace group is still open, the buggy glob expander
    // keeps scanning for the closing brace past the end of the buffer.
    f.switch_to(end_bb);
    let still_open = f.binary(BinaryOp::Ult, Operand::word(0), Operand::Reg(depth));
    let bug_bb = f.create_block();
    let ok_bb = f.create_block();
    f.branch(Operand::Reg(still_open), bug_bb, ok_bb);
    f.switch_to(bug_bb);
    // The out-of-bounds scan: reads one byte past the allocation.
    let past_end = f.binary(BinaryOp::Add, Operand::Reg(url), Operand::word(url_len));
    let _ = f.load(Operand::Reg(past_end), Width::W8);
    f.ret(Some(Operand::word(139)));
    f.switch_to(ok_bb);
    let had_alts = f.binary(BinaryOp::Ne, Operand::Reg(alternatives), Operand::word(0));
    let glob_bb = f.create_block();
    let plain_bb = f.create_block();
    f.branch(Operand::Reg(had_alts), glob_bb, plain_bb);
    f.switch_to(glob_bb);
    f.ret(Some(Operand::word(0)));
    f.switch_to(plain_bb);
    f.ret(Some(Operand::word(1)));

    let main = f.finish();
    pb.set_entry(main);
    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    program
}
