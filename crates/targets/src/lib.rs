//! Programs under test for the Cloud9-RS evaluation.
//!
//! The paper evaluates Cloud9 on real C systems (memcached, lighttpd, curl,
//! the Coreutils, a lightweight DBMS, …). Cloud9-RS cannot execute C, so this
//! crate provides *synthetic reproductions* of those targets written in the
//! `c9-ir` intermediate representation: programs with the same kind of
//! branching structure (byte-wise protocol parsing, format strings,
//! request-stream fragmentation, fault-injection points, thread
//! interleavings) and — where the paper describes a specific bug — the same
//! bug, so that every experiment in §7 can be regenerated.
//!
//! Each module exposes a builder returning a validated [`c9_ir::Program`]
//! plus, where needed, the symbolic-test setup (symbolic packets, fragmented
//! sockets, fault injection) expressed through the POSIX model's testing API.
//!
//! | Module | Stands in for | Used by |
//! |---|---|---|
//! | [`memcached`] | memcached binary-protocol server (+ UDP hang bug) | Fig. 7, Fig. 9, Fig. 12, Fig. 13, Table 5, §7.3.3 |
//! | [`lighttpd`] | lighttpd request parsing, pre/post patch | Table 6, §7.3.4 |
//! | [`printf_util`] | the `printf` UNIX utility | Fig. 8, Fig. 10 |
//! | [`test_util`] | the `test` UNIX utility | Fig. 10 |
//! | [`curl`] | curl URL globbing (unmatched-brace crash) | §7.3.2 |
//! | [`bandicoot`] | Bandicoot DBMS GET handler (out-of-bounds read) | §7.3.5 |
//! | [`coreutils`] | the Coreutils suite | Fig. 11, Table 4 |
//! | [`producer_consumer`] | the multi-threaded/multi-process benchmark | Table 4, §7.1 |

pub mod bandicoot;
pub mod coreutils;
pub mod curl;
pub mod helpers;
pub mod lighttpd;
pub mod memcached;
pub mod printf_util;
pub mod producer_consumer;
pub mod registry;
pub mod test_util;

pub use lighttpd::LighttpdVersion;
pub use registry::{named_workload, workload_names, NamedWorkload, WorkloadEnv};

/// A named target program, as listed in Table 4 of the paper.
#[derive(Clone, Debug)]
pub struct Target {
    /// Human-readable name (matching the paper's Table 4 where applicable).
    pub name: &'static str,
    /// What kind of software the target stands in for.
    pub kind: &'static str,
    /// The program.
    pub program: c9_ir::Program,
}

/// Builds the full roster of targets used by the Table 4 experiment.
pub fn all_targets() -> Vec<Target> {
    let mut targets = vec![
        Target {
            name: "memcached (binary protocol)",
            kind: "Distributed object cache",
            program: memcached::program(&memcached::MemcachedConfig::default()),
        },
        Target {
            name: "lighttpd 1.4.12 (pre-patch)",
            kind: "Web server",
            program: lighttpd::program(LighttpdVersion::V1_4_12),
        },
        Target {
            name: "lighttpd 1.4.13 (post-patch)",
            kind: "Web server",
            program: lighttpd::program(LighttpdVersion::V1_4_13),
        },
        Target {
            name: "curl (URL globbing)",
            kind: "Network utility",
            program: curl::program(8),
        },
        Target {
            name: "bandicoot (GET handler)",
            kind: "Lightweight DBMS",
            program: bandicoot::program(),
        },
        Target {
            name: "printf",
            kind: "UNIX utility",
            program: printf_util::program(8),
        },
        Target {
            name: "test",
            kind: "UNIX utility",
            program: test_util::program(6),
        },
        Target {
            name: "producer-consumer benchmark",
            kind: "Multi-threaded / multi-process benchmark",
            program: producer_consumer::program(2, 2),
        },
    ];
    for (name, program) in coreutils::suite(4) {
        targets.push(Target {
            name,
            kind: "Coreutils-style utility",
            program,
        });
    }
    targets
}

#[cfg(test)]
mod tests;
