//! A Bandicoot-style HTTP GET handler containing the out-of-bounds read of
//! §7.3.5.
//!
//! The real bug: handling a GET command made Bandicoot read from outside its
//! allocated memory (it happened to read the allocator's metadata, so the
//! particular test did not crash — but the read was wrong and could crash
//! depending on where the block was allocated). Here the relation lookup
//! indexes a fixed-size table with an unvalidated byte taken from the
//! request; the engine's symbolic bounds check flags the paths where the
//! index exceeds the table.

use crate::helpers::{emit_byte_eq, emit_symbolic_buffer};
use c9_ir::{BinaryOp, Operand, Program, ProgramBuilder, Width};

/// Number of entries in the modelled relation table.
pub const TABLE_SIZE: u32 = 8;

/// Builds the Bandicoot-like program.
pub fn program() -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("bandicoot");

    let mut f = pb.function("main", 0, Some(Width::W32));
    // The relation catalogue: TABLE_SIZE one-byte descriptors.
    let table = f.alloc(Operand::word(TABLE_SIZE));
    for i in 0..TABLE_SIZE {
        let slot = f.binary(BinaryOp::Add, Operand::Reg(table), Operand::word(i));
        f.store(Operand::Reg(slot), Operand::byte(0x40 + i as u8), Width::W8);
    }

    // A 6-byte symbolic request: "GET " + relation-id byte + terminator.
    let req = emit_symbolic_buffer(&mut f, 6);
    let g = emit_byte_eq(&mut f, req, 0, b'G');
    let e = emit_byte_eq(&mut f, req, 1, b'E');
    let t = emit_byte_eq(&mut f, req, 2, b'T');
    let sp = emit_byte_eq(&mut f, req, 3, b' ');
    let ge = f.binary(BinaryOp::And, Operand::Reg(g), Operand::Reg(e));
    let get = f.binary(BinaryOp::And, Operand::Reg(ge), Operand::Reg(t));
    let is_get = f.binary(BinaryOp::And, Operand::Reg(get), Operand::Reg(sp));
    let get_bb = f.create_block();
    let other_bb = f.create_block();
    f.branch(Operand::Reg(is_get), get_bb, other_bb);

    f.switch_to(other_bb);
    // 405 Method Not Allowed.
    f.ret(Some(Operand::word(405)));

    // GET handler: the relation index comes straight from the request with
    // no bounds check — the bug.
    f.switch_to(get_bb);
    let idx_addr = f.binary(BinaryOp::Add, Operand::Reg(req), Operand::word(4));
    let idx = f.load(Operand::Reg(idx_addr), Width::W8);
    let idx64 = f.zext(Operand::Reg(idx), Width::W64);
    let slot_addr = f.binary(BinaryOp::Add, Operand::Reg(table), Operand::Reg(idx64));
    let descriptor = f.load(Operand::Reg(slot_addr), Width::W8);
    let found = f.binary(BinaryOp::Ne, Operand::Reg(descriptor), Operand::byte(0));
    let found_bb = f.create_block();
    let missing_bb = f.create_block();
    f.branch(Operand::Reg(found), found_bb, missing_bb);
    f.switch_to(found_bb);
    f.ret(Some(Operand::word(200)));
    f.switch_to(missing_bb);
    f.ret(Some(Operand::word(404)));

    let main = f.finish();
    pb.set_entry(main);
    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    program
}
