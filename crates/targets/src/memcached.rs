//! A memcached-style binary-protocol server (the paper's main scaling and
//! coverage target, §7.2 and §7.3.3).
//!
//! The symbolic test mirrors the paper's setup: the server reads a fixed
//! number of fully-symbolic binary commands from a socket and processes each
//! one against an in-memory table. Command processing branches on the magic
//! byte, the opcode, the key and the value, which is what produces the
//! 74,503-path explosion of Table 5 at full packet size (our packet sizes are
//! scaled down so experiments finish on one machine).
//!
//! The UDP variant reproduces the hang of §7.3.3: a datagram with a specific
//! framing byte and length drives the parser into an infinite loop, which the
//! engine detects through its per-path instruction limit.

use crate::helpers::{addr_of, emit_symbolic_socket, emit_symbolic_udp_socket};
use c9_ir::{BinaryOp, Operand, Program, ProgramBuilder, Rvalue, Width};
use c9_posix::nr;

/// Configuration of the memcached-like target.
#[derive(Clone, Copy, Debug)]
pub struct MemcachedConfig {
    /// Number of symbolic commands (packets) the server processes.
    pub packets: u32,
    /// Size of each command in bytes (≥ 4).
    pub packet_size: u32,
    /// Whether reads are fragmented (`SIO_PKT_FRAGMENT`).
    pub fragment: bool,
    /// Whether to build the UDP front-end containing the hang bug.
    pub udp_mode: bool,
}

impl Default for MemcachedConfig {
    fn default() -> MemcachedConfig {
        MemcachedConfig {
            packets: 2,
            packet_size: 5,
            fragment: false,
            udp_mode: false,
        }
    }
}

/// Opcode values of the modelled binary protocol.
pub mod opcodes {
    /// Fetch a value.
    pub const GET: u8 = 0;
    /// Store a value.
    pub const SET: u8 = 1;
    /// Remove a value.
    pub const DELETE: u8 = 2;
    /// Add only if absent.
    pub const ADD: u8 = 3;
    /// Increment a counter value.
    pub const INCR: u8 = 4;
    /// Server statistics.
    pub const STATS: u8 = 5;
}

/// Builds the memcached-like program.
pub fn program(config: &MemcachedConfig) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("memcached-like");

    // process_command(table, buf, len) -> status
    let process = {
        let mut f = pb.function("process_command", 3, Some(Width::W32));
        let table = f.param(0);
        let buf = f.param(1);
        let len = f.param(2);

        let err_bb = f.create_block();
        let magic_ok_bb = f.create_block();

        // Commands shorter than the fixed header are rejected.
        let too_short = f.binary(BinaryOp::Ult, Operand::Reg(len), Operand::word(4));
        let len_ok_bb = f.create_block();
        f.branch(Operand::Reg(too_short), err_bb, len_ok_bb);

        f.switch_to(err_bb);
        f.ret(Some(Operand::word(1)));

        // Magic byte check.
        f.switch_to(len_ok_bb);
        let magic = f.load(Operand::Reg(buf), Width::W8);
        let magic_ok = f.binary(BinaryOp::Eq, Operand::Reg(magic), Operand::byte(0x80));
        let bad_magic_bb = f.create_block();
        f.branch(Operand::Reg(magic_ok), magic_ok_bb, bad_magic_bb);
        f.switch_to(bad_magic_bb);
        f.ret(Some(Operand::word(2)));

        // Opcode dispatch.
        f.switch_to(magic_ok_bb);
        let op_addr = addr_of(&mut f, buf, 1);
        let opcode = f.load(Operand::Reg(op_addr), Width::W8);
        let key_addr = addr_of(&mut f, buf, 2);
        let key = f.load(Operand::Reg(key_addr), Width::W8);
        // The table has 64 slots; keys are hashed by masking.
        let slot = f.binary(BinaryOp::And, Operand::Reg(key), Operand::byte(0x3f));
        let slot64 = f.zext(Operand::Reg(slot), Width::W64);
        let slot_addr = f.binary(BinaryOp::Add, Operand::Reg(table), Operand::Reg(slot64));
        let val_addr = addr_of(&mut f, buf, 3);
        let value = f.load(Operand::Reg(val_addr), Width::W8);

        let get_bb = f.create_block();
        let not_get_bb = f.create_block();
        let set_bb = f.create_block();
        let not_set_bb = f.create_block();
        let del_bb = f.create_block();
        let not_del_bb = f.create_block();
        let add_bb = f.create_block();
        let not_add_bb = f.create_block();
        let incr_bb = f.create_block();
        let not_incr_bb = f.create_block();
        let stats_bb = f.create_block();
        let unknown_bb = f.create_block();

        let is_get = f.binary(
            BinaryOp::Eq,
            Operand::Reg(opcode),
            Operand::byte(opcodes::GET),
        );
        f.branch(Operand::Reg(is_get), get_bb, not_get_bb);

        // GET: distinguish hit and miss.
        f.switch_to(get_bb);
        let stored = f.load(Operand::Reg(slot_addr), Width::W8);
        let miss = f.binary(BinaryOp::Eq, Operand::Reg(stored), Operand::byte(0));
        let hit_bb = f.create_block();
        let miss_bb = f.create_block();
        f.branch(Operand::Reg(miss), miss_bb, hit_bb);
        f.switch_to(miss_bb);
        f.ret(Some(Operand::word(10)));
        f.switch_to(hit_bb);
        f.ret(Some(Operand::word(11)));

        f.switch_to(not_get_bb);
        let is_set = f.binary(
            BinaryOp::Eq,
            Operand::Reg(opcode),
            Operand::byte(opcodes::SET),
        );
        f.branch(Operand::Reg(is_set), set_bb, not_set_bb);

        // SET: reject zero values (so the value byte matters), store otherwise.
        f.switch_to(set_bb);
        let zero_val = f.binary(BinaryOp::Eq, Operand::Reg(value), Operand::byte(0));
        let store_bb = f.create_block();
        let reject_bb = f.create_block();
        f.branch(Operand::Reg(zero_val), reject_bb, store_bb);
        f.switch_to(reject_bb);
        f.ret(Some(Operand::word(20)));
        f.switch_to(store_bb);
        f.store(Operand::Reg(slot_addr), Operand::Reg(value), Width::W8);
        f.ret(Some(Operand::word(21)));

        f.switch_to(not_set_bb);
        let is_del = f.binary(
            BinaryOp::Eq,
            Operand::Reg(opcode),
            Operand::byte(opcodes::DELETE),
        );
        f.branch(Operand::Reg(is_del), del_bb, not_del_bb);

        f.switch_to(del_bb);
        f.store(Operand::Reg(slot_addr), Operand::byte(0), Width::W8);
        f.ret(Some(Operand::word(30)));

        f.switch_to(not_del_bb);
        let is_add = f.binary(
            BinaryOp::Eq,
            Operand::Reg(opcode),
            Operand::byte(opcodes::ADD),
        );
        f.branch(Operand::Reg(is_add), add_bb, not_add_bb);

        // ADD: only stores when the slot is empty.
        f.switch_to(add_bb);
        let existing = f.load(Operand::Reg(slot_addr), Width::W8);
        let occupied = f.binary(BinaryOp::Ne, Operand::Reg(existing), Operand::byte(0));
        let exists_bb = f.create_block();
        let fresh_bb = f.create_block();
        f.branch(Operand::Reg(occupied), exists_bb, fresh_bb);
        f.switch_to(exists_bb);
        f.ret(Some(Operand::word(40)));
        f.switch_to(fresh_bb);
        f.store(Operand::Reg(slot_addr), Operand::Reg(value), Width::W8);
        f.ret(Some(Operand::word(41)));

        f.switch_to(not_add_bb);
        let is_incr = f.binary(
            BinaryOp::Eq,
            Operand::Reg(opcode),
            Operand::byte(opcodes::INCR),
        );
        f.branch(Operand::Reg(is_incr), incr_bb, not_incr_bb);

        f.switch_to(incr_bb);
        let cur = f.load(Operand::Reg(slot_addr), Width::W8);
        let bumped = f.binary(BinaryOp::Add, Operand::Reg(cur), Operand::Reg(value));
        f.store(Operand::Reg(slot_addr), Operand::Reg(bumped), Width::W8);
        f.ret(Some(Operand::word(50)));

        f.switch_to(not_incr_bb);
        let is_stats = f.binary(
            BinaryOp::Eq,
            Operand::Reg(opcode),
            Operand::byte(opcodes::STATS),
        );
        f.branch(Operand::Reg(is_stats), stats_bb, unknown_bb);

        // STATS: a couple of sub-commands selected by the value byte.
        f.switch_to(stats_bb);
        let verbose = f.binary(BinaryOp::Ult, Operand::Reg(value), Operand::byte(2));
        let verbose_bb = f.create_block();
        let brief_bb = f.create_block();
        f.branch(Operand::Reg(verbose), verbose_bb, brief_bb);
        f.switch_to(verbose_bb);
        f.ret(Some(Operand::word(60)));
        f.switch_to(brief_bb);
        f.ret(Some(Operand::word(61)));

        f.switch_to(unknown_bb);
        f.ret(Some(Operand::word(99)));
        f.finish()
    };

    // UDP front-end with the hang bug (§7.3.3): a framing byte of 0xFE on a
    // 3-byte datagram makes the reassembly loop spin forever.
    let udp_handler = if config.udp_mode {
        let mut f = pb.function("handle_udp_datagram", 2, Some(Width::W32));
        let buf = f.param(0);
        let len = f.param(1);
        let framing = f.load(Operand::Reg(buf), Width::W8);
        let is_frag = f.binary(BinaryOp::Eq, Operand::Reg(framing), Operand::byte(0xFE));
        let frag_bb = f.create_block();
        let normal_bb = f.create_block();
        f.branch(Operand::Reg(is_frag), frag_bb, normal_bb);

        // Fragmented framing: a 3-byte fragment never advances the reassembly
        // cursor — infinite loop.
        f.switch_to(frag_bb);
        let is_three = f.binary(BinaryOp::Eq, Operand::Reg(len), Operand::word(3));
        let hang_bb = f.create_block();
        let ok_bb = f.create_block();
        f.branch(Operand::Reg(is_three), hang_bb, ok_bb);
        f.switch_to(hang_bb);
        let spin_bb = f.create_block();
        f.jump(spin_bb);
        f.switch_to(spin_bb);
        f.jump(spin_bb);
        f.switch_to(ok_bb);
        f.ret(Some(Operand::word(1)));

        f.switch_to(normal_bb);
        f.ret(Some(Operand::word(0)));
        Some(f.finish())
    } else {
        None
    };

    // main: read `packets` symbolic commands and process each one.
    let mut f = pb.function("main", 0, Some(Width::W32));
    let budget = config.packets * config.packet_size;
    let table = f.alloc(Operand::word(64));
    let status_acc = f.copy(Operand::word(0));

    if config.udp_mode {
        let sock = emit_symbolic_udp_socket(&mut f, budget, true);
        for _ in 0..config.packets {
            let buf = f.alloc(Operand::word(config.packet_size));
            let n = f.syscall(
                nr::RECVFROM,
                vec![
                    Operand::Reg(sock),
                    Operand::Reg(buf),
                    Operand::word(config.packet_size),
                ],
            );
            let n32 = f.trunc(Operand::Reg(n), Width::W32);
            let status = f.call(
                udp_handler.expect("udp handler built in udp mode"),
                vec![Operand::Reg(buf), Operand::Reg(n32)],
            );
            let acc = f.binary(
                BinaryOp::Add,
                Operand::Reg(status_acc),
                Operand::Reg(status),
            );
            f.assign_to(status_acc, Rvalue::Use(Operand::Reg(acc)));
        }
    } else {
        let sock = emit_symbolic_socket(&mut f, budget, config.fragment);
        for _ in 0..config.packets {
            let buf = f.alloc(Operand::word(config.packet_size));
            let n = f.syscall(
                nr::RECV,
                vec![
                    Operand::Reg(sock),
                    Operand::Reg(buf),
                    Operand::word(config.packet_size),
                ],
            );
            let n32 = f.trunc(Operand::Reg(n), Width::W32);
            let status = f.call(
                process,
                vec![Operand::Reg(table), Operand::Reg(buf), Operand::Reg(n32)],
            );
            let acc = f.binary(
                BinaryOp::Add,
                Operand::Reg(status_acc),
                Operand::Reg(status),
            );
            f.assign_to(status_acc, Rvalue::Use(Operand::Reg(acc)));
        }
    }
    f.ret(Some(Operand::Reg(status_acc)));
    let main = f.finish();
    pb.set_entry(main);
    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    program
}

/// The number of paths a single symbolic command produces (used by tests to
/// cross-check exhaustive exploration): one per distinct processing outcome.
pub fn paths_per_command() -> u64 {
    // err(short read is impossible at full size) + bad magic + get{miss,hit}
    // + set{reject,store} + delete + add{exists,fresh} + incr + stats{verbose,
    // brief} + unknown — with an empty table some outcomes (get hit, add
    // exists) are unreachable for the first command.
    11
}
