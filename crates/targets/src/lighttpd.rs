//! A lighttpd-style request reader that is sensitive to how the incoming
//! byte stream is fragmented (§7.3.4, Table 6).
//!
//! lighttpd 1.4.12 crashed when an HTTP request arrived split across multiple
//! `read()` calls in particular ways; the 1.4.13 fix handled the simple
//! two-fragment case but still crashed for more aggressive fragmentation.
//! This target models that history: the request parser accumulates fragments
//! and the *pre-patch* version crashes as soon as the request is fragmented
//! at all, while the *post-patch* version only crashes when the request is
//! split into many small fragments. The fully fixed version never crashes.
//!
//! The symbolic test enables `SIO_PKT_FRAGMENT` on the connection socket, so
//! the engine explores all fragmentation patterns and proves (by finding or
//! not finding crashing paths) which versions are still buggy — exactly the
//! §7.3.4 use case.

use crate::helpers::emit_symbolic_socket;
use c9_ir::{AbortKind, BinaryOp, Operand, Program, ProgramBuilder, Rvalue, Width};
use c9_posix::nr;

/// Which historical version of the request parser to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LighttpdVersion {
    /// Pre-patch: crashes whenever the request arrives in more than one
    /// fragment.
    V1_4_12,
    /// Post-patch: handles the two-fragment case but still crashes when the
    /// request arrives in five or more fragments.
    V1_4_13,
    /// A fully fixed parser that tolerates any fragmentation.
    Fixed,
}

impl LighttpdVersion {
    /// The smallest number of request fragments that makes this version
    /// crash (`None` = never crashes).
    pub fn crash_threshold(self) -> Option<u32> {
        match self {
            LighttpdVersion::V1_4_12 => Some(2),
            LighttpdVersion::V1_4_13 => Some(5),
            LighttpdVersion::Fixed => None,
        }
    }
}

/// Length of the modelled request ("GET /index.html HTTP/1.0\r\n\r\n" in the
/// paper, 28 bytes).
pub const REQUEST_LEN: u32 = 28;

/// Builds the lighttpd-like program for the given version.
pub fn program(version: LighttpdVersion) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name(match version {
        LighttpdVersion::V1_4_12 => "lighttpd-1.4.12",
        LighttpdVersion::V1_4_13 => "lighttpd-1.4.13",
        LighttpdVersion::Fixed => "lighttpd-fixed",
    });

    let mut f = pb.function("main", 0, Some(Width::W32));
    let sock = emit_symbolic_socket(&mut f, REQUEST_LEN, true);
    let total = f.copy(Operand::word(0));
    let fragments = f.copy(Operand::word(0));
    let chunk = f.alloc(Operand::word(REQUEST_LEN));

    // Read loop: keep reading until the whole request has arrived or the
    // stream is exhausted.
    let read_bb = f.create_block();
    let after_read_bb = f.create_block();
    let check_done_bb = f.create_block();
    let parse_bb = f.create_block();
    f.jump(read_bb);

    f.switch_to(read_bb);
    let n = f.syscall(
        nr::RECV,
        vec![
            Operand::Reg(sock),
            Operand::Reg(chunk),
            Operand::word(REQUEST_LEN),
        ],
    );
    let n32 = f.trunc(Operand::Reg(n), Width::W32);
    let eof = f.binary(BinaryOp::Eq, Operand::Reg(n32), Operand::word(0));
    f.branch(Operand::Reg(eof), parse_bb, after_read_bb);

    f.switch_to(after_read_bb);
    let new_total = f.binary(BinaryOp::Add, Operand::Reg(total), Operand::Reg(n32));
    f.assign_to(total, Rvalue::Use(Operand::Reg(new_total)));
    let new_frags = f.binary(BinaryOp::Add, Operand::Reg(fragments), Operand::word(1));
    f.assign_to(fragments, Rvalue::Use(Operand::Reg(new_frags)));
    f.jump(check_done_bb);

    f.switch_to(check_done_bb);
    let done = f.binary(
        BinaryOp::Ule,
        Operand::word(REQUEST_LEN),
        Operand::Reg(total),
    );
    f.branch(Operand::Reg(done), parse_bb, read_bb);

    // Request "parsing": check the method byte, then apply the
    // version-specific fragmentation bug.
    f.switch_to(parse_bb);
    let first = f.load(Operand::Reg(chunk), Width::W8);
    let is_get = f.binary(BinaryOp::Eq, Operand::Reg(first), Operand::byte(b'G'));
    let method_ok_bb = f.create_block();
    let bad_method_bb = f.create_block();
    f.branch(Operand::Reg(is_get), method_ok_bb, bad_method_bb);
    f.switch_to(bad_method_bb);
    // 400 Bad Request.
    f.ret(Some(Operand::word(400)));

    f.switch_to(method_ok_bb);
    match version.crash_threshold() {
        Some(threshold) => {
            let fragile = f.binary(
                BinaryOp::Ule,
                Operand::word(threshold),
                Operand::Reg(fragments),
            );
            let crash_bb = f.create_block();
            let ok_bb = f.create_block();
            f.branch(Operand::Reg(fragile), crash_bb, ok_bb);
            f.switch_to(crash_bb);
            f.abort(
                AbortKind::Crash,
                "request-buffer state corrupted by stream fragmentation",
            );
            f.switch_to(ok_bb);
            f.ret(Some(Operand::word(200)));
        }
        None => {
            f.ret(Some(Operand::word(200)));
        }
    }

    let main = f.finish();
    pb.set_entry(main);
    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    program
}
