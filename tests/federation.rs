//! Federation tests: a root coordinator driving sub-coordinators that each
//! run a worker group on its behalf (the two-level tree that takes the
//! paper's architecture past the flat-fleet scaling wall). The root speaks
//! the unmodified worker protocol to the subs, so every invariant the flat
//! cluster guarantees must survive the indirection — above all *exactness*:
//! the explored path set equals an uninterrupted flat run, even when a
//! sub-coordinator (and with it a whole group) dies mid-run.

use cloud9::core::{Cluster, ClusterConfig, FederatedCluster, FederationConfig};
use cloud9::ir::{BinaryOp, Operand, Program, ProgramBuilder, Width};
use cloud9::posix::PosixEnvironment;
use cloud9::targets::named_workload;
use cloud9::vm::{sysno, NullEnvironment};
use std::io::{BufRead, BufReader};
use std::process::{Child, ChildStderr, ChildStdout, Command, Stdio};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// A program with `2^n` feasible paths: `n` independent branches on `n`
/// symbolic bytes. Every path is cheap, so the interesting load is the
/// coordination itself — job transfer, digests, and recovery.
fn branching_program(n: usize) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("branching");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = f.alloc(Operand::word(n as u32));
    f.syscall(
        sysno::MAKE_SYMBOLIC,
        vec![Operand::Reg(buf), Operand::word(n as u32)],
    );
    let mut next = f.create_block();
    for i in 0..n {
        let addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(i as u32));
        let byte = f.load(Operand::Reg(addr), Width::W8);
        let cond = f.binary(
            BinaryOp::Ult,
            Operand::Reg(byte),
            Operand::byte(32 + i as u8),
        );
        let then_bb = f.create_block();
        f.branch(Operand::Reg(cond), then_bb, next);
        f.switch_to(then_bb);
        f.jump(next);
        f.switch_to(next);
        if i + 1 < n {
            next = f.create_block();
        }
    }
    f.ret(Some(Operand::word(0)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

/// The exhaustive path count from an uninterrupted flat run — the reference
/// every federated run must match exactly (path counts are
/// schedule-independent).
fn baseline_paths(program: &Arc<Program>) -> u64 {
    let result = Cluster::new(
        program.clone(),
        Arc::new(NullEnvironment),
        ClusterConfig {
            num_workers: 4,
            time_limit: Some(Duration::from_secs(300)),
            ..ClusterConfig::default()
        },
    )
    .run();
    assert!(result.summary.goal_reached, "baseline run must exhaust");
    result.summary.paths_completed()
}

/// The scale target of the federation work: 256 workers as 16 groups of
/// 16, one root that only ever sees 16 "workers". The path count must
/// match the flat baseline exactly — federation changes who coordinates,
/// never what is explored.
#[test]
fn federated_256_workers_preserve_the_exact_path_count() {
    let program = Arc::new(branching_program(8));
    let expected = baseline_paths(&program);

    let config = ClusterConfig {
        time_limit: Some(Duration::from_secs(300)),
        // Generous cadences: 256 workers' status traffic funnels through
        // 16 subs on however few cores the CI runner has.
        status_interval: Duration::from_millis(25),
        balance_interval: Duration::from_millis(50),
        snapshot_every: 1,
        // Small quanta: members poll their inbox between quanta, and on
        // this cheap-path program the default quantum would cover
        // thousands of paths before a Balance request is even seen.
        quantum: 200,
        ..ClusterConfig::default()
    };
    let result = FederatedCluster::new(
        program,
        Arc::new(NullEnvironment),
        config,
        16, // groups
        16, // workers per group
    )
    .run();

    assert!(
        result.summary.goal_reached,
        "federated cluster did not exhaust"
    );
    assert_eq!(
        result.summary.paths_completed(),
        expected,
        "federation lost or double-counted paths at 256 workers"
    );
}

/// Kill a sub-coordinator mid-run (abort-flag SIGKILL simulation: the sub
/// goes silent without a word; its whole group is orphaned). The root's
/// failure detector must declare the group dead, reclaim its ledger —
/// current to the latest digest, which carries a frontier every time — and
/// re-inject the frontier into the surviving groups. Path accounting stays
/// exact: completions after the last digest are never reported (the uplink
/// died with the sub), and exactly those jobs are re-executed elsewhere.
#[test]
fn sub_coordinator_death_mid_run_preserves_the_exact_path_count() {
    let program = Arc::new(branching_program(13));
    let expected = baseline_paths(&program);

    let config = ClusterConfig {
        time_limit: Some(Duration::from_secs(300)),
        status_interval: Duration::from_millis(10),
        balance_interval: Duration::from_millis(20),
        snapshot_every: 1,
        quantum: 200,
        // The root's failure detector watches the subs' digest cadence.
        failure_timeout: Some(Duration::from_millis(500)),
        ..ClusterConfig::default()
    };
    let fed = FederationConfig {
        depth_partition: true,
        // Quick harvest flushes so work spreads to every group well before
        // the kill lands.
        export_timeout: Duration::from_millis(50),
        ..FederationConfig::default()
    };
    let result = FederatedCluster::new(
        program,
        Arc::new(NullEnvironment),
        config,
        4, // groups
        4, // workers per group
    )
    .with_federation(fed)
    .run_with_kill(Some((2, Duration::from_millis(300))));

    eprintln!(
        "paths={} expected={expected} failed={} transferred={} reclaimed={} elapsed={:?}",
        result.summary.paths_completed(),
        result.summary.workers_failed,
        result.summary.jobs_transferred(),
        result.summary.jobs_reclaimed,
        result.summary.elapsed,
    );
    assert_eq!(
        result.summary.workers_failed, 1,
        "the root must observe exactly one dead group"
    );
    assert!(
        result.summary.goal_reached,
        "the surviving groups did not finish the exploration"
    );
    assert_eq!(
        result.summary.paths_completed(),
        expected,
        "sub-coordinator death lost or double-counted paths"
    );
    assert!(
        result.summary.jobs_reclaimed > 0,
        "recovery must have re-injected the dead group's frontier"
    );
}

/// Depth partitioning off is a supported configuration (the ablation arm):
/// inter-group transfers take whatever the longest queue holds. Exactness
/// must not depend on the partitioning policy.
#[test]
fn federation_without_depth_partitioning_stays_exact() {
    let program = Arc::new(branching_program(7));
    let expected = baseline_paths(&program);

    let config = ClusterConfig {
        time_limit: Some(Duration::from_secs(300)),
        status_interval: Duration::from_millis(10),
        balance_interval: Duration::from_millis(20),
        snapshot_every: 1,
        quantum: 200,
        ..ClusterConfig::default()
    };
    let fed = FederationConfig {
        depth_partition: false,
        ..FederationConfig::default()
    };
    let result = FederatedCluster::new(program, Arc::new(NullEnvironment), config, 2, 3)
        .with_federation(fed)
        .run();

    assert!(result.summary.goal_reached);
    assert_eq!(result.summary.paths_completed(), expected);
}

// ---------------------------------------------------------------------------
// Process-level federation: a real root coordinator, real `--sub`
// coordinator processes, real workers — and a real SIGKILL. The in-proc
// tests above prove the algorithm; this proves the deployment story: the
// processes find each other through the documented flags and banners, and
// the exactness guarantee holds when a sub dies the way operators actually
// lose machines.
// ---------------------------------------------------------------------------

const TARGET: &str = "memcached-3x5";

/// A child process killed on drop, so a failed assertion never leaks
/// workers into the host.
struct Proc {
    child: Child,
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A `--sub` coordinator process plus its group-listener address. Its
/// stdout stays open for the life of the struct: closing the pipe would
/// SIGPIPE the sub when it prints its final summary.
struct SubProc {
    child: Child,
    addr: String,
    _stdout: BufReader<ChildStdout>,
}

impl Drop for SubProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The exhaustive path count of the process-test target from an
/// uninterrupted in-process run.
fn target_baseline_paths() -> u64 {
    let workload = named_workload(TARGET).expect("registered target");
    let result = Cluster::new(
        Arc::new(workload.program),
        Arc::new(PosixEnvironment::new()),
        ClusterConfig {
            num_workers: 2,
            time_limit: Some(Duration::from_secs(300)),
            ..ClusterConfig::default()
        },
    )
    .run();
    assert!(result.summary.exhausted, "baseline run must exhaust");
    result.summary.paths_completed()
}

fn spawn_join_worker(addr: &str) -> Proc {
    let child = Command::new(env!("CARGO_BIN_EXE_c9-worker"))
        .args(["--join", addr, "--once", "--quiet"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn c9-worker");
    Proc { child }
}

/// Spawns a sub-coordinator joined to `root_addr`, returning once it has
/// printed its group-listener banner.
fn spawn_sub(root_addr: &str) -> SubProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_c9-coordinator"))
        .args([
            "--sub",
            root_addr,
            "--listen",
            "127.0.0.1:0",
            "--min-workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn c9-coordinator --sub");
    let mut stdout = BufReader::new(child.stdout.take().expect("sub stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read sub banner");
    assert!(
        banner.contains("listening on"),
        "unexpected sub banner: {banner}"
    );
    let addr = banner.trim().rsplit(' ').next().unwrap().to_string();
    SubProc {
        child,
        addr,
        _stdout: stdout,
    }
}

/// Spawns the root coordinator with a drained stderr channel.
fn spawn_root(args: &[String]) -> (Child, mpsc::Receiver<String>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_c9-coordinator"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn c9-coordinator");
    let stderr: ChildStderr = child.stderr.take().expect("root stderr");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    (child, rx)
}

/// Blocks until the root logs that the run is underway.
fn await_run_started(stderr: &mpsc::Receiver<String>) {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while std::time::Instant::now() < deadline {
        match stderr.recv_timeout(Duration::from_millis(100)) {
            Ok(line) if line.contains("run started") => return,
            Ok(_) => continue,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    panic!("root coordinator never reported run start");
}

fn stdout_field(stdout: &str, field: &str) -> u64 {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix(field))
        .unwrap_or_else(|| panic!("coordinator output missing {field:?}:\n{stdout}"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("field {field:?} is not a number:\n{stdout}"))
}

/// The federated deployment under fire: a root with two sub-coordinator
/// processes (two workers each), one sub SIGKILLed mid-run. The root must
/// detect the silent group through its missed digests, reclaim the group's
/// frontier from the ledger, and finish on the surviving group with
/// exactly the uninterrupted path count.
#[test]
fn sigkill_sub_coordinator_process_mid_run_preserves_the_path_count() {
    let expected = target_baseline_paths();

    let root_args: Vec<String> = [
        "--listen",
        "127.0.0.1:0",
        "--min-workers",
        "2",
        "--target",
        TARGET,
        "--time-limit",
        "180",
        // Small quanta so Balance requests and digests flow at millisecond
        // cadence on this cheap-path target; these settings reach the group
        // workers through the spec the subs forward.
        "--quantum",
        "100",
        "--status-interval-ms",
        "2",
        "--balance-interval-ms",
        "4",
        "--heartbeat-timeout",
        "1",
        "--heartbeat-interval-ms",
        "25",
        "--snapshot-every",
        "1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (mut root, root_stderr) = spawn_root(&root_args);

    let mut root_stdout = BufReader::new(root.stdout.take().expect("root stdout"));
    let mut banner = String::new();
    root_stdout
        .read_line(&mut banner)
        .expect("read root banner");
    assert!(banner.contains("listening on"), "root banner: {banner}");
    let root_addr = banner.trim().rsplit(' ').next().unwrap().to_string();

    let mut subs: Vec<SubProc> = (0..2).map(|_| spawn_sub(&root_addr)).collect();
    let _workers: Vec<Proc> = subs
        .iter()
        .flat_map(|sub| {
            (0..2)
                .map(|_| spawn_join_worker(&sub.addr))
                .collect::<Vec<_>>()
        })
        .collect();

    await_run_started(&root_stderr);
    std::thread::sleep(Duration::from_millis(400));
    // SIGKILL one sub: its uplink heartbeats stop, its group is orphaned,
    // and its members exit on the dead endpoint. Everything it had not yet
    // reported exists only as replayable prefixes in the root's ledger.
    let victim = &mut subs[1];
    victim.child.kill().expect("kill sub-coordinator");
    victim.child.wait().expect("reap sub-coordinator");

    let mut stdout = String::new();
    std::io::Read::read_to_string(&mut root_stdout, &mut stdout).expect("read root stdout");
    let status = root.wait().expect("wait root coordinator");
    assert!(status.success(), "root coordinator failed:\n{stdout}");

    assert_eq!(
        stdout_field(&stdout, "workers failed:"),
        1,
        "the sub kill must be detected as exactly one dead group:\n{stdout}"
    );
    assert!(
        stdout.contains("exhausted:         true"),
        "the surviving group did not exhaust:\n{stdout}"
    );
    assert_eq!(
        stdout_field(&stdout, "total paths:"),
        expected,
        "sub-coordinator SIGKILL lost or double-counted paths:\n{stdout}"
    );
}
