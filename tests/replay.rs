//! Trie-batched job materialization equivalence: materializing transferred
//! jobs through the replay engine and the prefix-anchor cache must explore
//! *exactly* the tree that naive per-job root replay explores — same path
//! sets, same coverage, same bugs — while executing strictly less replay
//! work. Exercised on the targets the paper uses (printf-6, the
//! producer/consumer benchmark, memcached-3x5), across seeds, strategies,
//! and executor-thread counts (`C9_THREADS`, via the CI matrix).

use cloud9::core::{Cluster, ClusterConfig, Worker, WorkerConfig, WorkerId};
use cloud9::net::WorkerId as NetWorkerId;
use cloud9::posix::PosixEnvironment;
use cloud9::targets::{named_workload, printf_util};
use cloud9::vm::{PathChoice, ReplayCacheConfig, StrategyKind};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Everything that must be identical between trie-batched (cache on) and
/// naive (cache off) materialization.
#[derive(Debug, PartialEq)]
struct Outcome {
    paths: u64,
    covered_lines: u64,
    bug_paths: Vec<Vec<PathChoice>>,
    path_set: Vec<Vec<PathChoice>>,
}

/// The replay work the run actually executed (not part of the equivalence
/// check — this is what the cache is allowed, and expected, to change).
struct Work {
    replay: u64,
    saved: u64,
    anchor_hits: u64,
}

/// Deterministic two-worker harness: worker 0 expands the frontier, sheds
/// half of it to worker 1 (which materializes the batch under `cache`),
/// and both run to exhaustion.
fn split_and_exhaust(
    program: c9_ir::Program,
    strategy: StrategyKind,
    seed: u64,
    cache: ReplayCacheConfig,
) -> (Outcome, Work) {
    let program = Arc::new(program);
    let env = Arc::new(PosixEnvironment::new());
    let config = WorkerConfig {
        strategy,
        seed,
        generate_test_cases: true,
        replay_cache: cache,
        ..WorkerConfig::default()
    };
    let mut w1 = Worker::new(WorkerId(0), program.clone(), env.clone(), config);
    w1.seed_root();
    // Expand until the frontier is worth splitting; narrow-frontier
    // strategies (DFS) may exhaust small trees before it ever is, in which
    // case the transfer is simply empty and both cache legs degenerate to
    // the same single-worker run.
    for _ in 0..100_000 {
        if w1.queue_length() >= 16 || !w1.has_work() {
            break;
        }
        w1.run_quantum(50);
    }
    let jobs = w1.export_jobs(w1.queue_length() / 2);
    let mut w2 = Worker::new(NetWorkerId(1), program, env, config);
    w2.import_jobs(jobs);
    for _ in 0..10_000_000 {
        if !w1.has_work() && !w2.has_work() {
            break;
        }
        w1.run_quantum(20_000);
        w2.run_quantum(20_000);
    }
    assert!(
        !w1.has_work() && !w2.has_work(),
        "workers failed to exhaust"
    );

    let mut coverage = w1.coverage_snapshot();
    coverage.merge(&w2.coverage_snapshot());
    let mut path_set: Vec<Vec<PathChoice>> = w1
        .test_cases
        .iter()
        .chain(w2.test_cases.iter())
        .map(|tc| tc.path.clone())
        .collect();
    path_set.sort();
    let mut bug_paths: Vec<Vec<PathChoice>> = w1
        .bugs
        .iter()
        .chain(w2.bugs.iter())
        .map(|tc| tc.path.clone())
        .collect();
    bug_paths.sort();
    let outcome = Outcome {
        paths: w1.stats.paths_completed + w2.stats.paths_completed,
        covered_lines: coverage.count() as u64,
        bug_paths,
        path_set,
    };
    let work = Work {
        replay: w1.stats.replay_instructions + w2.stats.replay_instructions,
        saved: w1.stats.replay_saved_instructions + w2.stats.replay_saved_instructions,
        anchor_hits: w1.stats.anchor_hits + w2.stats.anchor_hits,
    };
    (outcome, work)
}

/// printf-6 (the Fig. 8 workload): trie-batched materialization explores
/// the identical exhaustive tree and strictly reduces executed replay.
#[test]
fn printf6_trie_batched_materialization_is_exact_and_cheaper() {
    let (naive, naive_work) = split_and_exhaust(
        printf_util::program(6),
        StrategyKind::KleeDefault,
        1,
        ReplayCacheConfig::DISABLED,
    );
    assert!(naive.paths > 0);
    assert_eq!(naive.paths as usize, naive.path_set.len());
    let (batched, batched_work) = split_and_exhaust(
        printf_util::program(6),
        StrategyKind::KleeDefault,
        1,
        ReplayCacheConfig::default(),
    );
    assert_eq!(batched, naive, "cache changed the explored tree");
    assert!(batched_work.anchor_hits > 0, "anchors never hit");
    assert!(
        batched_work.replay < naive_work.replay,
        "no replay was saved: {} vs {}",
        batched_work.replay,
        naive_work.replay
    );
    assert_eq!(batched_work.replay + batched_work.saved, naive_work.replay);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: for any seed and strategy, the producer/consumer benchmark
    /// (schedule forks — the Alt-heavy decision shape) explores the same
    /// exhaustive path set whether jobs are materialized through the
    /// anchor cache or replayed naively from the root.
    #[test]
    fn prop_cache_never_changes_the_tree(seed in 1u64..10_000, pick in 0usize..4) {
        let strategy = [
            StrategyKind::KleeDefault,
            StrategyKind::Dfs,
            StrategyKind::Cupa,
            StrategyKind::RandomPath,
        ][pick];
        let program = || {
            named_workload("producer-consumer")
                .expect("registered")
                .program
        };
        let (naive, _) = split_and_exhaust(
            program(), strategy, seed, ReplayCacheConfig::DISABLED);
        let (batched, work) = split_and_exhaust(
            program(), strategy, seed, ReplayCacheConfig::default());
        prop_assert_eq!(&batched, &naive);
        prop_assert_eq!(batched.paths as usize, batched.path_set.len());
        // Identical accounting: executed + skipped == the naive total.
        prop_assert!(work.saved == 0 || work.anchor_hits > 0);
    }
}

/// The acceptance scenario: a transfer-heavy 4-worker memcached-3x5
/// cluster run with the cache on explores exactly the tree the naive
/// configuration explores (path vectors, coverage, bug sets), and the new
/// counters flow into the cluster summary.
#[test]
fn memcached_cluster_is_exact_with_cache_on_and_off() {
    let run = |cache: ReplayCacheConfig| {
        let workload = named_workload("memcached-3x5").expect("registered target");
        let mut config = ClusterConfig {
            num_workers: 4,
            time_limit: Some(Duration::from_secs(300)),
            // Transfer-heavy: small quanta and tight reporting/balancing
            // intervals keep jobs moving between workers all run long.
            quantum: 2_000,
            status_interval: Duration::from_millis(2),
            balance_interval: Duration::from_millis(4),
            ..ClusterConfig::default()
        };
        config.worker.generate_test_cases = true;
        config.worker.replay_cache = cache;
        Cluster::new(
            Arc::new(workload.program),
            Arc::new(PosixEnvironment::new()),
            config,
        )
        .run()
    };
    let collect = |result: &cloud9::core::ClusterRunResult| -> Outcome {
        let mut path_set: Vec<Vec<PathChoice>> =
            result.test_cases.iter().map(|tc| tc.path.clone()).collect();
        path_set.sort();
        let mut bug_paths: Vec<Vec<PathChoice>> =
            result.bugs.iter().map(|tc| tc.path.clone()).collect();
        bug_paths.sort();
        Outcome {
            paths: result.summary.paths_completed(),
            covered_lines: result.summary.coverage.count() as u64,
            bug_paths,
            path_set,
        }
    };

    let naive = run(ReplayCacheConfig::DISABLED);
    assert!(naive.summary.exhausted, "naive run did not exhaust");
    let batched = run(ReplayCacheConfig::default());
    assert!(batched.summary.exhausted, "cached run did not exhaust");
    assert_eq!(
        collect(&batched),
        collect(&naive),
        "cache changed the explored tree"
    );
    assert!(naive.summary.jobs_transferred() > 0);
    assert!(batched.summary.jobs_transferred() > 0);
    assert_eq!(naive.summary.replay_saved_instructions(), 0);
    assert_eq!(naive.summary.replay_divergences(), 0);
    assert_eq!(batched.summary.replay_divergences(), 0);
    // The new counters reach the coordinator-side summary. (The replay
    // *ratio* between the two runs depends on how much the balancer moved
    // in each — the deterministic >=3x bound is pinned by
    // `anchor_cache_skips_shared_trunk_replay` in c9-core; the
    // `replay_cost` bench records the cluster-level figure.)
    eprintln!(
        "memcached-3x5 cluster replay: naive {} vs cached {} ({} saved, {:.1}% anchor hit-rate)",
        naive.summary.replay_instructions(),
        batched.summary.replay_instructions(),
        batched.summary.replay_saved_instructions(),
        100.0 * batched.summary.anchor_hit_rate(),
    );
    assert!(
        batched.summary.replay_saved_instructions() > 0,
        "the cache never engaged in a transfer-heavy run"
    );
}
