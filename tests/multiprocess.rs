//! The paper's deployment, end to end: a cluster of separate OS processes.
//!
//! Spawns four `c9-worker` daemons, drives them with the `c9-coordinator`
//! binary over localhost TCP, and checks that the exhaustive path count of a
//! `targets` program matches an in-process `Cluster::run` with the same
//! number of workers — the transports must explore exactly the same tree.

use cloud9::core::{Cluster, ClusterConfig};
use cloud9::posix::PosixEnvironment;
use cloud9::targets::named_workload;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

struct WorkerProc {
    child: Child,
    addr: String,
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_worker() -> WorkerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_c9-worker"))
        .args(["--listen", "127.0.0.1:0", "--once", "--quiet"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn c9-worker");
    let stdout = child.stdout.take().expect("worker stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("worker printed nothing")
        .expect("read worker banner");
    let addr = banner
        .rsplit(' ')
        .next()
        .expect("banner has an address")
        .to_string();
    assert!(
        banner.contains("listening on"),
        "unexpected worker banner: {banner}"
    );
    WorkerProc { child, addr }
}

#[test]
fn four_process_tcp_cluster_matches_in_proc_path_count() {
    const TARGET: &str = "memcached";
    const WORKERS: usize = 4;

    // Baseline: the same workload on an in-process 4-worker cluster.
    let workload = named_workload(TARGET).expect("registered target");
    let in_proc = Cluster::new(
        Arc::new(workload.program),
        Arc::new(PosixEnvironment::new()),
        ClusterConfig {
            num_workers: WORKERS,
            time_limit: Some(Duration::from_secs(120)),
            ..ClusterConfig::default()
        },
    )
    .run();
    assert!(in_proc.summary.exhausted, "in-proc run must exhaust");
    let expected_paths = in_proc.summary.paths_completed();
    assert!(expected_paths > 0);

    // The real deployment: four worker daemons + the coordinator binary.
    let workers: Vec<WorkerProc> = (0..WORKERS).map(|_| spawn_worker()).collect();
    let addr_list = workers
        .iter()
        .map(|w| w.addr.clone())
        .collect::<Vec<_>>()
        .join(",");

    let output = Command::new(env!("CARGO_BIN_EXE_c9-coordinator"))
        .args([
            "--workers",
            &addr_list,
            "--target",
            TARGET,
            "--time-limit",
            "120",
        ])
        .stderr(Stdio::null())
        .output()
        .expect("run c9-coordinator");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "coordinator failed:\n{stdout}");

    let total_paths: u64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("total paths:"))
        .expect("coordinator printed a path count")
        .trim()
        .parse()
        .expect("path count is a number");
    assert!(
        stdout.contains("exhausted:         true"),
        "TCP cluster did not exhaust:\n{stdout}"
    );
    assert_eq!(
        total_paths, expected_paths,
        "4-process TCP cluster explored a different tree:\n{stdout}"
    );
}
