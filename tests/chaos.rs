//! Chaos tests for elastic fault-tolerant membership: a cluster of real OS
//! processes must survive a SIGKILLed worker, fold late joiners into a
//! running run, and continue an interrupted run from a checkpoint — all
//! without ever losing or double-counting a path. Jobs are replayable path
//! prefixes (§3.2 of the paper), so every recovery is just a re-send of the
//! affected job tree; these tests assert the resulting *exactness*: the
//! final path count always equals an uninterrupted in-process run.

use cloud9::core::{Cluster, ClusterConfig};
use cloud9::posix::PosixEnvironment;
use cloud9::targets::named_workload;
use std::io::{BufRead, BufReader};
use std::process::{Child, ChildStderr, Command, Stdio};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const TARGET: &str = "memcached-3x5";

/// The exhaustive path count of the target, from an uninterrupted
/// in-process run (the count is schedule-independent, so any worker count
/// works as the reference).
fn baseline_paths() -> u64 {
    let workload = named_workload(TARGET).expect("registered target");
    let result = Cluster::new(
        Arc::new(workload.program),
        Arc::new(PosixEnvironment::new()),
        ClusterConfig {
            num_workers: 2,
            time_limit: Some(Duration::from_secs(300)),
            ..ClusterConfig::default()
        },
    )
    .run();
    assert!(result.summary.exhausted, "baseline run must exhaust");
    let paths = result.summary.paths_completed();
    assert!(paths > 0);
    paths
}

struct WorkerProc {
    child: Child,
    addr: String,
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_worker(args: &[&str]) -> WorkerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_c9-worker"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn c9-worker");
    let addr = if args.contains(&"--join") {
        String::new() // join-mode workers print no banner on stdout
    } else {
        let stdout = child.stdout.take().expect("worker stdout");
        let banner = BufReader::new(stdout)
            .lines()
            .next()
            .expect("worker printed nothing")
            .expect("read worker banner");
        assert!(
            banner.contains("listening on"),
            "unexpected worker banner: {banner}"
        );
        banner.rsplit(' ').next().unwrap().to_string()
    };
    WorkerProc { child, addr }
}

/// Spawns the coordinator with piped stdio and a thread draining stderr;
/// returns the child, a receiver of stderr lines, and the stderr thread.
fn spawn_coordinator(args: &[String]) -> (Child, mpsc::Receiver<String>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_c9-coordinator"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn c9-coordinator");
    let stderr: ChildStderr = child.stderr.take().expect("coordinator stderr");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    (child, rx)
}

/// Blocks until the coordinator logs that the run is underway.
fn await_run_started(stderr: &mpsc::Receiver<String>) {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while std::time::Instant::now() < deadline {
        match stderr.recv_timeout(Duration::from_millis(100)) {
            Ok(line) if line.contains("run started") => return,
            Ok(_) => continue,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    panic!("coordinator never reported run start");
}

fn stdout_field(stdout: &str, field: &str) -> u64 {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix(field))
        .unwrap_or_else(|| panic!("coordinator output missing {field:?}:\n{stdout}"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("field {field:?} is not a number:\n{stdout}"))
}

/// The acceptance-criteria test: SIGKILL one of four TCP workers mid-run.
/// The failure detector must declare it dead, reclaim its pending jobs
/// from the coordinator's ledger, re-inject them into the three survivors,
/// and the run must finish with exactly the uninterrupted path count.
#[test]
fn sigkill_one_of_four_workers_mid_run_preserves_the_path_count() {
    let expected = baseline_paths();

    let mut workers: Vec<WorkerProc> = (0..4)
        .map(|_| spawn_worker(&["--listen", "127.0.0.1:0", "--once", "--quiet"]))
        .collect();
    let addr_list = workers
        .iter()
        .map(|w| w.addr.clone())
        .collect::<Vec<_>>()
        .join(",");

    let args: Vec<String> = [
        "--workers",
        &addr_list,
        "--target",
        TARGET,
        "--time-limit",
        "180",
        // Small quanta so the frontier spreads across all four workers
        // well before the kill lands.
        "--quantum",
        "100",
        "--status-interval-ms",
        "2",
        "--balance-interval-ms",
        "4",
        "--heartbeat-timeout",
        "0.75",
        "--heartbeat-interval-ms",
        "25",
        "--snapshot-every",
        "1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (child, stderr) = spawn_coordinator(&args);

    await_run_started(&stderr);
    std::thread::sleep(Duration::from_millis(400));
    // SIGKILL — no cleanup, no goodbye; its unsent results and its pending
    // jobs exist only as replayable path prefixes in the coordinator's
    // ledger now.
    let victim = &mut workers[1];
    victim.child.kill().expect("kill worker");
    victim.child.wait().expect("reap worker");

    let output = child.wait_with_output().expect("run c9-coordinator");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "coordinator failed:\n{stdout}");

    assert_eq!(
        stdout_field(&stdout, "workers failed:"),
        1,
        "the kill must be detected as exactly one failure:\n{stdout}"
    );
    assert!(
        stdout.contains("exhausted:         true"),
        "the surviving cluster did not exhaust:\n{stdout}"
    );
    assert_eq!(
        stdout_field(&stdout, "total paths:"),
        expected,
        "crash recovery lost or double-counted paths:\n{stdout}"
    );
}

/// Elastic membership: a cluster formed purely by `Join` handshakes, with
/// one worker attaching after the run started. The late joiner is folded
/// into the next balancing round and the exploration stays exact.
#[test]
fn late_joiner_is_folded_into_a_running_elastic_cluster() {
    let expected = baseline_paths();

    let args: Vec<String> = [
        "--listen",
        "127.0.0.1:0",
        "--min-workers",
        "2",
        "--target",
        TARGET,
        "--time-limit",
        "180",
        "--quantum",
        "100",
        "--status-interval-ms",
        "2",
        "--balance-interval-ms",
        "4",
        "--heartbeat-timeout",
        "2",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (mut child, stderr) = spawn_coordinator(&args);

    // The coordinator prints its bound join address on stdout first.
    let mut stdout_reader = BufReader::new(child.stdout.take().expect("coordinator stdout"));
    let mut banner = String::new();
    stdout_reader
        .read_line(&mut banner)
        .expect("read coordinator banner");
    assert!(banner.contains("listening on"), "banner: {banner}");
    let coordinator_addr = banner.trim().rsplit(' ').next().unwrap().to_string();

    let join_args = ["--join", coordinator_addr.as_str(), "--once", "--quiet"];
    let _w1 = spawn_worker(&join_args);
    let _w2 = spawn_worker(&join_args);
    await_run_started(&stderr);
    std::thread::sleep(Duration::from_millis(200));
    let _w3 = spawn_worker(&join_args);

    let mut stdout = String::new();
    std::io::Read::read_to_string(&mut stdout_reader, &mut stdout).expect("read stdout");
    let status = child.wait().expect("wait coordinator");
    assert!(status.success(), "coordinator failed:\n{stdout}");

    assert_eq!(
        stdout_field(&stdout, "workers:"),
        3,
        "the late joiner never became a member:\n{stdout}"
    );
    assert!(
        stdout.contains("exhausted:         true"),
        "elastic cluster did not exhaust:\n{stdout}"
    );
    assert_eq!(
        stdout_field(&stdout, "total paths:"),
        expected,
        "elastic membership changed the explored tree:\n{stdout}"
    );
}

/// Strategy portfolios under chaos: a 4-worker elastic cluster running the
/// full `dfs,random-path,cov-opt,cupa` mix (with adaptive rebalancing on)
/// loses one worker to SIGKILL and gains a replacement joiner mid-run. The
/// coordinator must re-assign strategies across the churn — the four
/// initial joiners get the four distinct mix strategies, the replacement
/// draws from the freed slots — and the run must still finish with exactly
/// the uninterrupted path count.
#[test]
fn portfolio_strategy_assignments_survive_worker_crash_and_rejoin() {
    let expected = baseline_paths();

    let args: Vec<String> = [
        "--listen",
        "127.0.0.1:0",
        "--min-workers",
        "4",
        "--target",
        TARGET,
        "--time-limit",
        "180",
        "--quantum",
        "100",
        "--status-interval-ms",
        "2",
        "--balance-interval-ms",
        "4",
        "--heartbeat-timeout",
        "0.75",
        "--heartbeat-interval-ms",
        "25",
        "--snapshot-every",
        "1",
        "--portfolio",
        "dfs,random-path,cov-opt,cupa",
        "--portfolio-adapt",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (mut child, stderr) = spawn_coordinator(&args);

    let mut stdout_reader = BufReader::new(child.stdout.take().expect("coordinator stdout"));
    let mut banner = String::new();
    stdout_reader
        .read_line(&mut banner)
        .expect("read coordinator banner");
    assert!(banner.contains("listening on"), "banner: {banner}");
    let coordinator_addr = banner.trim().rsplit(' ').next().unwrap().to_string();

    let join_args = ["--join", coordinator_addr.as_str(), "--once", "--quiet"];
    let mut workers: Vec<WorkerProc> = (0..4).map(|_| spawn_worker(&join_args)).collect();
    await_run_started(&stderr);
    std::thread::sleep(Duration::from_millis(400));

    // SIGKILL one member and send in a replacement immediately: its join
    // lands within milliseconds, well before the failure detector (0.75s)
    // frees the victim's slot and re-injects its jobs — the survivors'
    // recovery work keeps the run alive long enough for both to matter.
    let victim = &mut workers[1];
    victim.child.kill().expect("kill worker");
    victim.child.wait().expect("reap worker");
    let _replacement = spawn_worker(&join_args);

    let mut stdout = String::new();
    std::io::Read::read_to_string(&mut stdout_reader, &mut stdout).expect("read stdout");
    let status = child.wait().expect("wait coordinator");
    assert!(status.success(), "coordinator failed:\n{stdout}");

    // Collect the coordinator's membership log: every join line names the
    // assigned strategy.
    let mut join_strategies = Vec::new();
    while let Ok(line) = stderr.try_recv() {
        if let Some((_, rest)) = line.split_once("strategy ") {
            if line.contains("joined") {
                join_strategies.push(rest.trim_end_matches(')').to_string());
            }
        }
    }
    assert_eq!(
        join_strategies.len(),
        5,
        "expected 4 initial joins + 1 replacement, got {join_strategies:?}"
    );
    let initial: std::collections::BTreeSet<&String> = join_strategies[..4].iter().collect();
    assert_eq!(
        initial.len(),
        4,
        "the 4-strategy mix must spread across the 4 initial workers: {join_strategies:?}"
    );

    assert_eq!(
        stdout_field(&stdout, "workers failed:"),
        1,
        "the kill must be detected as exactly one failure:\n{stdout}"
    );
    assert!(
        stdout.contains("exhausted:         true"),
        "the churned portfolio cluster did not exhaust:\n{stdout}"
    );
    assert_eq!(
        stdout_field(&stdout, "total paths:"),
        expected,
        "portfolio crash/rejoin lost or double-counted paths:\n{stdout}"
    );
}

/// Checkpoint/resume: a run stopped by a path limit writes its final
/// checkpoint (completed stats + pending frontier); a second run with
/// fresh worker processes resumes it and must land on exactly the
/// uninterrupted total.
#[test]
fn checkpoint_resume_continues_an_interrupted_run_exactly() {
    let expected = baseline_paths();
    let dir = std::env::temp_dir().join(format!("c9-chaos-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let checkpoint = dir.join("run.ckpt");

    let phase = |extra: &[String]| -> String {
        let workers: Vec<WorkerProc> = (0..2)
            .map(|_| spawn_worker(&["--listen", "127.0.0.1:0", "--once", "--quiet"]))
            .collect();
        let addr_list = workers
            .iter()
            .map(|w| w.addr.clone())
            .collect::<Vec<_>>()
            .join(",");
        let mut args: Vec<String> = [
            "--workers",
            &addr_list,
            "--target",
            TARGET,
            "--quantum",
            "100",
            "--status-interval-ms",
            "2",
            "--balance-interval-ms",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        args.extend(extra.iter().cloned());
        let (child, _stderr) = spawn_coordinator(&args);
        let output = child.wait_with_output().expect("run c9-coordinator");
        let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
        assert!(output.status.success(), "coordinator failed:\n{stdout}");
        stdout
    };

    // Phase 1: stop early, checkpointing the frontier.
    let limit = (expected / 3).max(1).to_string();
    let stdout = phase(&[
        "--max-paths".into(),
        limit,
        "--checkpoint".into(),
        checkpoint.display().to_string(),
    ]);
    let phase1_paths = stdout_field(&stdout, "total paths:");
    assert!(
        phase1_paths < expected,
        "phase 1 was supposed to stop early:\n{stdout}"
    );
    assert!(checkpoint.exists(), "no checkpoint written");

    // Phase 2: fresh workers, resumed run.
    let stdout = phase(&[
        "--time-limit".into(),
        "180".into(),
        "--resume".into(),
        checkpoint.display().to_string(),
    ]);
    assert!(
        stdout.contains("exhausted:         true"),
        "resumed run did not exhaust:\n{stdout}"
    );
    assert_eq!(
        stdout_field(&stdout, "total paths:"),
        expected,
        "resume lost or double-counted paths:\n{stdout}"
    );
    let phase2_paths = stdout_field(&stdout, "total paths:");
    assert!(phase2_paths > phase1_paths);

    std::fs::remove_dir_all(&dir).ok();
}
