//! The multi-tenant run service, end to end over in-process channels.
//!
//! One 4-worker cluster hosts several concurrent symbolic-execution runs
//! through the [`RunService`](cloud9::core::RunService) registry. Isolation
//! is the invariant under test: every run multiplexed onto the shared
//! fleet must explore *exactly* the tree a dedicated solo cluster explores
//! — path sets compared bit-for-bit via solved test cases — through
//! concurrency, preemption + resumption, and a neighbor's cancellation.

use cloud9::core::{
    serve_inproc, Cluster, ClusterConfig, RunId, RunInfo, RunServiceConfig, RunState,
    RunSubmission, ServiceHandle,
};
use cloud9::net::EnvSpec;
use cloud9::posix::PosixEnvironment;
use cloud9::targets::{named_workload, WorkloadEnv};
use cloud9::vm::{Environment, NullEnvironment, PathChoice, TestCase};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;

fn env_factory(spec: EnvSpec) -> Arc<dyn Environment> {
    match spec {
        EnvSpec::Null => Arc::new(NullEnvironment),
        EnvSpec::Posix => Arc::new(PosixEnvironment::new()),
    }
}

fn base_config() -> ClusterConfig {
    let mut config = ClusterConfig {
        num_workers: WORKERS,
        time_limit: Some(Duration::from_secs(120)),
        ..ClusterConfig::default()
    };
    config.worker.generate_test_cases = true;
    config
}

fn submission(target: &str) -> RunSubmission {
    let workload = named_workload(target).expect("registered target");
    let env = match workload.env {
        WorkloadEnv::Null => EnvSpec::Null,
        WorkloadEnv::Posix => EnvSpec::Posix,
    };
    RunSubmission {
        name: target.to_string(),
        program: Arc::new(workload.program),
        env,
        config: base_config(),
    }
}

/// The canonical form for bit-identity comparison: every completed path's
/// decision sequence, sorted.
fn path_set(test_cases: &[TestCase]) -> Vec<Vec<PathChoice>> {
    let mut paths: Vec<Vec<PathChoice>> = test_cases.iter().map(|t| t.path.clone()).collect();
    paths.sort();
    paths
}

/// The baseline: the same workload, exhausted by a dedicated solo cluster
/// of the same size.
fn solo_path_set(target: &str) -> Vec<Vec<PathChoice>> {
    let workload = named_workload(target).expect("registered target");
    let env: Arc<dyn Environment> = match workload.env {
        WorkloadEnv::Null => Arc::new(NullEnvironment),
        WorkloadEnv::Posix => Arc::new(PosixEnvironment::new()),
    };
    let result = Cluster::new(Arc::new(workload.program), env, base_config()).run();
    assert!(result.summary.exhausted, "solo {target} run must exhaust");
    path_set(&result.test_cases)
}

fn wait_until(
    handle: &ServiceHandle,
    run: RunId,
    what: &str,
    pred: impl Fn(&RunInfo) -> bool,
) -> RunInfo {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let info = handle.status(run).expect("run is registered");
        if pred(&info) {
            return info;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for run {run} to be {what} (state {}, {} paths)",
            info.state,
            info.paths_completed
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Two runs executing concurrently on the same 4 workers explore exactly
/// the trees their dedicated solo clusters explore.
#[test]
fn concurrent_runs_match_solo_path_sets() {
    let solo_small = solo_path_set("memcached");
    let solo_large = solo_path_set("memcached-3x5");

    let (small, large) = serve_inproc(
        WORKERS,
        RunServiceConfig {
            max_concurrent: 2,
            report_dir: None,
        },
        env_factory,
        |handle| {
            let small = handle.submit(submission("memcached")).expect("submit");
            let large = handle.submit(submission("memcached-3x5")).expect("submit");
            wait_until(&handle, small, "done", |i| i.state == RunState::Done);
            wait_until(&handle, large, "done", |i| i.state == RunState::Done);
            let small = handle.results(small).expect("results of a done run");
            let large = handle.results(large).expect("results of a done run");
            assert!(small.summary.exhausted, "small run must exhaust");
            assert!(large.summary.exhausted, "large run must exhaust");
            (small, large)
        },
    );
    assert_eq!(
        path_set(&small.test_cases),
        solo_small,
        "concurrent memcached run explored a different tree than solo"
    );
    assert_eq!(
        path_set(&large.test_cases),
        solo_large,
        "concurrent memcached-3x5 run explored a different tree than solo"
    );
    assert_eq!(small.summary.paths_completed(), solo_small.len() as u64);
    assert_eq!(large.summary.paths_completed(), solo_large.len() as u64);
}

/// A run preempted mid-flight (frontier frozen into an in-memory
/// checkpoint) and later resumed completes the exact solo tree, while a
/// concurrent run keeps executing undisturbed across the preemption.
#[test]
fn preempted_and_resumed_run_matches_solo_path_set() {
    let solo_victim = solo_path_set("memcached-3x5");
    let solo_survivor = solo_path_set("memcached");

    let (victim, survivor, preempted_at) = serve_inproc(
        WORKERS,
        RunServiceConfig {
            max_concurrent: 2,
            report_dir: None,
        },
        env_factory,
        |handle| {
            // A tiny quantum keeps the victim exploring long enough for the
            // preemption to land mid-flight rather than after exhaustion.
            let mut slow = submission("memcached-3x5");
            slow.config.quantum = 8;
            slow.config.status_interval = Duration::from_millis(1);
            let victim = handle.submit(slow).expect("submit");
            wait_until(&handle, victim, "making progress", |i| {
                i.state == RunState::Running && i.paths_completed > 0
            });
            assert!(handle.preempt(victim), "running run must be preemptable");
            let frozen = wait_until(&handle, victim, "preempted", |i| {
                i.state == RunState::Preempted
            });

            // While the victim sits frozen, a second run executes to
            // completion on the freed slot.
            let survivor = handle.submit(submission("memcached")).expect("submit");
            wait_until(&handle, survivor, "done", |i| i.state == RunState::Done);

            assert!(handle.resume(victim), "preempted run must be resumable");
            wait_until(&handle, victim, "done", |i| i.state == RunState::Done);

            let victim = handle.results(victim).expect("results of a done run");
            let survivor = handle.results(survivor).expect("results of a done run");
            (victim, survivor, frozen.paths_completed)
        },
    );
    assert!(victim.summary.exhausted, "resumed run must exhaust");
    assert!(
        (preempted_at as usize) < solo_victim.len(),
        "preemption landed after the run already finished — no resumption \
         was exercised"
    );
    assert_eq!(
        path_set(&victim.test_cases),
        solo_victim,
        "preempted+resumed run explored a different tree than solo"
    );
    assert_eq!(
        path_set(&survivor.test_cases),
        solo_survivor,
        "survivor of a neighbor's preemption explored a different tree"
    );
    assert_eq!(victim.summary.paths_completed(), solo_victim.len() as u64);
}

/// Cancelling one run mid-flight frees its slot for the queued run behind
/// it, and the surviving runs still explore their exact solo trees.
#[test]
fn cancel_mid_run_leaves_survivors_exact() {
    let solo_first = solo_path_set("memcached");
    let solo_third = solo_path_set("producer-consumer");

    let (first, third, cancelled) = serve_inproc(
        WORKERS,
        RunServiceConfig {
            max_concurrent: 2,
            report_dir: None,
        },
        env_factory,
        |handle| {
            let first = handle.submit(submission("memcached")).expect("submit");
            let second = handle.submit(submission("memcached-3x5")).expect("submit");
            // Two slots: the third run queues behind the first two.
            let third = handle
                .submit(submission("producer-consumer"))
                .expect("submit");
            wait_until(&handle, second, "running", |i| i.state == RunState::Running);
            assert!(handle.cancel(second), "running run must be cancellable");
            let cancelled = wait_until(&handle, second, "done", |i| i.state == RunState::Done);
            assert!(cancelled.cancelled, "cancelled run must say so");

            wait_until(&handle, first, "done", |i| i.state == RunState::Done);
            wait_until(&handle, third, "done", |i| i.state == RunState::Done);
            let first = handle.results(first).expect("results of a done run");
            let third = handle.results(third).expect("results of a done run");
            assert!(
                !handle.cancel(second),
                "a finished run must not be cancellable again"
            );
            (first, third, cancelled)
        },
    );
    assert!(!cancelled.cancelled || cancelled.state == RunState::Done);
    assert!(first.summary.exhausted, "first run must exhaust");
    assert!(third.summary.exhausted, "third run must exhaust");
    assert_eq!(
        path_set(&first.test_cases),
        solo_first,
        "run sharing the fleet with a cancelled neighbor diverged from solo"
    );
    assert_eq!(
        path_set(&third.test_cases),
        solo_third,
        "run admitted after a cancellation diverged from solo"
    );
}

/// The registry life cycle as seen through the handle: list order,
/// queued-run cancellation, and unknown-run errors.
#[test]
fn registry_bookkeeping() {
    serve_inproc(
        WORKERS,
        RunServiceConfig {
            max_concurrent: 1,
            report_dir: None,
        },
        env_factory,
        |handle| {
            let a = handle.submit(submission("memcached")).expect("submit");
            let b = handle
                .submit(submission("producer-consumer"))
                .expect("submit");
            assert_ne!(a, b, "run ids must be unique");

            // A queued run can be cancelled before it ever touches a worker.
            let queued = handle.submit(submission("memcached-3x5")).expect("submit");
            assert!(handle.cancel(queued), "queued run must be cancellable");
            let info = handle.status(queued).expect("cancelled run stays listed");
            assert_eq!(info.state, RunState::Done);
            assert!(info.cancelled);
            assert_eq!(info.paths_completed, 0);

            assert!(handle.status(RunId(999)).is_none(), "unknown run id");
            assert!(!handle.cancel(RunId(999)));
            assert!(!handle.preempt(queued), "done run is not preemptable");
            assert!(!handle.resume(queued), "done run is not resumable");

            wait_until(&handle, a, "done", |i| i.state == RunState::Done);
            wait_until(&handle, b, "done", |i| i.state == RunState::Done);
            let listed = handle.list();
            assert_eq!(listed.len(), 3, "all submissions stay listed");
            assert_eq!(
                listed.iter().map(|i| i.id).collect::<Vec<_>>(),
                vec![a, b, queued],
                "list follows submission order"
            );
            assert!(
                listed.iter().all(|i| i.state == RunState::Done),
                "everything finished"
            );
        },
    );
}
