//! Strategy-portfolio integration tests: a cluster whose workers run a
//! heterogeneous strategy mix must stay *exact* (dynamic partitioning keeps
//! frontiers disjoint no matter how each worker orders its exploration) and
//! must reach at least the uniform baseline's coverage for the same quantum
//! budget.

use cloud9::core::{Cluster, ClusterConfig, ClusterRunResult, PortfolioConfig};
use cloud9::posix::PosixEnvironment;
use cloud9::targets::named_workload;
use cloud9::vm::StrategyKind;
use std::sync::Arc;
use std::time::Duration;

fn run(target: &str, workers: usize, portfolio: Option<PortfolioConfig>) -> ClusterRunResult {
    let workload = named_workload(target).expect("registered target");
    let cluster = Cluster::new(
        Arc::new(workload.program),
        Arc::new(PosixEnvironment::new()),
        ClusterConfig {
            num_workers: workers,
            time_limit: Some(Duration::from_secs(300)),
            quantum: 2_000,
            status_interval: Duration::from_millis(2),
            balance_interval: Duration::from_millis(5),
            portfolio,
            ..ClusterConfig::default()
        },
    );
    cluster.run()
}

fn full_mix() -> Vec<StrategyKind> {
    vec![
        StrategyKind::Dfs,
        StrategyKind::RandomPath,
        StrategyKind::CovOpt,
        StrategyKind::Cupa,
    ]
}

/// The acceptance-criteria test: a 4-worker portfolio run on memcached
/// reaches at least the uniform-strategy baseline's global coverage in the
/// same quantum budget, without losing or duplicating any path.
#[test]
fn four_worker_portfolio_matches_uniform_coverage_on_memcached() {
    let uniform = run("memcached", 4, None);
    assert!(uniform.summary.exhausted, "uniform baseline must exhaust");

    let portfolio = run(
        "memcached",
        4,
        Some(PortfolioConfig {
            mix: full_mix(),
            adapt: false,
        }),
    );
    assert!(portfolio.summary.exhausted, "portfolio run must exhaust");
    assert_eq!(
        portfolio.summary.paths_completed(),
        uniform.summary.paths_completed(),
        "a strategy mix must not change the explored tree"
    );
    assert!(
        portfolio.summary.coverage_ratio() >= uniform.summary.coverage_ratio(),
        "portfolio coverage {:.3} fell below the uniform baseline {:.3}",
        portfolio.summary.coverage_ratio(),
        uniform.summary.coverage_ratio()
    );
}

/// Adaptive rebalancing (SetStrategy controls flowing mid-run) keeps the
/// exploration exact too.
#[test]
fn adaptive_portfolio_stays_exact() {
    let uniform = run("memcached", 2, None);
    assert!(uniform.summary.exhausted);

    let adaptive = run(
        "memcached",
        4,
        Some(PortfolioConfig {
            mix: full_mix(),
            adapt: true,
        }),
    );
    assert!(adaptive.summary.exhausted);
    assert_eq!(
        adaptive.summary.paths_completed(),
        uniform.summary.paths_completed(),
        "adaptive reassignment lost or duplicated paths"
    );
}

/// Every strategy of the mix explores the same tree when run uniformly —
/// the per-strategy correctness the portfolio builds on.
#[test]
fn every_strategy_is_exhaustive_on_its_own() {
    let baseline = run("memcached", 2, None);
    assert!(baseline.summary.exhausted);
    let expected = baseline.summary.paths_completed();
    for kind in [
        StrategyKind::RandomPath,
        StrategyKind::CovOpt,
        StrategyKind::Cupa,
    ] {
        let result = run(
            "memcached",
            2,
            Some(PortfolioConfig {
                mix: vec![kind],
                adapt: false,
            }),
        );
        assert!(result.summary.exhausted, "{kind} did not exhaust");
        assert_eq!(
            result.summary.paths_completed(),
            expected,
            "{kind} changed the explored tree"
        );
    }
}
