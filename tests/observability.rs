//! Observability-layer guarantees.
//!
//! The tracing/metrics layer must be *write-only* with respect to the
//! exploration: arming spans, raising the log level, and recording
//! histograms may never change which paths a worker explores, which bugs
//! it finds, or what it covers. These tests pin that property (tracing
//! on vs off, single- and multi-threaded), and validate the
//! machine-readable artifacts: `run_report.json` totals must equal the
//! in-memory summary, and the `--timeline-out` CSV must mirror the
//! interval samples.

use cloud9::core::{run_report, timeline_csv, Cluster, ClusterConfig, Worker, WorkerConfig};
use cloud9::net::{RunId, WorkerId};
use cloud9::posix::PosixEnvironment;
use cloud9::targets::named_workload;
use cloud9::trace::json::Json;
use cloud9::trace::Level;
use cloud9::vm::PathChoice;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Serializes tests that flip the process-global tracer state (level,
/// span switch) so parallel test threads cannot race on it.
static TRACE_STATE: Mutex<()> = Mutex::new(());

fn trace_lock() -> MutexGuard<'static, ()> {
    TRACE_STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Everything observable about one exhaustive run that tracing must not
/// perturb.
#[derive(Debug, PartialEq)]
struct Outcome {
    paths: u64,
    useful_instructions: u64,
    bugs: u64,
    covered_lines: u64,
    path_set: Vec<Vec<PathChoice>>,
}

fn exhaust(target: &str, threads: usize) -> Outcome {
    let workload = named_workload(target).expect("registered target");
    let mut worker = Worker::new(
        WorkerId(0),
        Arc::new(workload.program),
        Arc::new(PosixEnvironment::new()),
        WorkerConfig {
            threads,
            generate_test_cases: true,
            ..WorkerConfig::default()
        },
    );
    worker.seed_root();
    while worker.has_work() {
        worker.run_quantum(50_000);
    }
    let mut path_set: Vec<Vec<PathChoice>> =
        worker.test_cases.iter().map(|tc| tc.path.clone()).collect();
    path_set.sort();
    Outcome {
        paths: worker.stats.paths_completed,
        useful_instructions: worker.stats.useful_instructions,
        bugs: worker.stats.bugs_found,
        covered_lines: worker.coverage.count() as u64,
        path_set,
    }
}

/// Arming full tracing (debug level + span recording) must leave the
/// exhaustive path set, bug count, and coverage bit-identical, at one
/// executor thread and at four.
#[test]
fn tracing_never_changes_the_tree() {
    let _guard = trace_lock();
    let baseline_level = cloud9::trace::level();
    for threads in [1usize, 4] {
        cloud9::trace::set_level(Level::Error);
        cloud9::trace::enable_spans(false);
        let off = exhaust("memcached-3x5", threads);
        assert!(off.paths > 0);

        cloud9::trace::set_level(Level::Debug);
        cloud9::trace::enable_spans(true);
        let on = exhaust("memcached-3x5", threads);
        let recorded = cloud9::trace::drain_spans();
        assert!(
            !recorded.is_empty(),
            "armed run recorded no spans (threads {threads})"
        );

        cloud9::trace::enable_spans(false);
        assert_eq!(on, off, "tracing changed the tree at threads {threads}");
    }
    cloud9::trace::set_level(baseline_level);
}

/// Runs a transfer-heavy in-process cluster to exhaustion, so the report
/// has non-trivial per-worker histograms and a timeline to validate.
fn cluster_summary() -> cloud9::core::ClusterSummary {
    let workload = named_workload("memcached-3x5").expect("registered target");
    let mut config = ClusterConfig {
        num_workers: 4,
        time_limit: Some(Duration::from_secs(120)),
        quantum: 2_000,
        status_interval: Duration::from_millis(2),
        balance_interval: Duration::from_millis(4),
        ..ClusterConfig::default()
    };
    config.worker.threads = 1;
    let result = Cluster::new(
        Arc::new(workload.program),
        Arc::new(PosixEnvironment::new()),
        config,
    )
    .run();
    assert!(result.summary.exhausted, "cluster did not exhaust");
    result.summary
}

fn obj<'a>(json: &'a Json, key: &str) -> &'a Json {
    json.get(key).unwrap_or_else(|| panic!("missing key {key}"))
}

/// `run_report` round-trips through its own renderer/parser, and every
/// total in the document equals the in-memory summary it was built from —
/// the same invariant the CI report check enforces against the printed
/// summary of a real multi-process run.
#[test]
fn run_report_totals_match_summary() {
    let summary = cluster_summary();
    let rendered = run_report(RunId(7), &summary).render();
    let report = Json::parse(&rendered).expect("report must be valid JSON");

    assert_eq!(obj(&report, "run").as_u64(), Some(7));
    let totals = obj(&report, "totals");
    assert_eq!(
        obj(totals, "paths_completed").as_u64(),
        Some(summary.paths_completed())
    );
    assert_eq!(obj(totals, "bugs_found").as_u64(), Some(summary.bugs_found));
    assert_eq!(
        obj(totals, "useful_instructions").as_u64(),
        Some(summary.useful_instructions())
    );
    assert_eq!(
        obj(totals, "jobs_transferred").as_u64(),
        Some(summary.jobs_transferred())
    );
    assert_eq!(
        obj(&report, "num_workers").as_u64(),
        Some(summary.num_workers as u64)
    );

    // Per-worker entries carry the piggybacked histogram snapshots; the
    // sum of per-worker paths must re-derive the cluster total.
    let workers = obj(&report, "workers").as_arr().expect("workers array");
    assert_eq!(workers.len(), summary.worker_stats.len());
    let mut paths_sum = 0;
    let mut quantum_count = 0;
    for worker in workers {
        paths_sum += obj(worker, "paths_completed").as_u64().unwrap();
        let histograms = obj(obj(worker, "metrics"), "histograms");
        let solver = obj(histograms, "solver_query_us");
        assert!(obj(solver, "count").as_u64().is_some());
        if let Some(quantum) = histograms.get("quantum_us") {
            quantum_count += obj(quantum, "count").as_u64().unwrap();
        }
    }
    assert_eq!(paths_sum, summary.paths_completed());
    assert!(quantum_count > 0, "no quantum durations recorded");

    // The cluster-wide merge must carry the tentpole histograms.
    let merged = obj(obj(&report, "metrics"), "histograms");
    for name in ["quantum_us", "quantum_instructions", "batch_jobs"] {
        assert!(
            merged.get(name).is_some(),
            "merged histogram {name} missing"
        );
    }

    let timeline = obj(&report, "timeline").as_arr().expect("timeline array");
    assert_eq!(timeline.len(), summary.timeline.len());
}

/// The `--timeline-out` CSV mirrors the interval samples row for row.
#[test]
fn timeline_csv_mirrors_samples() {
    let summary = cluster_summary();
    let csv = timeline_csv(&summary.timeline);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(
        lines[0],
        "elapsed_secs,states_transferred,total_states,useful_instructions,coverage"
    );
    assert_eq!(lines.len(), summary.timeline.len() + 1);
    for (line, sample) in lines[1..].iter().zip(&summary.timeline) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 5);
        assert_eq!(fields[1], sample.states_transferred.to_string());
        assert_eq!(fields[3], sample.useful_instructions.to_string());
    }
}
