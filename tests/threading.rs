//! Intra-worker parallelism equivalence: a worker stepping states on
//! `--threads N` executor threads must explore *exactly* the same
//! exhaustive path set as the classic single-threaded loop — same paths,
//! same useful-instruction total, same bugs, same coverage, same test
//! cases. The shared solver guarantees this by construction (satisfiability
//! bits and canonical models are pure functions of the constraint set), and
//! these tests pin the property on the targets the paper exercises.

use cloud9::core::{Cluster, ClusterConfig, Worker, WorkerConfig};
use cloud9::net::WorkerId;
use cloud9::posix::PosixEnvironment;
use cloud9::targets::{named_workload, printf_util};
use cloud9::vm::{PathChoice, StrategyKind};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The observable outcome of exhausting one worker: everything that must
/// be independent of the executor-thread count.
#[derive(Debug, PartialEq)]
struct ExhaustionOutcome {
    paths: u64,
    useful_instructions: u64,
    bugs: u64,
    covered_lines: u64,
    /// Every completed path, sorted (the execution tree itself).
    path_set: Vec<Vec<PathChoice>>,
}

fn exhaust_worker(
    program: c9_ir::Program,
    threads: usize,
    strategy: StrategyKind,
) -> ExhaustionOutcome {
    let mut worker = Worker::new(
        WorkerId(0),
        Arc::new(program),
        Arc::new(PosixEnvironment::new()),
        WorkerConfig {
            threads,
            strategy,
            generate_test_cases: true,
            ..WorkerConfig::default()
        },
    );
    worker.seed_root();
    let mut guard = 0u32;
    while worker.has_work() {
        worker.run_quantum(50_000);
        guard += 1;
        assert!(guard < 100_000, "worker failed to exhaust");
    }
    let mut path_set: Vec<Vec<PathChoice>> =
        worker.test_cases.iter().map(|tc| tc.path.clone()).collect();
    path_set.sort();
    ExhaustionOutcome {
        paths: worker.stats.paths_completed,
        useful_instructions: worker.stats.useful_instructions,
        bugs: worker.stats.bugs_found,
        covered_lines: worker.coverage.count() as u64,
        path_set,
    }
}

/// `run_quantum` with `--threads 4` reaches the same exhaustive path set
/// as single-threaded on printf-6 (the Fig. 8 workload shape).
#[test]
fn printf6_path_set_is_thread_count_invariant() {
    let single = exhaust_worker(printf_util::program(6), 1, StrategyKind::KleeDefault);
    assert!(single.paths > 0);
    assert_eq!(single.paths as usize, single.path_set.len());
    let parallel = exhaust_worker(printf_util::program(6), 4, StrategyKind::KleeDefault);
    assert_eq!(parallel, single, "printf-6 tree depends on thread count");
}

/// Same property on the multi-threaded-target workload: the
/// producer/consumer benchmark forks over schedules, the worst case for
/// accidental ordering dependence.
#[test]
fn producer_consumer_path_set_is_thread_count_invariant() {
    let program = || {
        named_workload("producer-consumer")
            .expect("registered")
            .program
    };
    let single = exhaust_worker(program(), 1, StrategyKind::KleeDefault);
    assert!(single.paths > 0);
    let parallel = exhaust_worker(program(), 4, StrategyKind::KleeDefault);
    assert_eq!(
        parallel, single,
        "producer-consumer tree depends on thread count"
    );
}

/// A full in-process cluster (load balancing, job transfer, replay) with
/// multi-threaded workers still explores exactly the baseline tree.
#[test]
fn cluster_with_threaded_workers_stays_exact() {
    let run = |threads: usize| {
        let workload = named_workload("memcached").expect("registered target");
        let mut config = ClusterConfig {
            num_workers: 2,
            time_limit: Some(Duration::from_secs(120)),
            ..ClusterConfig::default()
        };
        config.worker.threads = threads;
        Cluster::new(
            Arc::new(workload.program),
            Arc::new(PosixEnvironment::new()),
            config,
        )
        .run()
    };
    let single = run(1);
    assert!(single.summary.exhausted);
    let threaded = run(4);
    assert!(threaded.summary.exhausted);
    assert_eq!(
        threaded.summary.paths_completed(),
        single.summary.paths_completed(),
        "threaded cluster lost or duplicated paths"
    );
    // Worker reports carry the thread count and shared-solver totals.
    assert!(threaded.summary.worker_stats.iter().all(|w| w.threads == 4));
    assert!(threaded.summary.solver_stats().queries > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: for any seed and strategy, exhausting printf-6 with 4
    /// executor threads completes the same path set as with 1.
    #[test]
    fn prop_thread_count_never_changes_the_tree(seed in 1u64..10_000, pick in 0usize..4) {
        let strategy = [
            StrategyKind::KleeDefault,
            StrategyKind::Dfs,
            StrategyKind::Cupa,
            StrategyKind::RandomPath,
        ][pick];
        let build = |threads: usize| {
            let mut worker = Worker::new(
                WorkerId(0),
                Arc::new(printf_util::program(6)),
                Arc::new(PosixEnvironment::new()),
                WorkerConfig {
                    threads,
                    strategy,
                    seed,
                    generate_test_cases: true,
                    ..WorkerConfig::default()
                },
            );
            worker.seed_root();
            while worker.has_work() {
                worker.run_quantum(20_000);
            }
            let mut paths: Vec<Vec<PathChoice>> =
                worker.test_cases.iter().map(|tc| tc.path.clone()).collect();
            paths.sort();
            (worker.stats.paths_completed, worker.stats.useful_instructions, paths)
        };
        let single = build(1);
        let parallel = build(4);
        prop_assert_eq!(single, parallel);
    }
}
