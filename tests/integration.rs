//! Cross-crate integration tests: the case studies of §7.3 run end to end
//! through the facade crate.

use cloud9::core::{Cluster, ClusterConfig};
use cloud9::posix::PosixEnvironment;
use cloud9::prelude::*;
use cloud9::targets::{bandicoot, curl, memcached};
use cloud9::vm::BugKind;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn curl_glob_bug_found_end_to_end() {
    let mut engine = Engine::new(
        Arc::new(curl::program(5)),
        Arc::new(PosixEnvironment::new()),
        Box::new(DfsSearcher::new()),
        EngineConfig::default(),
    );
    let summary = engine.run();
    assert!(summary.bugs.iter().any(|b| matches!(
        b.termination,
        TerminationReason::Bug(BugKind::OutOfBounds { .. })
    )));
}

#[test]
fn bandicoot_oob_read_found_end_to_end() {
    let mut engine = Engine::new(
        Arc::new(bandicoot::program()),
        Arc::new(PosixEnvironment::new()),
        Box::new(DfsSearcher::new()),
        EngineConfig::default(),
    );
    let summary = engine.run();
    assert!(summary.bugs.iter().any(|b| matches!(
        b.termination,
        TerminationReason::Bug(BugKind::OutOfBounds { .. })
    )));
}

#[test]
fn memcached_cluster_path_count_matches_single_node() {
    let program = memcached::program(&memcached::MemcachedConfig {
        packets: 1,
        packet_size: 5,
        ..memcached::MemcachedConfig::default()
    });

    // Single-node baseline.
    let mut engine = Engine::new(
        Arc::new(program.clone()),
        Arc::new(PosixEnvironment::new()),
        Box::new(DfsSearcher::new()),
        EngineConfig {
            generate_test_cases: false,
            ..EngineConfig::default()
        },
    );
    let single = engine.run();
    assert!(single.exhausted);

    // Two-worker cluster must find exactly the same number of paths.
    let cluster = Cluster::new(
        Arc::new(program),
        Arc::new(PosixEnvironment::new()),
        ClusterConfig {
            num_workers: 2,
            time_limit: Some(Duration::from_secs(120)),
            ..ClusterConfig::default()
        },
    );
    let parallel = cluster.run();
    assert!(parallel.summary.exhausted);
    assert_eq!(
        parallel.summary.paths_completed(),
        single.paths_completed as u64
    );
}

#[test]
fn prelude_exposes_the_solver_api() {
    use cloud9::expr::{Expr, SymbolManager, Width};
    let mut syms = SymbolManager::new();
    let x = syms.fresh("x", Width::W8);
    let mut pc = ConstraintSet::new();
    pc.push(Expr::eq(
        Expr::sym(x, Width::W8),
        Expr::const_(7, Width::W8),
    ));
    let solver = Solver::new();
    match solver.check_sat(&pc) {
        SatResult::Sat(model) => assert_eq!(model.get(x), Some(7)),
        other => panic!("expected sat, got {other:?}"),
    }
}
