//! The reactor keeps the network layer at O(1) threads: one event-loop
//! thread multiplexes every listener and connection over `poll(2)`, so a
//! coordinator serving 256 peers costs the same thread budget as one
//! serving 4. This test pins that property by watching the kernel's own
//! thread count while piling raw connections onto a listening endpoint —
//! if anyone reintroduces thread-per-connection accept loops, the count
//! grows and the test fails.

#![cfg(target_os = "linux")]

use cloud9::net::TcpCoordinatorEndpoint;
use std::net::TcpStream;
use std::time::Duration;

/// The process's live thread count, straight from the kernel.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line in /proc/self/status")
        .trim()
        .parse()
        .expect("thread count is a number")
}

#[test]
fn coordinator_thread_count_does_not_grow_with_connections() {
    let endpoint = TcpCoordinatorEndpoint::listen("127.0.0.1:0").expect("bind listener");
    let addr = endpoint.local_addr().expect("bound address");

    // Baseline at a small connection count, after the reactor has had time
    // to accept everything.
    let few: Vec<TcpStream> = (0..4)
        .map(|_| TcpStream::connect(addr).expect("connect"))
        .collect();
    std::thread::sleep(Duration::from_millis(200));
    let baseline = thread_count();

    // 64 more live connections: an order of magnitude beyond the baseline.
    // The reactor accepts and registers them all on its single thread.
    let many: Vec<TcpStream> = (0..64)
        .map(|_| TcpStream::connect(addr).expect("connect"))
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    let loaded = thread_count();

    assert_eq!(
        loaded, baseline,
        "thread count grew with connections: {baseline} threads at 4 \
         connections, {loaded} at 68 — the net layer must stay O(1) threads"
    );
    // Sanity: the absolute budget is the test harness plus one reactor
    // thread, nowhere near one-per-connection.
    assert!(
        baseline <= 16,
        "suspiciously many threads at 4 connections: {baseline}"
    );

    drop(few);
    drop(many);
    drop(endpoint);
}
