//! Cross-worker constraint-cache sharing, end to end: gossiped cache
//! slices (JobBatch piggyback + status gossip + coordinator hot-set
//! rebroadcast) and alternative solver backends are pure cache/witness
//! layers. The invariant under test is that they never change what a
//! cluster explores — path sets, coverage, and bug sets are compared
//! bit-for-bit between gossip off/on and between backend canonical/race —
//! while the per-run isolation probe shows a gossip-free tenant sharing
//! the fleet with a gossiping one sees none of its warmth.

use cloud9::core::{
    serve_inproc, Cluster, ClusterConfig, RunId, RunInfo, RunServiceConfig, RunState,
    RunSubmission, ServiceHandle, SolverBackendKind,
};
use cloud9::net::EnvSpec;
use cloud9::posix::PosixEnvironment;
use cloud9::targets::{named_workload, WorkloadEnv};
use cloud9::vm::{Environment, NullEnvironment, PathChoice, TestCase};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;

/// Everything that must be identical when only cache/witness layers change.
#[derive(Debug, PartialEq)]
struct Outcome {
    paths: u64,
    covered_lines: u64,
    bug_paths: Vec<Vec<PathChoice>>,
    path_set: Vec<Vec<PathChoice>>,
}

/// Solver-side activity that the legs are allowed (and expected) to change.
struct Warmth {
    warm_hits: u64,
    imported_entries: u64,
    gossip_bytes: u64,
}

fn path_set(test_cases: &[TestCase]) -> Vec<Vec<PathChoice>> {
    let mut paths: Vec<Vec<PathChoice>> = test_cases.iter().map(|t| t.path.clone()).collect();
    paths.sort();
    paths
}

/// Transfer-heavy 4-worker config: small quanta and tight cadences keep
/// jobs, gossip slices, and hot-set rebroadcasts moving all run long.
fn transfer_heavy_config() -> ClusterConfig {
    let mut config = ClusterConfig {
        num_workers: WORKERS,
        time_limit: Some(Duration::from_secs(120)),
        quantum: 2_000,
        status_interval: Duration::from_millis(2),
        balance_interval: Duration::from_millis(4),
        ..ClusterConfig::default()
    };
    config.worker.generate_test_cases = true;
    config
}

fn cluster_outcome(target: &str, configure: impl FnOnce(&mut ClusterConfig)) -> (Outcome, Warmth) {
    let workload = named_workload(target).expect("registered target");
    let mut config = transfer_heavy_config();
    configure(&mut config);
    let result = Cluster::new(
        Arc::new(workload.program),
        Arc::new(PosixEnvironment::new()),
        config,
    )
    .run();
    assert!(result.summary.exhausted, "{target} cluster must exhaust");
    let solver = result.summary.solver_stats();
    let outcome = Outcome {
        paths: result.summary.paths_completed(),
        covered_lines: result.summary.coverage.count() as u64,
        bug_paths: path_set(&result.bugs),
        path_set: path_set(&result.test_cases),
    };
    let warmth = Warmth {
        warm_hits: solver.warm_hits,
        imported_entries: solver.imported_cache_entries,
        gossip_bytes: result
            .summary
            .worker_stats
            .iter()
            .map(|w| w.gossip_bytes_sent + w.gossip_bytes_received)
            .sum(),
    };
    (outcome, warmth)
}

/// Gossip off vs on: bit-identical trees, and the gossip leg actually
/// moved slices and served warm hits (otherwise the parity is vacuous).
#[test]
fn gossip_does_not_change_the_explored_tree() {
    let (off, off_warmth) = cluster_outcome("memcached-3x5", |c| {
        c.worker.cache_gossip = false;
    });
    assert!(off.paths > 0);
    assert_eq!(off_warmth.gossip_bytes, 0, "gossip off must move no bytes");
    assert_eq!(off_warmth.imported_entries, 0);

    let (on, on_warmth) = cluster_outcome("memcached-3x5", |c| {
        c.worker.cache_gossip = true;
    });
    assert_eq!(on, off, "cache gossip changed the explored tree");
    assert!(on_warmth.gossip_bytes > 0, "gossip on moved no slice bytes");
    assert!(
        on_warmth.imported_entries > 0 && on_warmth.warm_hits > 0,
        "gossip on warmed nothing ({} imported, {} warm hits)",
        on_warmth.imported_entries,
        on_warmth.warm_hits
    );
}

/// Backend canonical vs race (with gossip on in both legs): feasibility
/// witnesses from the racing backend are verified and canonical models
/// always come from the canonical search, so the tree is bit-identical.
#[test]
fn backend_race_does_not_change_the_explored_tree() {
    let (canonical, _) = cluster_outcome("memcached-3x5", |c| {
        c.worker.solver_backend = SolverBackendKind::Canonical;
    });
    assert!(canonical.paths > 0);
    for kind in [SolverBackendKind::BitBlast, SolverBackendKind::Race] {
        let (alt, _) = cluster_outcome("memcached-3x5", |c| {
            c.worker.solver_backend = kind;
        });
        assert_eq!(alt, canonical, "backend {kind} changed the explored tree");
    }
}

fn env_factory(spec: EnvSpec) -> Arc<dyn Environment> {
    match spec {
        EnvSpec::Null => Arc::new(NullEnvironment),
        EnvSpec::Posix => Arc::new(PosixEnvironment::new()),
    }
}

fn submission(target: &str, gossip: bool) -> RunSubmission {
    let workload = named_workload(target).expect("registered target");
    let env = match workload.env {
        WorkloadEnv::Null => EnvSpec::Null,
        WorkloadEnv::Posix => EnvSpec::Posix,
    };
    // The same transfer-heavy shape as the direct cluster legs: small
    // quanta keep both tenants' jobs migrating and the gossiping one's
    // slices flowing long enough to serve warm hits before exhaustion.
    let mut config = transfer_heavy_config();
    config.worker.cache_gossip = gossip;
    RunSubmission {
        name: format!("{target}-gossip-{gossip}"),
        program: Arc::new(workload.program),
        env,
        config,
    }
}

fn wait_done(handle: &ServiceHandle, run: RunId) -> RunInfo {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let info = handle.status(run).expect("run is registered");
        if info.state == RunState::Done {
            return info;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for run {run} (state {})",
            info.state
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Per-run isolation on the shared fleet: a gossip-free tenant admitted
/// concurrently with a gossiping one must finish with zero imported
/// entries, zero warm hits, and zero gossip bytes — run-scoped hot sets
/// and per-run solvers mean tenants never see each other's constraints.
#[test]
fn concurrent_tenants_do_not_share_cache_warmth() {
    let (quiet, chatty) = serve_inproc(
        WORKERS,
        RunServiceConfig {
            max_concurrent: 2,
            ..RunServiceConfig::default()
        },
        env_factory,
        |handle| {
            let quiet = handle
                .submit(submission("memcached-3x5", false))
                .expect("submit gossip-free run");
            let chatty = handle
                .submit(submission("memcached-3x5", true))
                .expect("submit gossiping run");
            wait_done(&handle, quiet);
            wait_done(&handle, chatty);
            let quiet = handle.results(quiet).expect("results of a done run");
            let chatty = handle.results(chatty).expect("results of a done run");
            handle.shutdown();
            (quiet, chatty)
        },
    );

    // Both tenants explored the identical exhaustive tree.
    assert_eq!(path_set(&quiet.test_cases), path_set(&chatty.test_cases));

    let quiet_solver = quiet.summary.solver_stats();
    assert_eq!(
        quiet_solver.imported_cache_entries, 0,
        "a gossip-free run imported cache entries from a neighbor"
    );
    assert_eq!(quiet_solver.warm_hits, 0);
    let quiet_bytes: u64 = quiet
        .summary
        .worker_stats
        .iter()
        .map(|w| w.gossip_bytes_sent + w.gossip_bytes_received)
        .sum();
    assert_eq!(quiet_bytes, 0, "a gossip-free run moved gossip bytes");

    let chatty_bytes: u64 = chatty
        .summary
        .worker_stats
        .iter()
        .map(|w| w.gossip_bytes_sent + w.gossip_bytes_received)
        .sum();
    assert!(chatty_bytes > 0, "the gossiping run moved no slice bytes");
    assert!(chatty.summary.solver_stats().warm_hits > 0);
}
