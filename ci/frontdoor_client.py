#!/usr/bin/env python3
"""Drive the run-service NDJSON front door end to end for the CI smoke.

Usage: frontdoor_client.py HOST:PORT TARGET [TARGET ...]

Submits every TARGET as its own run over one connection, polls the registry
until all of them report "done", fetches each run's results, and shuts the
service down. For every run it writes frontdoor-run-<id>-summary.txt with a
"total paths:" line in the coordinator's summary format, so
check_run_report.py can cross-check the per-run run-<id>.json report the
service wrote against what the front door returned.

Exits non-zero with a diagnostic on the first protocol violation.
"""

import json
import socket
import sys
import time

POLL_INTERVAL = 0.2
DEADLINE_SECS = 300


def fail(msg):
    print(f"frontdoor_client: FAIL: {msg}")
    sys.exit(1)


class Client:
    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=DEADLINE_SECS)
        self.file = self.sock.makefile("rw")

    def command(self, **payload):
        self.file.write(json.dumps(payload) + "\n")
        self.file.flush()
        line = self.file.readline()
        if not line:
            fail(f"connection closed mid-command: {payload}")
        reply = json.loads(line)
        if "ok" not in reply:
            fail(f"reply to {payload} lacks 'ok': {reply}")
        return reply

    def expect_ok(self, **payload):
        reply = self.command(**payload)
        if not reply["ok"]:
            fail(f"{payload} failed: {reply.get('error')}")
        return reply


def main():
    if len(sys.argv) < 3:
        fail("usage: frontdoor_client.py HOST:PORT TARGET [TARGET ...]")
    host, port = sys.argv[1].rsplit(":", 1)
    targets = sys.argv[2:]
    client = Client(host, int(port))

    runs = {}  # run id -> target name
    for target in targets:
        reply = client.expect_ok(cmd="submit", target=target)
        run = reply.get("run")
        if not isinstance(run, int) or run <= 0:
            fail(f"submit returned a bad run id: {reply}")
        runs[run] = target
        print(f"frontdoor_client: submitted {target} as run {run}")
    if len(runs) != len(targets):
        fail("duplicate run ids across submissions")

    deadline = time.monotonic() + DEADLINE_SECS
    while True:
        listed = {r["id"]: r for r in client.expect_ok(cmd="list")["runs"]}
        missing = [run for run in runs if run not in listed]
        if missing:
            fail(f"submitted runs vanished from the registry: {missing}")
        if all(listed[run]["state"] == "done" for run in runs):
            break
        if time.monotonic() > deadline:
            states = {run: listed[run]["state"] for run in runs}
            fail(f"runs did not finish within {DEADLINE_SECS}s: {states}")
        time.sleep(POLL_INTERVAL)

    for run, target in runs.items():
        status = client.expect_ok(cmd="status", run=run)["run"]
        if status["cancelled"]:
            fail(f"run {run} ({target}) was cancelled")
        results = client.expect_ok(cmd="results", run=run)["results"]
        if not results["exhausted"]:
            fail(f"run {run} ({target}) did not exhaust its tree")
        if results["paths_completed"] != status["paths_completed"]:
            fail(
                f"run {run}: results say {results['paths_completed']} paths, "
                f"status says {status['paths_completed']}"
            )
        with open(f"frontdoor-run-{run}-summary.txt", "w") as f:
            f.write(f"target:            {target}\n")
            f.write(f"total paths:       {results['paths_completed']}\n")
            f.write(f"coverage:          {100.0 * results['coverage']:.1f}%\n")
        print(
            f"frontdoor_client: run {run} ({target}) done, "
            f"{results['paths_completed']} paths, "
            f"{100.0 * results['coverage']:.1f}% coverage"
        )

    bad = client.command(cmd="status", run=999999)
    if bad["ok"]:
        fail("status of an unknown run succeeded")

    client.expect_ok(cmd="shutdown")
    print(f"frontdoor_client: OK ({len(runs)} runs served, service shut down)")


if __name__ == "__main__":
    main()
