#!/usr/bin/env python3
"""Validate a run_report.json against the coordinator's printed summary.

Usage: check_run_report.py REPORT SUMMARY_LOG [TRACE_JSONL ...]

Checks, in order:
  1. REPORT parses as JSON and carries the expected top-level layout,
     including the run id stamp introduced with report version 2.
  2. The aggregate path count in the report equals the "total paths:"
     line the coordinator printed (SUMMARY_LOG) — the machine-readable
     artifact and the human-readable summary must never drift apart.
  3. The per-worker path counts re-derive the aggregate.
  4. Every worker entry carries its piggybacked histogram snapshots
     (solver-query latency always; quantum durations for any worker
     that executed), and the timeline is present.
  5. Every extra TRACE_JSONL file is valid JSON line by line.

Exits non-zero with a diagnostic on the first violation.
"""

import json
import re
import sys


def fail(msg):
    print(f"check_run_report: FAIL: {msg}")
    sys.exit(1)


def main():
    if len(sys.argv) < 3:
        fail("usage: check_run_report.py REPORT SUMMARY_LOG [TRACE_JSONL ...]")
    report_path, log_path, trace_paths = sys.argv[1], sys.argv[2], sys.argv[3:]

    try:
        with open(report_path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{report_path} is not readable JSON: {e}")

    for key in ("version", "run", "totals", "workers", "timeline", "metrics"):
        if key not in report:
            fail(f"report is missing the {key!r} key")
    if report["version"] < 2:
        fail(f"report version {report['version']} predates the run-id stamp")
    if not isinstance(report["run"], int) or report["run"] <= 0:
        fail(f"report carries a bad run id: {report['run']!r}")

    with open(log_path) as f:
        log = f.read()
    m = re.search(r"total paths:\s+(\d+)", log)
    if not m:
        fail(f"no 'total paths:' line in {log_path}")
    printed = int(m.group(1))

    reported = report["totals"]["paths_completed"]
    if reported != printed:
        fail(f"report says {reported} paths, coordinator printed {printed}")

    workers = report["workers"]
    if not workers:
        fail("report has no worker entries")
    per_worker = sum(w["paths_completed"] for w in workers)
    if per_worker != printed:
        fail(f"per-worker paths sum to {per_worker}, summary says {printed}")

    quantum_count = 0
    for w in workers:
        histograms = w["metrics"]["histograms"]
        if "solver_query_us" not in histograms:
            fail(f"worker {w['index']} lacks the solver_query_us histogram")
        quantum_count += histograms.get("quantum_us", {}).get("count", 0)
    if quantum_count == 0:
        fail("no worker recorded a quantum duration")

    if not isinstance(report["timeline"], list):
        fail("timeline is not an array")

    for path in trace_paths:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{path}:{lineno} is not valid JSON: {e}")

    print(
        f"check_run_report: OK ({printed} paths, {len(workers)} workers, "
        f"{len(report['timeline'])} timeline samples, "
        f"{len(trace_paths)} event logs)"
    )


if __name__ == "__main__":
    main()
