//! Reproduce the lighttpd incomplete-bug-fix finding (§7.3.4, Table 6): a
//! symbolic test with packet fragmentation shows the pre-patch server
//! crashes, the patched server still crashes for some fragmentation
//! patterns, and only the fully fixed parser survives everything.
//!
//! Run with `cargo run --release --example lighttpd_fragmentation`.

use cloud9::prelude::*;
use cloud9::targets::lighttpd::{self, LighttpdVersion};
use cloud9::vm::BugKind;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    for version in [
        LighttpdVersion::V1_4_12,
        LighttpdVersion::V1_4_13,
        LighttpdVersion::Fixed,
    ] {
        let env = PosixEnvironment::with_config(PosixConfig {
            max_symbolic_chunk: 28,
            max_fragment_alternatives: 3,
            ..PosixConfig::default()
        });
        let mut engine = Engine::new(
            Arc::new(lighttpd::program(version)),
            Arc::new(env),
            Box::new(DfsSearcher::new()),
            EngineConfig {
                max_paths: 500,
                max_time: Some(Duration::from_secs(60)),
                generate_test_cases: true,
                ..EngineConfig::default()
            },
        );
        let summary = engine.run();
        let crashes = summary
            .bugs
            .iter()
            .filter(|b| matches!(b.termination, TerminationReason::Bug(BugKind::Abort { .. })))
            .count();
        println!(
            "{version:?}: explored {} fragmentation paths, {} crashing pattern(s) found",
            summary.paths_completed, crashes
        );
    }
}
