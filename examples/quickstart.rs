//! Quickstart: write a tiny program with a symbolic input, explore every
//! path with the single-node engine, and print the generated test cases.
//!
//! Run with `cargo run --example quickstart`.

use cloud9::prelude::*;
use std::sync::Arc;

fn main() {
    // A toy "access checker": reads 4 symbolic bytes and grants access only
    // for the exact password "ok!\n".
    let mut pb = ProgramBuilder::new();
    pb.set_name("quickstart");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = f.alloc(Operand::word(4));
    f.syscall(
        sysno::MAKE_SYMBOLIC,
        vec![Operand::Reg(buf), Operand::word(4)],
    );
    let mut all_match = f.copy(Operand::const_(1, Width::W1));
    for (i, ch) in b"ok!\n".iter().enumerate() {
        let addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(i as u32));
        let b = f.load(Operand::Reg(addr), Width::W8);
        let eq = f.binary(BinaryOp::Eq, Operand::Reg(b), Operand::byte(*ch));
        all_match = f.binary(BinaryOp::And, Operand::Reg(all_match), Operand::Reg(eq));
    }
    let granted = f.create_block();
    let denied = f.create_block();
    f.branch(Operand::Reg(all_match), granted, denied);
    f.switch_to(granted);
    f.ret(Some(Operand::word(1)));
    f.switch_to(denied);
    f.ret(Some(Operand::word(0)));
    let main_fn = f.finish();
    pb.set_entry(main_fn);

    // Explore every feasible path.
    let mut engine = Engine::new(
        Arc::new(pb.finish()),
        Arc::new(NullEnvironment),
        Box::new(DfsSearcher::new()),
        EngineConfig::default(),
    );
    let summary = engine.run();

    println!("paths explored: {}", summary.paths_completed);
    println!("line coverage:  {:.0}%", summary.coverage_ratio() * 100.0);
    for (i, tc) in summary.test_cases.iter().enumerate() {
        let input = tc.bytes_with_prefix("sym0");
        println!(
            "test case {i}: input {:?} -> {:?}",
            String::from_utf8_lossy(&input),
            tc.termination
        );
    }
}
