//! Use the symbolic testing API to inject environment faults (§5.1): every
//! fallible POSIX call is explored both succeeding and failing, exposing
//! untested error-handling paths.
//!
//! Run with `cargo run --example fault_injection`.

use cloud9::prelude::*;
use std::sync::Arc;

fn main() {
    // A small program that reads a config file and reports whether each step
    // succeeded; fault injection makes the engine explore every failure.
    let mut pb = ProgramBuilder::new();
    pb.set_name("fault-injection-demo");
    let mut f = pb.function("main", 0, Some(Width::W32));
    f.syscall(nr::FI_ENABLE, vec![]);

    // Build the path string "/etc/app.conf".
    let path = {
        let text = b"/etc/app.conf\0";
        let buf = f.alloc(Operand::word(text.len() as u32));
        for (i, b) in text.iter().enumerate() {
            let addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(i as u32));
            f.store(Operand::Reg(addr), Operand::byte(*b), Width::W8);
        }
        buf
    };
    let fd = f.syscall(nr::OPEN, vec![Operand::Reg(path), Operand::word(0)]);
    let open_failed = f.binary(
        BinaryOp::Eq,
        Operand::Reg(fd),
        Operand::Const(nr::ERR, Width::W64),
    );
    let fail_bb = f.create_block();
    let read_bb = f.create_block();
    f.branch(Operand::Reg(open_failed), fail_bb, read_bb);
    f.switch_to(fail_bb);
    f.ret(Some(Operand::word(1)));
    f.switch_to(read_bb);
    let buf = f.alloc(Operand::word(16));
    let n = f.syscall(
        nr::READ,
        vec![Operand::Reg(fd), Operand::Reg(buf), Operand::word(16)],
    );
    let read_failed = f.binary(
        BinaryOp::Eq,
        Operand::Reg(n),
        Operand::Const(nr::ERR, Width::W64),
    );
    let rfail_bb = f.create_block();
    let ok_bb = f.create_block();
    f.branch(Operand::Reg(read_failed), rfail_bb, ok_bb);
    f.switch_to(rfail_bb);
    f.ret(Some(Operand::word(2)));
    f.switch_to(ok_bb);
    f.ret(Some(Operand::word(0)));
    let main_fn = f.finish();
    pb.set_entry(main_fn);

    let mut env = PosixEnvironment::new();
    env.add_file("/etc/app.conf", b"mode=prod\n");
    let mut engine = Engine::new(
        Arc::new(pb.finish()),
        Arc::new(env),
        Box::new(DfsSearcher::new()),
        EngineConfig::default(),
    );
    let summary = engine.run();
    println!(
        "paths explored with fault injection: {}",
        summary.paths_completed
    );
    for tc in &summary.test_cases {
        println!("  outcome: {:?}", tc.termination);
    }
}
