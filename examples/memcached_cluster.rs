//! Exhaustively test the memcached-style server with two symbolic packets on
//! a multi-worker cluster — the paper's headline workload (Fig. 7, Table 5).
//!
//! Run with `cargo run --release --example memcached_cluster`.

use cloud9::prelude::*;
use cloud9::targets::memcached::{self, MemcachedConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let program = memcached::program(&MemcachedConfig {
        packets: 2,
        packet_size: 5,
        ..MemcachedConfig::default()
    });

    for workers in [1usize, 2, 4] {
        let cluster = Cluster::new(
            Arc::new(program.clone()),
            Arc::new(PosixEnvironment::new()),
            ClusterConfig {
                num_workers: workers,
                time_limit: Some(Duration::from_secs(300)),
                ..ClusterConfig::default()
            },
        );
        let result = cluster.run();
        println!(
            "{workers} worker(s): {} paths in {:.2}s (exhausted: {}, jobs transferred: {})",
            result.summary.paths_completed(),
            result.summary.elapsed.as_secs_f64(),
            result.summary.exhausted,
            result.summary.jobs_transferred(),
        );
    }
}
